//! Incremental evaluation must be bit-identical to from-scratch.
//!
//! The prepared path (`PreparedKernel::transform` plus the doubling-chain
//! copy cache) exists purely for throughput: its contract is that every
//! design point yields the *same* `TransformedDesign` — kernel IR,
//! scalar-replacement info and memory binding — as the monolithic
//! [`defacto_xform::transform`] pipeline, and therefore the same
//! behavioral estimate. These tests pin that contract across the full
//! design spaces of the five paper kernels, under every pipeline option
//! the `TransformOptions` struct exposes, and against the reference
//! interpreter for end-to-end semantics.

use defacto::prelude::*;
use defacto_ir::run_with_inputs;
use defacto_kernels::{fir, jacobi, matmul, pattern, sobel, workload};
use defacto_synth::{estimate_opts, SynthesisOptions};
use defacto_xform::{transform, PreparedKernel, TransformedDesign};
use proptest::prelude::*;

struct Case {
    name: &'static str,
    kernel: Kernel,
    inputs: Vec<(&'static str, Vec<i64>)>,
    output: &'static str,
}

fn paper_cases() -> Vec<Case> {
    vec![
        Case {
            name: "FIR",
            kernel: fir::kernel(),
            inputs: vec![
                ("S", workload::signal(96, 10)),
                ("C", workload::signal(32, 11)),
            ],
            output: "D",
        },
        Case {
            name: "MM",
            kernel: matmul::kernel(),
            inputs: vec![
                ("A", workload::signal(512, 20)),
                ("B", workload::signal(64, 21)),
            ],
            output: "C",
        },
        Case {
            name: "PAT",
            kernel: pattern::kernel(),
            inputs: vec![("S", workload::text(64, 30)), ("P", workload::text(16, 31))],
            output: "M",
        },
        Case {
            name: "JAC",
            kernel: jacobi::kernel(),
            inputs: vec![("A", workload::image(34, 40))],
            output: "B",
        },
        Case {
            name: "SOBEL",
            kernel: sobel::kernel(),
            inputs: vec![("I", workload::image(34, 50))],
            output: "E",
        },
    ]
}

/// The full design space of a kernel, in the explorer's (doubling-chain)
/// iteration order.
fn full_space(kernel: &Kernel) -> Vec<UnrollVector> {
    let (_, space) = Explorer::new(kernel).analyze().expect("analyzable");
    space.iter().collect()
}

fn assert_same_design(
    name: &str,
    u: &UnrollVector,
    prepared: &TransformedDesign,
    scratch: &TransformedDesign,
) {
    assert_eq!(
        prepared.kernel, scratch.kernel,
        "{name} {u}: prepared kernel IR diverges from scratch"
    );
    assert_eq!(prepared.info, scratch.info, "{name} {u}: scalar info");
    assert_eq!(prepared.binding, scratch.binding, "{name} {u}: binding");
    assert_eq!(prepared, scratch, "{name} {u}: design");
}

/// Every point of every paper kernel's full space: prepared and scratch
/// designs are equal as IR and produce the identical estimate, and the
/// doubling-chain walk actually reuses cached unrolled bodies.
#[test]
fn full_space_designs_and_estimates_are_bit_identical() {
    let opts = TransformOptions::default();
    let mem = MemoryModel::wildstar_pipelined();
    let device = FpgaDevice::virtex1000();
    let synthesis = SynthesisOptions::default();
    for case in paper_cases() {
        let prep = PreparedKernel::prepare(&case.kernel).expect("prepare");
        let points = full_space(&case.kernel);
        assert!(!points.is_empty(), "{}: empty space", case.name);
        for u in &points {
            let scratch = transform(&case.kernel, u, &opts).expect("scratch");
            let prepared = prep.transform(u, &opts).expect("prepared");
            assert_same_design(case.name, u, &prepared, &scratch);
            let e_scratch = estimate_opts(&scratch, &mem, &device, &synthesis);
            let e_prepared = estimate_opts(&prepared, &mem, &device, &synthesis);
            assert_eq!(
                e_prepared, e_scratch,
                "{} {u}: estimates diverge",
                case.name
            );
        }
        // The space walk is ordered so that factor tuples repeat across
        // points (u shares copies with 2u); the copy cache must see a
        // substantial hit rate, not just occasional luck.
        let (hits, misses) = prep.copy_cache_stats();
        assert!(
            hits + misses > 0,
            "{}: copy cache never consulted",
            case.name
        );
        let rate = hits as f64 / (hits + misses) as f64;
        assert!(
            rate >= 0.5,
            "{}: doubling-chain reuse rate {rate:.3} below 0.5 ({hits} hits / {misses} misses)",
            case.name
        );
    }
}

fn option_variants() -> Vec<(&'static str, TransformOptions)> {
    let base = TransformOptions::default;
    vec![
        ("default", base()),
        (
            "no-scalar-replacement",
            TransformOptions {
                scalar_replacement: false,
                ..base()
            },
        ),
        (
            "no-peel",
            TransformOptions {
                peel: false,
                ..base()
            },
        ),
        (
            "no-redundant-write-elim",
            TransformOptions {
                redundant_write_elim: false,
                ..base()
            },
        ),
        (
            "shared-memory-layout",
            TransformOptions {
                custom_layout: false,
                ..base()
            },
        ),
        (
            "register-budget-8",
            TransformOptions {
                register_budget: Some(8),
                ..base()
            },
        ),
        (
            "verify-each-pass",
            TransformOptions {
                verify_each_pass: true,
                ..base()
            },
        ),
    ]
}

/// Representative points under every pipeline option: the prepared path
/// takes different shortcuts per option (e.g. it never materializes the
/// jammed body unless scalar replacement is off or per-pass verification
/// is on), and each shortcut must stay invisible in the output.
#[test]
fn option_variants_are_bit_identical() {
    for case in paper_cases() {
        let prep = PreparedKernel::prepare(&case.kernel).expect("prepare");
        let points = full_space(&case.kernel);
        // First, middle and last points of the walk: unit factors, a
        // mixed interior point, and the maximal-unroll corner.
        let picks = [0, points.len() / 2, points.len() - 1];
        for (label, opts) in option_variants() {
            for &i in &picks {
                let u = &points[i];
                let scratch = transform(&case.kernel, u, &opts)
                    .unwrap_or_else(|e| panic!("{} {u} [{label}]: scratch: {e}", case.name));
                let prepared = prep
                    .transform(u, &opts)
                    .unwrap_or_else(|e| panic!("{} {u} [{label}]: prepared: {e}", case.name));
                assert_same_design(&format!("{} [{label}]", case.name), u, &prepared, &scratch);
            }
        }
    }
}

/// End-to-end semantics: designs from the prepared path compute the same
/// outputs as the untransformed kernel on concrete inputs.
#[test]
fn prepared_designs_preserve_interpreter_semantics() {
    let opts = TransformOptions::default();
    for case in paper_cases() {
        let inputs: Vec<(&str, Vec<i64>)> =
            case.inputs.iter().map(|(n, v)| (*n, v.clone())).collect();
        let (w0, _) = run_with_inputs(&case.kernel, &inputs).expect("original runs");
        let prep = PreparedKernel::prepare(&case.kernel).expect("prepare");
        let points = full_space(&case.kernel);
        for &i in &[0, points.len() / 2, points.len() - 1] {
            let u = &points[i];
            let design = prep.transform(u, &opts).expect("prepared");
            let (w1, _) = run_with_inputs(&design.kernel, &inputs).expect("design runs");
            assert_eq!(
                w0.array(case.output),
                w1.array(case.output),
                "{} {u}: output `{}` diverges after prepared transform",
                case.name,
                case.output
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (kernel, point, option) triples: the prepared design is
    /// the scratch design.
    #[test]
    fn prop_prepared_matches_scratch(
        kernel_idx in 0usize..5,
        point_sel in 0usize..1usize << 16,
        variant_idx in 0usize..7,
    ) {
        let case = &paper_cases()[kernel_idx];
        let (label, opts) = &option_variants()[variant_idx];
        let points = full_space(&case.kernel);
        let u = &points[point_sel % points.len()];
        let prep = PreparedKernel::prepare(&case.kernel).expect("prepare");
        let scratch = transform(&case.kernel, u, opts).expect("scratch");
        let prepared = prep.transform(u, opts).expect("prepared");
        prop_assert_eq!(
            &prepared,
            &scratch,
            "{} {} [{}]: prepared != scratch",
            case.name,
            u,
            label
        );
    }
}
