//! Shape checks against the paper's published results: the reproduction
//! is not expected to match absolute numbers (our substrate is a
//! simulator, not the authors' Monet + WildStar testbed), but who wins,
//! in which direction, and by roughly what kind of factor must hold.

use defacto::exhaustive::{best_performance, smallest_comparable};
use defacto::prelude::*;

fn speedup(kernel: &Kernel, mem: MemoryModel) -> (f64, SearchResult) {
    let ex = Explorer::new(kernel).memory(mem);
    let r = ex.explore().expect("search succeeds");
    let depth = r.selected.unroll.factors().len();
    let base = ex.evaluate(&UnrollVector::ones(depth)).expect("baseline");
    (
        base.estimate.cycles as f64 / r.selected.estimate.cycles as f64,
        r,
    )
}

#[test]
fn observation3_balance_rises_then_falls_along_search_direction() {
    // Along the trajectory of growing products from the saturation point,
    // balance must be monotonically non-increasing (we start AT the
    // saturation point, after which Observation 3 predicts decline).
    let (_, fir) = defacto_kernels::paper_kernels().remove(0);
    let ex = Explorer::new(&fir);
    let mut balances = Vec::new();
    for factors in [vec![4, 1], vec![4, 2], vec![4, 4], vec![8, 4], vec![16, 8]] {
        let e = ex.evaluate(&UnrollVector(factors)).expect("evaluates");
        balances.push(e.estimate.balance);
    }
    for w in balances.windows(2) {
        assert!(
            w[1] <= w[0] * 1.40,
            "balance rose sharply past saturation: {balances:?}"
        );
    }
    // And before the saturation point it is lower or comparable: the
    // memory side is under-provisioned below Psat.
    let below = ex
        .evaluate(&UnrollVector(vec![1, 1]))
        .expect("evaluates")
        .estimate
        .balance;
    let at = balances[0];
    assert!(
        below <= at * 1.40,
        "balance at base {below} far above saturation point {at}"
    );
}

#[test]
fn observation2_cycles_nonincreasing_in_unroll() {
    let (_, fir) = defacto_kernels::paper_kernels().remove(0);
    let ex = Explorer::new(&fir);
    let mut last = u64::MAX;
    for factors in [
        vec![1, 1],
        vec![2, 1],
        vec![4, 1],
        vec![4, 2],
        vec![8, 4],
        vec![16, 8],
    ] {
        let e = ex
            .evaluate(&UnrollVector(factors.clone()))
            .expect("evaluates");
        assert!(
            e.estimate.cycles <= last,
            "cycles increased at {factors:?}: {} > {last}",
            e.estimate.cycles
        );
        last = e.estimate.cycles;
    }
}

#[test]
fn nonpipelined_fir_is_always_memory_bound() {
    // Paper: "Without pipelining, memory latency becomes more of a
    // bottleneck leading, in the case of FIR, to designs that are always
    // memory bound."
    let (_, fir) = defacto_kernels::paper_kernels().remove(0);
    let ex = Explorer::new(&fir).memory(MemoryModel::wildstar_non_pipelined());
    let sweep = ex.sweep().expect("sweep succeeds");
    for d in sweep.iter().filter(|d| d.unroll.product() >= 4) {
        assert!(
            d.estimate.balance < 1.0,
            "non-pipelined FIR at {} has balance {}",
            d.unroll,
            d.estimate.balance
        );
    }
}

#[test]
fn pipelined_memory_gives_larger_speedups_for_memory_rich_kernels() {
    // Paper Table 2: FIR 7.67→17.26, MM 4.55→13.36, PAT 7.53→34.61.
    for name in ["FIR", "MM", "PAT"] {
        let kernel = defacto_kernels::paper_kernels()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, k)| k)
            .expect("kernel exists");
        let (s_pipe, _) = speedup(&kernel, MemoryModel::wildstar_pipelined());
        let (s_non, _) = speedup(&kernel, MemoryModel::wildstar_non_pipelined());
        assert!(
            s_pipe > s_non,
            "{name}: pipelined speedup {s_pipe} vs non-pipelined {s_non}"
        );
    }
}

#[test]
fn all_speedups_exceed_one_and_land_in_paper_range() {
    // Paper speedups span 3.87–34.61; ours must be >1 everywhere and
    // within an order of magnitude of the paper's.
    for (name, kernel) in defacto_kernels::paper_kernels() {
        for mem in [
            MemoryModel::wildstar_pipelined(),
            MemoryModel::wildstar_non_pipelined(),
        ] {
            let (s, _) = speedup(&kernel, mem);
            assert!(s > 1.2, "{name}: speedup {s}");
            assert!(s < 100.0, "{name}: implausible speedup {s}");
        }
    }
}

#[test]
fn selected_design_close_to_best_and_smaller() {
    // Paper: "Our algorithm derives an implementation that closely
    // matches the performance of the fastest design in the design space,
    // and among implementations with comparable performance, selects the
    // smallest design."
    for (name, kernel) in defacto_kernels::paper_kernels() {
        let ex = Explorer::new(&kernel);
        let r = ex.explore().expect("search succeeds");
        let sweep = ex.sweep().expect("sweep succeeds");
        let best = best_performance(&sweep).expect("fitting design exists");
        let ratio = r.selected.estimate.cycles as f64 / best.estimate.cycles as f64;
        assert!(
            ratio <= 2.5,
            "{name}: selected {}× slower than best ({} vs {})",
            ratio,
            r.selected.estimate.cycles,
            best.estimate.cycles
        );
        // Criterion 3: among designs within 10% of the selected's
        // performance, none is meaningfully smaller.
        let comparable = smallest_comparable(&sweep, 0.10).expect("exists");
        if comparable.estimate.cycles >= r.selected.estimate.cycles {
            assert!(
                r.selected.estimate.slices as f64 <= comparable.estimate.slices as f64 * 1.6,
                "{name}: selected {} slices vs smallest comparable {}",
                r.selected.estimate.slices,
                comparable.estimate.slices
            );
        }
    }
}

#[test]
fn search_fraction_is_a_fraction_of_a_percent_of_the_full_space() {
    // Paper: "We search on average only 0.3% of the design space" where
    // the space is all integer unroll factors per loop.
    let mut fractions = Vec::new();
    for (_, kernel) in defacto_kernels::paper_kernels() {
        for mem in [
            MemoryModel::wildstar_pipelined(),
            MemoryModel::wildstar_non_pipelined(),
        ] {
            let ex = Explorer::new(&kernel).memory(mem);
            let (sat, _) = ex.analyze().expect("analysis succeeds");
            let r = ex.explore().expect("search succeeds");
            let norm = defacto_xform::normalize_loops(&kernel).expect("normalizes");
            let nest = norm.perfect_nest().expect("nest");
            let full: u64 = nest
                .trip_counts()
                .iter()
                .zip(&sat.unrollable)
                .map(|(&t, &on)| if on { t as u64 } else { 1 })
                .product();
            fractions.push(r.visited.len() as f64 / full as f64);
        }
    }
    let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
    assert!(avg < 0.02, "average searched fraction {avg}");
}

#[test]
fn area_grows_with_unrolling_and_crosses_capacity() {
    // The paper's area panels: log-scale growth with a capacity line that
    // large designs cross.
    let (_, fir) = defacto_kernels::paper_kernels().remove(0);
    let ex = Explorer::new(&fir);
    let small = ex.evaluate(&UnrollVector(vec![1, 1])).expect("evaluates");
    let large = ex.evaluate(&UnrollVector(vec![64, 32])).expect("evaluates");
    assert!(small.estimate.fits);
    assert!(!large.estimate.fits);
    assert!(large.estimate.slices > 4 * small.estimate.slices);
}
