//! Canonicalization invariance over the paper suite.
//!
//! Content addressing treats alpha-renamed, declaration-reordered
//! kernels as the *same* kernel, so everything downstream of the
//! canonical hash must be invariant under those rewrites:
//!
//! - the canonical hash itself (and every per-subtree hash);
//! - the full-space sweep — every design point's estimate, bit for bit
//!   (this is what makes serving a renamed kernel from another kernel's
//!   persistent cache entries *sound*, not just fast);
//! - the selected design of a warm-cache search, which must also match
//!   the cold selection exactly.

use defacto::cache::PersistentCache;
use defacto::prelude::*;
use defacto_ir::{canonicalize, Kernel};
use std::sync::Arc;

/// Alpha-renamed + declaration-sorted, and declaration-reversed,
/// variants of `k` — all structurally identical to it.
fn variants(k: &Kernel) -> Vec<(&'static str, Kernel)> {
    let renamed = canonicalize(k).kernel;
    let mut arrays = k.arrays().to_vec();
    arrays.reverse();
    let reordered = Kernel::new(k.name(), arrays, k.scalars().to_vec(), k.body().to_vec())
        .expect("reordered declarations stay valid");
    vec![("alpha-renamed", renamed), ("decl-reordered", reordered)]
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("defacto-canon-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn canonical_hashes_are_rewrite_invariant() {
    for (name, kernel) in defacto_kernels::paper_kernels() {
        let base = canonicalize(&kernel);
        for (label, v) in variants(&kernel) {
            let vc = canonicalize(&v);
            assert_eq!(base.hash, vc.hash, "{name}: {label} changed the hash");
            assert!(
                base.changed_subtrees(&vc).is_empty(),
                "{name}: {label} changed subtrees {:?}",
                base.changed_subtrees(&vc)
            );
        }
    }
}

#[test]
fn full_sweep_estimates_are_rewrite_invariant() {
    for (name, kernel) in defacto_kernels::paper_kernels() {
        let (base, _) = Explorer::new(&kernel)
            .sweep_with_stats()
            .expect("base sweep");
        for (label, v) in variants(&kernel) {
            let (swept, _) = Explorer::new(&v).sweep_with_stats().expect("variant sweep");
            assert_eq!(base.len(), swept.len(), "{name}: {label} changed the space");
            for (b, s) in base.iter().zip(swept.iter()) {
                assert_eq!(b.unroll, s.unroll, "{name}: {label} reordered the space");
                assert_eq!(
                    b.estimate,
                    s.estimate,
                    "{name}: {label} changed the estimate at {:?}",
                    b.unroll.factors()
                );
            }
        }
    }
}

#[test]
fn warm_cache_search_selects_identically_for_variants() {
    let dir = scratch("warm-select");
    for (name, kernel) in defacto_kernels::paper_kernels() {
        let store = Arc::new(PersistentCache::open(&dir.join(name)).expect("open cache directory"));
        let cold = Explorer::new(&kernel)
            .persistent(store.clone())
            .explore()
            .expect("cold explore");
        for (label, v) in variants(&kernel) {
            let warm = Explorer::new(&v)
                .persistent(store.clone())
                .explore()
                .expect("warm explore");
            assert_eq!(
                cold.selected.unroll, warm.selected.unroll,
                "{name}: {label} changed the selection from a warm cache"
            );
            assert_eq!(
                cold.selected.estimate, warm.selected.estimate,
                "{name}: {label} changed the selected estimate"
            );
            assert_eq!(
                warm.stats.evaluated, 0,
                "{name}: {label} re-evaluated designs despite a warm cache \
                 ({} persist hits, {} misses)",
                warm.stats.persist_hits, warm.stats.persist_misses
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
