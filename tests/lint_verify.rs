//! Lint corpus and verifier regression suite.
//!
//! Pins the `DF0xx` code each bad-corpus kernel reports (so CI catches
//! silent rule regressions), confirms the paper suite is lint-clean, and
//! property-checks the pass-by-pass IR verifier: any kernel the linter
//! accepts must flow through the whole pipeline with `ir::verify` clean
//! after every stage.

use defacto::prelude::*;
use defacto_kernels::fir;
use defacto_xform::transform;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint_corpus/bad")
}

fn read_corpus(name: &str) -> String {
    let path = corpus_dir().join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Every bad-corpus kernel reports exactly the code its filename pins,
/// with a source span pointing at the offending text.
#[test]
fn bad_corpus_kernels_report_their_pinned_codes() {
    // `df009_capacity.kernel` is absent: it needs a device, so the CLI
    // suite pins it (`lint fir.kernel --device xcv300 --memories 16`).
    let pinned = [
        ("df001_syntax.kernel", "DF001"),
        ("df002_non_affine.kernel", "DF002"),
        ("df003_symbolic_bound.kernel", "DF003"),
        ("df004_control_flow.kernel", "DF004"),
        ("df005_out_of_bounds.kernel", "DF005"),
        ("df006_unused_decl.kernel", "DF006"),
        ("df007_jam_blocked.kernel", "DF007"),
        ("df008_write_conflict.kernel", "DF008"),
        ("df010_degenerate_loop.kernel", "DF010"),
        ("df011_interchange_pinned.kernel", "DF011"),
        ("df012_packing_inert.kernel", "DF012"),
    ];
    for (file, code) in pinned {
        let report = lint_source(&read_corpus(file));
        assert!(
            !report.diagnostics.is_empty(),
            "{file}: expected a diagnostic"
        );
        let hit = report.diagnostics.iter().find(|d| d.code == code);
        let hit =
            hit.unwrap_or_else(|| panic!("{file}: expected {code}, got {:?}", report.rule_hits));
        assert!(
            hit.primary.is_some(),
            "{file}: {code} diagnostic has no source span"
        );
    }
}

/// No corpus kernel is unaccounted for: each file is either pinned above
/// or the device-dependent DF009 case.
#[test]
fn corpus_has_no_stray_kernels() {
    let mut names: Vec<String> = fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(
        names,
        [
            "df001_syntax.kernel",
            "df002_non_affine.kernel",
            "df003_symbolic_bound.kernel",
            "df004_control_flow.kernel",
            "df005_out_of_bounds.kernel",
            "df006_unused_decl.kernel",
            "df007_jam_blocked.kernel",
            "df008_write_conflict.kernel",
            "df009_capacity.kernel",
            "df010_degenerate_loop.kernel",
            "df011_interchange_pinned.kernel",
            "df012_packing_inert.kernel",
        ]
    );
}

/// The DF009 corpus kernel is the paper's FIR: clean by itself (it only
/// trips on a constrained platform, which the CLI suite covers).
#[test]
fn df009_corpus_kernel_is_clean_without_a_device() {
    let report = lint_source(&read_corpus("df009_capacity.kernel"));
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

/// All five paper kernels under `examples/kernels/` lint clean.
#[test]
fn paper_example_kernels_are_lint_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/kernels");
    let mut seen = 0;
    for entry in fs::read_dir(&dir).expect("examples dir") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "kernel") {
            continue;
        }
        seen += 1;
        let src = fs::read_to_string(&path).unwrap();
        let report = lint_source(&src);
        assert!(
            report.diagnostics.is_empty(),
            "{}: {:?}",
            path.display(),
            report.diagnostics
        );
    }
    assert_eq!(seen, 5, "expected the five paper kernels");
}

/// Warning-only rules never flip to errors: severities are part of the
/// stable diagnostic contract.
#[test]
fn warning_rules_stay_warnings() {
    for file in [
        "df006_unused_decl.kernel",
        "df007_jam_blocked.kernel",
        "df008_write_conflict.kernel",
        "df011_interchange_pinned.kernel",
        "df012_packing_inert.kernel",
    ] {
        let report = lint_source(&read_corpus(file));
        assert!(!report.has_errors(), "{file}: {:?}", report.diagnostics);
        assert!(report.warning_count() > 0, "{file}: no warnings");
    }
}

/// The pipeline, with the verifier armed after every pass, is clean on
/// representative unrolls of every paper kernel.
#[test]
fn verifier_is_clean_at_each_pass_on_the_paper_suite() {
    use defacto_kernels::{jacobi, matmul, pattern, sobel};
    let cases: Vec<(Kernel, Vec<Vec<i64>>)> = vec![
        (fir::kernel(), vec![vec![1, 1], vec![8, 4], vec![64, 32]]),
        (matmul::kernel(), vec![vec![1, 1, 1], vec![8, 4, 1]]),
        (pattern::kernel(), vec![vec![2, 2], vec![12, 8]]),
        (jacobi::kernel(), vec![vec![2, 2], vec![16, 4]]),
        (sobel::kernel(), vec![vec![4, 4]]),
    ];
    let opts = TransformOptions {
        verify_each_pass: true,
        ..TransformOptions::default()
    };
    for (kernel, vectors) in cases {
        for factors in vectors {
            transform(&kernel, &UnrollVector(factors.clone()), &opts)
                .unwrap_or_else(|e| panic!("{} at {factors:?}: {e}", kernel.name()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property: a lint-clean kernel survives the full pipeline with the
    /// IR verifier clean after every pass — the linter's "accepted" and
    /// the verifier's "sound" agree across random shapes and unrolls.
    #[test]
    fn prop_lint_clean_kernels_verify_at_every_pass(
        n_out_pow in 2u32..6,
        n_taps_pow in 1u32..5,
        uj_pow in 0u32..6,
        ui_pow in 0u32..5,
        scalar_replacement in any::<bool>(),
        peel in any::<bool>(),
    ) {
        let n_out = 1usize << n_out_pow;
        let n_taps = 1usize << n_taps_pow;
        let kernel = fir::kernel_sized(n_out, n_taps);
        let report = lint_kernel(&kernel);
        prop_assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);

        let uj = 1i64 << uj_pow.min(n_out_pow);
        let ui = 1i64 << ui_pow.min(n_taps_pow);
        let opts = TransformOptions {
            scalar_replacement,
            peel,
            verify_each_pass: true,
            ..TransformOptions::default()
        };
        // `transform` fails with `XformError::Verify` if any checkpoint
        // trips; succeeding IS the property.
        let design = transform(&kernel, &UnrollVector(vec![uj, ui]), &opts);
        prop_assert!(design.is_ok(), "{:?}", design.err());
        // And the final kernel is verifier-clean too.
        let violations = defacto_ir::verify(&design.unwrap().kernel);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }
}
