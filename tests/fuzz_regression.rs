//! Corpus replay: every reproducer in `tests/fuzz_corpus/` runs through
//! all six oracle dimensions on both standard profiles.
//!
//! File-name convention pins the expected classification:
//!
//! - `reject_*.kernel` — degenerate inputs that must be refused with a
//!   *typed* diagnostic (never a crash) on every profile;
//! - `pass_*.kernel` — kernels that must survive every oracle (semantics,
//!   per-pass verification, fidelity agreement + band containment, trace
//!   audits at 1 and 8 workers, joint-space legality both ways) on every
//!   profile.
//!
//! A `Violation` outcome for any file is a regression of a previously
//! fixed bug.

use std::fs;
use std::path::{Path, PathBuf};

use defacto_fuzz::{replay_source, CaseOutcome};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fuzz_corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("tests/fuzz_corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "kernel"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "fuzz corpus must not be empty");
    files
}

#[test]
fn corpus_files_follow_the_naming_convention() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.starts_with("reject_") || name.starts_with("pass_"),
            "corpus file `{name}` must be prefixed reject_ or pass_ to pin its expectation"
        );
    }
}

#[test]
fn corpus_replays_clean_through_all_six_oracles() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = fs::read_to_string(&path).expect("readable corpus file");
        for (profile, outcome) in replay_source(&source) {
            match &outcome {
                CaseOutcome::Violation(v) => panic!(
                    "{name} on {profile}: REGRESSION — oracle `{}` tripped at {}: {}",
                    v.oracle.label(),
                    v.stage,
                    v.detail
                ),
                CaseOutcome::Rejected { stage, detail } => assert!(
                    name.starts_with("reject_"),
                    "{name} on {profile}: expected to pass, was rejected at `{stage}`: {detail}"
                ),
                CaseOutcome::Passed { .. } => assert!(
                    name.starts_with("pass_"),
                    "{name} on {profile}: expected a typed rejection, but it passed"
                ),
            }
        }
    }
}

/// The reproducer for the parser recursion hardening: deep expression
/// nesting must produce a typed syntax error, not exhaust the stack.
#[test]
fn deep_nesting_reproducer_is_a_typed_parse_error() {
    let source = fs::read_to_string(corpus_dir().join("reject_deep_nesting.kernel")).unwrap();
    let err = defacto_ir::parse_kernel(&source).unwrap_err();
    assert!(
        err.to_string().contains("nesting"),
        "expected the nesting-depth diagnostic, got: {err}"
    );
}
