//! Parallel evaluation must be indistinguishable from serial evaluation.
//!
//! The engine's contract (see `defacto::engine`) is that worker count is
//! a pure throughput knob: sweeps come back in the space's iteration
//! order, and the Figure-2 search visits the same sequence, selects the
//! same design and terminates for the same reason at any thread count.
//! These tests pin that contract on FIR and MM at 1, 2 and 8 workers,
//! comparing against an explicitly single-threaded reference run.

use defacto::prelude::*;
use defacto_ir::Kernel;
use defacto_kernels::{fir, matmul};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn suite() -> Vec<(&'static str, Kernel)> {
    vec![("FIR", fir::kernel()), ("MM", matmul::kernel())]
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    for (name, k) in suite() {
        let serial = Explorer::new(&k).threads(1).sweep().unwrap();
        let serial_bytes = format!("{serial:?}");
        for workers in WORKER_COUNTS {
            let parallel = Explorer::new(&k).threads(workers).sweep().unwrap();
            assert_eq!(
                parallel, serial,
                "{name} sweep differs at {workers} workers"
            );
            assert_eq!(
                format!("{parallel:?}"),
                serial_bytes,
                "{name} sweep bytes differ at {workers} workers"
            );
        }
    }
}

#[test]
fn parallel_search_selects_identically_to_serial() {
    for (name, k) in suite() {
        let serial = Explorer::new(&k).threads(1).explore().unwrap();
        for workers in WORKER_COUNTS {
            let parallel = Explorer::new(&k).threads(workers).explore().unwrap();
            assert_eq!(
                parallel.selected, serial.selected,
                "{name} selected design differs at {workers} workers"
            );
            assert_eq!(
                parallel.visited, serial.visited,
                "{name} visited sequence differs at {workers} workers"
            );
            assert_eq!(
                parallel.termination, serial.termination,
                "{name} termination differs at {workers} workers"
            );
            assert_eq!(parallel.space_size, serial.space_size, "{name}");
            assert_eq!(parallel.stats.workers, workers, "{name}");
        }
    }
}

#[test]
fn reexploration_is_served_from_the_memo_cache() {
    for (name, k) in suite() {
        let ex = Explorer::new(&k).threads(2);
        let first = ex.explore().unwrap();
        assert!(first.stats.evaluated > 0, "{name} first run evaluates");
        let second = ex.explore().unwrap();
        assert_eq!(second.selected, first.selected, "{name}");
        assert!(
            second.stats.cache_hits >= 1,
            "{name} re-exploration should hit the cache (stats: {:?})",
            second.stats
        );
        assert_eq!(
            second.stats.evaluated, 0,
            "{name} re-exploration should evaluate nothing new"
        );
    }
}

/// The pool genuinely overlaps evaluations: eight blocking items on
/// eight workers finish in a fraction of the serial time. (Sleeping is
/// used instead of compute so the test also demonstrates overlap on
/// single-core CI hosts, where CPU-bound speedup is physically capped.)
#[test]
fn worker_pool_overlaps_blocking_evaluations() {
    use std::time::{Duration, Instant};
    let items: Vec<u32> = (0..8).collect();
    let nap = Duration::from_millis(25);
    let time = |engine: &EvalEngine| {
        let t = Instant::now();
        let results = engine.parallel_map(&items, |_| {
            std::thread::sleep(nap);
            Ok(())
        });
        assert!(results.iter().all(Result::is_ok));
        t.elapsed()
    };
    let serial = time(&EvalEngine::new(1));
    let parallel = time(&EvalEngine::new(8));
    assert!(
        parallel * 3 < serial,
        "8 workers should overlap blocking work >=3x (serial {serial:?}, parallel {parallel:?})"
    );
}

#[test]
fn sweep_stats_report_work_and_workers() {
    let (_, k) = suite().remove(0);
    let ex = Explorer::new(&k).threads(2);
    let (sweep, stats) = ex.sweep_with_stats().unwrap();
    assert_eq!(stats.evaluated, sweep.len() as u64);
    assert_eq!(stats.workers, 2);
    // A second sweep over the same explorer is answered by the cache.
    let (again, stats2) = ex.sweep_with_stats().unwrap();
    assert_eq!(again, sweep);
    assert_eq!(stats2.evaluated, 0);
    assert_eq!(stats2.cache_hits, sweep.len() as u64);
}
