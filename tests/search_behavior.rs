//! Behavioural tests of the Figure-2 search across configurations:
//! device capacities, memory counts, transformation ablations, register
//! budgets.

use defacto::prelude::*;

fn fir() -> Kernel {
    defacto_kernels::fir::kernel()
}

#[test]
fn search_never_selects_an_oversized_design() {
    for capacity in [1500, 2500, 5000, 12288, 40000] {
        let dev = FpgaDevice {
            name: format!("cap{capacity}"),
            capacity_slices: capacity,
            clock_ns: 40,
        };
        let k = fir();
        let r = Explorer::new(&k)
            .device(dev)
            .explore()
            .expect("search succeeds");
        assert!(
            r.selected.estimate.slices <= capacity,
            "capacity {capacity}: selected {} slices",
            r.selected.estimate.slices
        );
    }
}

#[test]
fn bigger_devices_admit_bigger_faster_designs() {
    let k = fir();
    let small = Explorer::new(&k)
        .device(FpgaDevice::virtex300())
        .explore()
        .expect("search succeeds");
    let large = Explorer::new(&k)
        .device(FpgaDevice::virtex2_6000())
        .explore()
        .expect("search succeeds");
    assert!(small.selected.estimate.fits && large.selected.estimate.fits);
    assert!(
        large.selected.estimate.cycles <= small.selected.estimate.cycles,
        "large device {} vs small device {}",
        large.selected.estimate.cycles,
        small.selected.estimate.cycles
    );
}

#[test]
fn more_memories_raise_the_saturation_point() {
    let k = fir();
    for (memories, expected_psat) in [(1, 1), (2, 2), (4, 4), (8, 8)] {
        let ex = Explorer::new(&k).memory(MemoryModel::pipelined(memories));
        let (sat, _) = ex.analyze().expect("analysis succeeds");
        assert_eq!(sat.psat, expected_psat, "memories {memories}");
    }
}

#[test]
fn single_memory_designs_are_slower() {
    let k = fir();
    let multi = Explorer::new(&k)
        .memory(MemoryModel::pipelined(4))
        .explore()
        .expect("search succeeds");
    let single = Explorer::new(&k)
        .memory(MemoryModel::pipelined(1))
        .explore()
        .expect("search succeeds");
    assert!(
        single.selected.estimate.cycles >= multi.selected.estimate.cycles,
        "single {} vs multi {}",
        single.selected.estimate.cycles,
        multi.selected.estimate.cycles
    );
}

#[test]
fn disabling_scalar_replacement_hurts_selected_performance() {
    let k = fir();
    let with = Explorer::new(&k).explore().expect("search succeeds");
    let without = Explorer::new(&k)
        .options(TransformOptions {
            scalar_replacement: false,
            ..TransformOptions::default()
        })
        .explore()
        .expect("search succeeds");
    assert!(
        without.selected.estimate.cycles > with.selected.estimate.cycles,
        "no-SR {} vs SR {}",
        without.selected.estimate.cycles,
        with.selected.estimate.cycles
    );
}

#[test]
fn register_budget_reduces_registers_of_selected_design() {
    let k = fir();
    let free = Explorer::new(&k);
    let capped = Explorer::new(&k).options(TransformOptions {
        register_budget: Some(8),
        ..TransformOptions::default()
    });
    let u = UnrollVector(vec![4, 2]);
    let e_free = free.evaluate(&u).expect("evaluates").estimate;
    let e_capped = capped.evaluate(&u).expect("evaluates").estimate;
    assert!(e_capped.registers < e_free.registers);
    // Less reuse ⇒ more memory traffic.
    assert!(e_capped.bits_from_memory > e_free.bits_from_memory);
}

#[test]
fn balance_tolerance_affects_termination() {
    let k = fir();
    // With an enormous tolerance everything counts as balanced: the
    // search stops at the saturation point.
    let loose = Explorer::new(&k)
        .balance_tolerance(1000.0)
        .explore()
        .expect("search succeeds");
    assert_eq!(loose.termination, Termination::Balanced);
    assert_eq!(loose.visited.len(), 1);
}

#[test]
fn pinned_levels_restrict_the_space() {
    let k = fir();
    let ex = Explorer::new(&k).explore_levels(&[true, false]);
    let (_, space) = ex.analyze().expect("analysis succeeds");
    assert_eq!(space.size(), 7); // divisors of 64 only
    let r = ex.explore().expect("search succeeds");
    assert_eq!(r.selected.unroll.factors()[1], 1);
}

#[test]
fn narrowing_admits_bigger_faster_designs_on_small_devices() {
    // 10-bit data declared as C ints: on a small device, narrowing frees
    // enough area for deeper unrolling — the end-to-end §2.4 payoff.
    let k = parse_kernel(
        "kernel fir {
           in S: i32[96] range -512..511;
           in C: i32[32] range -64..63;
           inout D: i32[64];
           for j in 0..64 { for i in 0..32 {
             D[j] = D[j] + S[i + j] * C[i]; } } }",
    )
    .unwrap();
    let device = FpgaDevice::virtex300();
    let wide = Explorer::new(&k)
        .device(device.clone())
        .explore()
        .expect("search succeeds");
    let narrow = Explorer::new(&k)
        .device(device)
        .bitwidth_narrowing(true)
        .explore()
        .expect("search succeeds");
    assert!(wide.selected.estimate.fits && narrow.selected.estimate.fits);
    assert!(
        narrow.selected.estimate.cycles < wide.selected.estimate.cycles,
        "narrow {} vs wide {}",
        narrow.selected.estimate.cycles,
        wide.selected.estimate.cycles
    );
}

#[test]
fn packing_speeds_up_selected_small_type_designs() {
    use defacto_synth::SynthesisOptions;
    let k = defacto_kernels::pattern::kernel();
    let plain = Explorer::new(&k).explore().expect("search succeeds");
    let packed = Explorer::new(&k)
        .synthesis(SynthesisOptions {
            pack_small_types: true,
            ..SynthesisOptions::default()
        })
        .explore()
        .expect("search succeeds");
    assert!(
        packed.selected.estimate.cycles <= plain.selected.estimate.cycles,
        "packed {} vs plain {}",
        packed.selected.estimate.cycles,
        plain.selected.estimate.cycles
    );
}

#[test]
fn evaluating_outside_space_errors() {
    let k = fir();
    let ex = Explorer::new(&k);
    // 3 does not divide 64.
    let err = ex.evaluate(&UnrollVector(vec![3, 1])).unwrap_err();
    assert!(matches!(err, defacto::DseError::Xform(_)));
}

#[test]
fn sweep_matches_individual_evaluations() {
    let k = defacto_kernels::matmul::kernel();
    let ex = Explorer::new(&k);
    let sweep = ex.sweep().expect("sweep succeeds");
    for d in sweep.iter().take(5) {
        let again = ex.evaluate(&d.unroll).expect("evaluates");
        assert_eq!(d.estimate, again.estimate, "{}", d.unroll);
    }
}
