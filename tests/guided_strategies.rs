//! Guided-strategy contract over the paper suite plus a constrained
//! wavefront.
//!
//! Branch-and-bound must select **bit-identically** (point and
//! estimate) to the exhaustive joint sweep while accounting for every
//! point it skipped, coordinate descent must land within its own
//! reported optimality gap, and both must make the same decisions at
//! any worker count. The wavefront kernel rides along because its
//! (1, -1) dependence pins the permutation and tile axes — the guided
//! strategies must agree with the sweep on a legality-pruned space too.

use defacto::exhaustive::best_joint_performance;
use defacto::prelude::*;

const WORKER_COUNTS: [usize; 2] = [1, 8];

/// The paper kernels restricted to outermost-level unrolling (the
/// bench harness's smoke spaces — full multi-axis cross products stay
/// affordable in debug builds), plus the dependence-constrained
/// wavefront on its inner level.
fn suite() -> Vec<(String, Kernel, Vec<bool>)> {
    let mut cases: Vec<(String, Kernel, Vec<bool>)> = defacto_kernels::paper_kernels()
        .into_iter()
        .map(|(name, kernel)| {
            let depth = kernel
                .perfect_nest()
                .unwrap_or_else(|| panic!("{name} is not a perfect nest"))
                .depth();
            let mut levels = vec![false; depth];
            levels[0] = true;
            (name.to_string(), kernel, levels)
        })
        .collect();
    let wavefront = parse_kernel(
        "kernel wf { inout A: i32[17][16];
           for i in 0..16 { for j in 0..16 {
             A[i + 1][j] = A[i][j + 1] + 1; } } }",
    )
    .expect("wavefront parses");
    cases.push(("WF".to_string(), wavefront, vec![false, true]));
    cases
}

fn explorer<'k>(kernel: &'k Kernel, levels: &[bool], workers: usize) -> Explorer<'k> {
    Explorer::new(kernel)
        .axes(&Axis::ALL)
        .explore_levels(levels)
        .threads(workers)
}

/// What a strategy decided, reduced to the comparable parts.
#[derive(Debug, Clone, PartialEq)]
struct Decisions {
    selected: Option<EvaluatedJointDesign>,
    evaluated: Vec<JointPoint>,
    pruned: u64,
    gap_cycles: Option<u64>,
    space_points: u64,
}

fn decisions(r: &JointSearchResult) -> Decisions {
    Decisions {
        selected: r.selected.clone(),
        evaluated: r.evaluated.iter().map(|d| d.point.clone()).collect(),
        pruned: r.pruned,
        gap_cycles: r.gap_cycles,
        space_points: r.space_points,
    }
}

#[test]
fn branch_and_bound_is_bit_identical_to_the_exhaustive_joint_sweep() {
    for (name, kernel, levels) in suite() {
        for workers in WORKER_COUNTS {
            let ex = explorer(&kernel, &levels, workers);
            let sweep = ex.joint_sweep().expect("joint sweep succeeds");
            let truth = best_joint_performance(&sweep).expect("a design fits");
            let r = ex
                .joint_explore(StrategyKind::BranchAndBound)
                .expect("guided search succeeds");
            let got = r
                .selected
                .as_ref()
                .unwrap_or_else(|| panic!("{name} at {workers} workers: nothing selected"));
            assert_eq!(got.point, truth.point, "{name} at {workers} workers");
            assert_eq!(got.estimate, truth.estimate, "{name} at {workers} workers");
            // Every point is either paid for at tier 1 or provably
            // excluded by a tier-0 bound — none silently dropped.
            assert_eq!(r.space_points, sweep.len() as u64, "{name}");
            assert_eq!(
                r.stats.strategy_visited + r.stats.bounded_pruned,
                r.space_points,
                "{name} at {workers} workers"
            );
            assert!(
                r.stats.strategy_visited <= r.space_points,
                "{name} at {workers} workers"
            );
        }
    }
}

#[test]
fn coordinate_descent_lands_within_its_reported_gap() {
    for (name, kernel, levels) in suite() {
        for workers in WORKER_COUNTS {
            let ex = explorer(&kernel, &levels, workers);
            let sweep = ex.joint_sweep().expect("joint sweep succeeds");
            let truth = best_joint_performance(&sweep).expect("a design fits");
            let r = ex
                .joint_explore(StrategyKind::CoordinateDescent)
                .expect("guided search succeeds");
            let got = r
                .selected
                .as_ref()
                .unwrap_or_else(|| panic!("{name} at {workers} workers: nothing selected"));
            let gap = r
                .gap_cycles
                .unwrap_or_else(|| panic!("{name}: coordinate descent reports no gap"));
            assert!(
                got.estimate.cycles.saturating_sub(truth.estimate.cycles) <= gap,
                "{name} at {workers} workers: selected {} cycles, optimal {}, claimed gap {}",
                got.estimate.cycles,
                truth.estimate.cycles,
                gap
            );
        }
    }
}

#[test]
fn guided_decisions_are_identical_at_every_worker_count() {
    for (name, kernel, levels) in suite() {
        for kind in [
            StrategyKind::BranchAndBound,
            StrategyKind::CoordinateDescent,
        ] {
            let serial = decisions(
                &explorer(&kernel, &levels, 1)
                    .joint_explore(kind)
                    .expect("serial guided search succeeds"),
            );
            for workers in WORKER_COUNTS {
                let par = decisions(
                    &explorer(&kernel, &levels, workers)
                        .joint_explore(kind)
                        .expect("parallel guided search succeeds"),
                );
                assert_eq!(
                    par, serial,
                    "{name} {kind}: decisions differ at {workers} workers"
                );
            }
        }
    }
}
