//! Semantics preservation: the whole transformation pipeline must leave
//! every kernel's input/output behaviour unchanged, for every unroll
//! vector and option combination — verified against both the reference
//! interpreter and the plain-Rust reference implementations.

use defacto::prelude::*;
use defacto_ir::run_with_inputs;
use defacto_kernels::{correlation, fir, jacobi, matmul, morphology, pattern, sobel, workload};
use defacto_xform::transform;
use proptest::prelude::*;

/// Apply the pipeline at `factors` and compare all output arrays with the
/// untransformed kernel on the given inputs.
fn assert_preserves(
    kernel: &Kernel,
    factors: Vec<i64>,
    opts: &TransformOptions,
    inputs: &[(&str, Vec<i64>)],
    outputs: &[&str],
) {
    let design = transform(kernel, &UnrollVector(factors.clone()), opts)
        .unwrap_or_else(|e| panic!("transform {factors:?} failed: {e}"));
    let (w0, _) = run_with_inputs(kernel, inputs).expect("original runs");
    let (w1, _) = run_with_inputs(&design.kernel, inputs).expect("transformed runs");
    for out in outputs {
        assert_eq!(
            w0.array(out),
            w1.array(out),
            "output `{out}` differs at factors {factors:?}\n{}",
            design.kernel
        );
    }
}

#[test]
fn fir_all_divisor_unrolls() {
    let k = fir::kernel();
    let inputs = vec![
        ("S", workload::signal(96, 10)),
        ("C", workload::signal(32, 11)),
    ];
    let opts = TransformOptions::default();
    for uj in [1, 2, 4, 8, 16, 32, 64] {
        for ui in [1, 2, 8, 32] {
            assert_preserves(&k, vec![uj, ui], &opts, &inputs, &["D"]);
        }
    }
}

#[test]
fn matmul_representative_unrolls() {
    let k = matmul::kernel();
    let inputs = vec![
        ("A", workload::signal(512, 20)),
        ("B", workload::signal(64, 21)),
    ];
    let opts = TransformOptions::default();
    for factors in [
        vec![1, 1, 1],
        vec![2, 1, 1],
        vec![4, 2, 1],
        vec![8, 4, 1],
        vec![2, 2, 4],
        vec![32, 4, 16],
    ] {
        assert_preserves(&k, factors, &opts, &inputs, &["C"]);
    }
}

#[test]
fn pattern_representative_unrolls() {
    let k = pattern::kernel();
    let inputs = vec![("S", workload::text(64, 30)), ("P", workload::text(16, 31))];
    let opts = TransformOptions::default();
    for factors in [
        vec![1, 1],
        vec![2, 2],
        vec![6, 4],
        vec![12, 8],
        vec![48, 16],
    ] {
        assert_preserves(&k, factors, &opts, &inputs, &["M"]);
    }
}

#[test]
fn jacobi_representative_unrolls() {
    let k = jacobi::kernel();
    let inputs = vec![("A", workload::image(34, 40))];
    let opts = TransformOptions::default();
    for factors in [vec![1, 1], vec![2, 2], vec![4, 8], vec![16, 4]] {
        assert_preserves(&k, factors, &opts, &inputs, &["B"]);
    }
}

#[test]
fn sobel_representative_unrolls() {
    let k = sobel::kernel();
    let inputs = vec![("I", workload::image(34, 50))];
    let opts = TransformOptions::default();
    for factors in [vec![1, 1], vec![2, 2], vec![4, 4], vec![8, 2]] {
        assert_preserves(&k, factors, &opts, &inputs, &["E"]);
    }
}

#[test]
fn correlation_representative_unrolls() {
    let k = correlation::kernel_sized(12, 4);
    let img: Vec<i64> = workload::image(12, 80).iter().map(|v| v % 16).collect();
    let tpl: Vec<i64> = workload::image(4, 81).iter().map(|v| v % 8).collect();
    let inputs = vec![("I", img), ("T", tpl)];
    let opts = TransformOptions::default();
    for factors in [
        vec![1, 1, 1, 1],
        vec![2, 2, 1, 1],
        vec![1, 1, 2, 2],
        vec![4, 2, 2, 1],
    ] {
        assert_preserves(&k, factors, &opts, &inputs, &["R"]);
    }
}

#[test]
fn morphology_representative_unrolls() {
    for op in [
        morphology::Morphology::Dilate,
        morphology::Morphology::Erode,
    ] {
        let k = morphology::kernel_sized(op, 18);
        let inputs = vec![("I", workload::image(18, 90))];
        let opts = TransformOptions::default();
        for factors in [vec![1, 1], vec![2, 2], vec![4, 4], vec![16, 8]] {
            assert_preserves(&k, factors, &opts, &inputs, &["O"]);
        }
    }
}

#[test]
fn every_option_combination_preserves_fir() {
    let k = fir::kernel();
    let inputs = vec![
        ("S", workload::signal(96, 60)),
        ("C", workload::signal(32, 61)),
    ];
    for scalar_replacement in [false, true] {
        for redundant_write_elim in [false, true] {
            for custom_layout in [false, true] {
                for peel in [false, true] {
                    for register_budget in [None, Some(8)] {
                        let opts = TransformOptions {
                            scalar_replacement,
                            redundant_write_elim,
                            custom_layout,
                            peel,
                            register_budget,
                            num_memories: 4,
                            // Every combination must also emit
                            // structurally sound IR at each stage.
                            verify_each_pass: true,
                        };
                        assert_preserves(&k, vec![4, 2], &opts, &inputs, &["D"]);
                    }
                }
            }
        }
    }
}

#[test]
fn outputs_also_match_rust_references() {
    // Beyond self-consistency: transformed kernels agree with independent
    // Rust implementations of each algorithm.
    let s = workload::signal(96, 70);
    let c = workload::signal(32, 71);
    let d = transform(
        &fir::kernel(),
        &UnrollVector(vec![8, 4]),
        &TransformOptions::default(),
    )
    .expect("transforms");
    let (ws, _) = run_with_inputs(&d.kernel, &[("S", s.clone()), ("C", c.clone())]).expect("runs");
    assert_eq!(ws.array("D").unwrap(), fir::reference(&s, &c).as_slice());

    let img = workload::image(34, 72);
    let d = transform(
        &sobel::kernel(),
        &UnrollVector(vec![4, 4]),
        &TransformOptions::default(),
    )
    .expect("transforms");
    let (ws, _) = run_with_inputs(&d.kernel, &[("I", img.clone())]).expect("runs");
    assert_eq!(
        ws.array("E").unwrap(),
        sobel::reference(&img, 34).as_slice()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random FIR sizes, random divisor unrolls, random signals: the
    /// pipeline preserves semantics.
    #[test]
    fn prop_fir_pipeline_preserves(
        n_out_pow in 2u32..6,
        n_taps_pow in 1u32..5,
        uj_pow in 0u32..6,
        ui_pow in 0u32..5,
        seed in 0u64..1000,
    ) {
        let n_out = 1usize << n_out_pow;
        let n_taps = 1usize << n_taps_pow;
        let uj = 1i64 << uj_pow.min(n_out_pow);
        let ui = 1i64 << ui_pow.min(n_taps_pow);
        let k = fir::kernel_sized(n_out, n_taps);
        let s = workload::signal(n_out + n_taps, seed);
        let c = workload::signal(n_taps, seed + 1);
        let design = transform(&k, &UnrollVector(vec![uj, ui]), &TransformOptions::default())
            .expect("transforms");
        let (w0, _) = run_with_inputs(&k, &[("S", s.clone()), ("C", c.clone())]).expect("runs");
        let (w1, _) = run_with_inputs(&design.kernel, &[("S", s), ("C", c)]).expect("runs");
        prop_assert_eq!(w0.array("D"), w1.array("D"));
    }

    /// Random small matrix sizes and unrolls for MM.
    #[test]
    fn prop_matmul_pipeline_preserves(
        m_pow in 1u32..4,
        k_pow in 1u32..4,
        n_pow in 0u32..3,
        ui_pow in 0u32..4,
        uj_pow in 0u32..3,
        seed in 0u64..1000,
    ) {
        let (m, kk, n) = (1usize << m_pow, 1usize << k_pow, 1usize << n_pow);
        let ui = 1i64 << ui_pow.min(m_pow);
        let uj = 1i64 << uj_pow.min(n_pow);
        let kern = matmul::kernel_sized(m, kk, n);
        let a = workload::signal(m * kk, seed);
        let b = workload::signal(kk * n, seed + 1);
        let design = transform(
            &kern,
            &UnrollVector(vec![ui, uj, 1]),
            &TransformOptions::default(),
        )
        .expect("transforms");
        let (w0, _) = run_with_inputs(&kern, &[("A", a.clone()), ("B", b.clone())]).expect("runs");
        let (w1, _) = run_with_inputs(&design.kernel, &[("A", a), ("B", b)]).expect("runs");
        prop_assert_eq!(w0.array("C"), w1.array("C"));
    }
}
