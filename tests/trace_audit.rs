//! Trace and auditor contract over the whole paper suite.
//!
//! Every search on every paper kernel must produce a trace that (a) the
//! invariant auditor accepts with zero violations, (b) is byte-identical
//! at any worker count (tracing is an observability feature, not a
//! scheduling one), and (c) agrees with the un-traced run. The plain
//! [`run_search`] entry point and [`Explorer::explore`] must also agree
//! on cache accounting for the same serial run, since both sit on a
//! single cache layer.

use defacto::prelude::*;
use defacto::{run_search, to_jsonl, SearchConfig};
use std::sync::Arc;

const WORKER_COUNTS: [usize; 2] = [1, 8];

fn traced_run(
    kernel: &defacto_ir::Kernel,
    workers: usize,
) -> (SearchResult, Vec<TraceEvent>, SaturationInfo, DesignSpace) {
    let sink = Arc::new(MemorySink::new());
    let ex = Explorer::new(kernel).threads(workers).trace(sink.clone());
    let (sat, space) = ex.analyze().expect("analysis succeeds");
    let r = ex.explore().expect("search succeeds");
    (r, sink.events(), sat, space)
}

#[test]
fn audit_is_clean_on_every_paper_kernel_at_every_worker_count() {
    for (name, kernel) in defacto_kernels::paper_kernels() {
        for workers in WORKER_COUNTS {
            let (r, events, sat, space) = traced_run(&kernel, workers);
            let report = audit_search_trace(&events, &space, &sat);
            assert!(report.is_clean(), "{name} at {workers} workers: {report}");
            assert!(report.checks > 0, "{name}");
            // The trace ends by selecting exactly what the result says.
            match events.last() {
                Some(TraceEvent::Terminate { selected, .. }) => {
                    assert_eq!(selected, &r.selected.unroll, "{name}");
                }
                other => panic!("{name}: trace does not end in Terminate: {other:?}"),
            }
        }
    }
}

#[test]
fn traces_are_byte_identical_across_worker_counts() {
    for (name, kernel) in defacto_kernels::paper_kernels() {
        let (_, serial_events, _, _) = traced_run(&kernel, 1);
        let serial = to_jsonl(&serial_events);
        for workers in WORKER_COUNTS {
            let (_, events, _, _) = traced_run(&kernel, workers);
            assert_eq!(
                to_jsonl(&events),
                serial,
                "{name}: trace bytes differ at {workers} workers"
            );
        }
    }
}

#[test]
fn tracing_does_not_change_the_search_result() {
    for (name, kernel) in defacto_kernels::paper_kernels() {
        let plain = Explorer::new(&kernel).threads(1).explore().unwrap();
        let (traced, _, _, _) = traced_run(&kernel, 1);
        assert_eq!(traced.selected, plain.selected, "{name}");
        assert_eq!(traced.visited, plain.visited, "{name}");
        assert_eq!(traced.termination, plain.termination, "{name}");
    }
}

#[test]
fn visit_events_mirror_the_visited_list() {
    for (name, kernel) in defacto_kernels::paper_kernels() {
        let (r, events, _, _) = traced_run(&kernel, 1);
        let first_visits: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Visit {
                    unroll,
                    cache_hit: false,
                    ..
                } => Some(unroll.clone()),
                _ => None,
            })
            .collect();
        let visited: Vec<_> = r.visited.iter().map(|d| d.unroll.clone()).collect();
        assert_eq!(first_visits, visited, "{name}");
    }
}

#[test]
fn run_search_and_explorer_agree_on_cache_accounting() {
    for (name, kernel) in defacto_kernels::paper_kernels() {
        let ex = Explorer::new(&kernel).threads(1);
        let (sat, space) = ex.analyze().unwrap();
        let from_explorer = ex.explore().unwrap();

        // A fresh evaluator for the plain entry point: run_search's own
        // memo layer is the only cache in this run, so hits counted
        // there must match the engine-backed run above.
        let eval_ex = Explorer::new(&kernel).threads(1);
        let r = run_search(&space, &sat, &SearchConfig::default(), |u| {
            eval_ex.evaluate(u).map(|d| d.estimate)
        })
        .unwrap();

        assert_eq!(
            r.stats.cache_hits, from_explorer.stats.cache_hits,
            "{name}: cache-hit accounting disagrees between run_search and Explorer"
        );
        assert_eq!(
            r.stats.evaluated, from_explorer.stats.evaluated,
            "{name}: evaluation counts disagree between run_search and Explorer"
        );
        assert_eq!(r.selected.unroll, from_explorer.selected.unroll, "{name}");
    }
}
