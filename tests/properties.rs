//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary kernels, unroll factors and schedules, not just the paper's
//! five benchmarks.

use defacto::prelude::*;
use defacto_analysis::{analyze_dependences, AccessTable, Interval};
use defacto_ir::{parse_kernel as parse, pretty::print_kernel, run_with_inputs};
use defacto_synth::{schedule_dfg, MemoryModel as Mem};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a random 1-D stencil kernel
/// `B[i] = Σ w_k · A[i + off_k]` with bounded offsets, as DSL text.
fn stencil_kernel(offsets: &[i64], n: usize) -> Kernel {
    let lo = offsets.iter().min().copied().unwrap_or(0).min(0);
    let hi = offsets.iter().max().copied().unwrap_or(0).max(0);
    let a_len = n as i64 + hi - lo;
    let terms: Vec<String> = offsets
        .iter()
        .map(|&o| {
            if o == 0 {
                "A[i]".to_string()
            } else if o > 0 {
                format!("A[i + {o}]")
            } else {
                format!("A[i - {}]", -o)
            }
        })
        .collect();
    let src = format!(
        "kernel st {{
           in A: i32[{a_len}];
           out B: i32[{n}];
           for i in {}..{} {{
             B[i + {}] = {};
           }}
         }}",
        0,
        n,
        0,
        terms.join(" + "),
    );
    // Shift A's subscripts so the minimum offset maps to index 0.
    let src = src
        .replace("A[i", &format!("A[i + {}", -lo))
        .replace("+ -", "- ");
    // The replace above produces "A[i + 0 + k]" shapes; normalize by
    // re-parsing (the parser folds affine constants).
    parse(&src).expect("generated stencil parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pretty-printing then re-parsing a generated kernel is the
    /// identity.
    #[test]
    fn prop_pretty_print_round_trips(
        offs in proptest::collection::btree_set(-3i64..=3, 1..4),
        n_pow in 2u32..6,
    ) {
        let offsets: Vec<i64> = offs.into_iter().collect();
        let k = stencil_kernel(&offsets, 1usize << n_pow);
        let printed = print_kernel(&k);
        let back = parse(&printed).expect("printed kernel parses");
        prop_assert_eq!(k, back);
    }

    /// The full pipeline preserves semantics on random stencils for every
    /// divisor unroll factor.
    #[test]
    fn prop_stencil_pipeline_preserves(
        offs in proptest::collection::btree_set(-2i64..=3, 1..4),
        n_pow in 2u32..6,
        u_pow in 0u32..4,
        seed in 0u64..500,
    ) {
        let offsets: Vec<i64> = offs.into_iter().collect();
        let n = 1usize << n_pow;
        let u = 1i64 << u_pow.min(n_pow);
        let k = stencil_kernel(&offsets, n);
        let a_len = k.array("A").unwrap().len();
        let input = defacto_kernels::workload::signal(a_len, seed);
        let design = defacto_xform::transform(
            &k,
            &UnrollVector(vec![u]),
            &TransformOptions::default(),
        ).expect("transforms");
        let (w0, _) = run_with_inputs(&k, &[("A", input.clone())]).expect("runs");
        let (w1, _) = run_with_inputs(&design.kernel, &[("A", input)]).expect("runs");
        prop_assert_eq!(w0.array("B"), w1.array("B"));
    }

    /// Schedules respect dependences and memory-port exclusivity for
    /// arbitrary unrolled FIR bodies under both memory models.
    #[test]
    fn prop_schedule_invariants(
        uj_pow in 0u32..5,
        ui_pow in 0u32..4,
        pipelined in any::<bool>(),
        banks in 1usize..5,
    ) {
        let k = defacto_kernels::fir::kernel();
        let unrolled = defacto_xform::unroll_and_jam(
            &k,
            &[1 << uj_pow, 1 << ui_pow],
        ).expect("unrolls");
        let binding = defacto_xform::assign_memories(&unrolled, banks);
        let nest = unrolled.perfect_nest().expect("nest");
        let dfg = defacto_synth::dfg::build_dfg(nest.innermost_body(), &unrolled, &binding);
        let mem = if pipelined { Mem::pipelined(banks) } else { Mem::non_pipelined(banks) };
        let s = schedule_dfg(&dfg, &mem);

        // (1) No node starts before its predecessors finish.
        for node in dfg.nodes() {
            for p in &node.preds {
                prop_assert!(s.start[node.id.0] >= s.finish[p.0]);
            }
        }
        // (2) Per bank, memory issues never overlap their occupancy.
        for bank in 0..banks {
            let mut issues: Vec<(u64, u64)> = dfg
                .nodes()
                .iter()
                .filter_map(|n| match &n.kind {
                    defacto_synth::NodeKind::Load { bank: b, .. } if *b % banks == bank =>
                        Some((s.start[n.id.0], mem.read_occupancy() as u64)),
                    defacto_synth::NodeKind::Store { bank: b, .. } if *b % banks == bank =>
                        Some((s.start[n.id.0], mem.write_occupancy() as u64)),
                    _ => None,
                })
                .collect();
            issues.sort();
            for w in issues.windows(2) {
                prop_assert!(
                    w[1].0 >= w[0].0 + w[0].1,
                    "bank {bank}: overlapping accesses {:?}",
                    w
                );
            }
        }
        // (3) The busy accounting matches the issue list.
        let total_busy: u64 = s.mem_busy_per_bank.iter().sum();
        let expected: u64 = s.reads as u64 * mem.read_occupancy() as u64
            + s.writes as u64 * mem.write_occupancy() as u64;
        prop_assert_eq!(total_busy, expected);
    }

    /// The Figure-2 search always returns a member of the design space,
    /// never exceeds it in visits, and is invariant to re-running.
    #[test]
    fn prop_search_stays_in_space(
        n_out_pow in 3u32..7,
        n_taps_pow in 2u32..6,
        pipelined in any::<bool>(),
    ) {
        let k = defacto_kernels::fir::kernel_sized(1 << n_out_pow, 1 << n_taps_pow);
        let mem = if pipelined {
            MemoryModel::wildstar_pipelined()
        } else {
            MemoryModel::wildstar_non_pipelined()
        };
        let ex = Explorer::new(&k).memory(mem);
        let (_, space) = ex.analyze().expect("analysis succeeds");
        let r = ex.explore().expect("search succeeds");
        prop_assert!(space.contains(&r.selected.unroll), "{}", r.selected.unroll);
        for v in &r.visited {
            prop_assert!(space.contains(&v.unroll));
        }
        prop_assert!(r.visited.len() as u64 <= space.size());
        prop_assert!(r.selected.estimate.balance.is_finite() || r.selected.estimate.memory_busy_cycles == 0);
    }

    /// Interval arithmetic is sound: for any concrete values inside two
    /// intervals, every arithmetic result lies inside the computed result
    /// interval.
    #[test]
    fn prop_interval_arithmetic_sound(
        a_lo in -1000i64..1000, a_len in 0i64..200,
        b_lo in -1000i64..1000, b_len in 0i64..200,
        pick_a in 0.0f64..=1.0, pick_b in 0.0f64..=1.0,
    ) {
        let ia = Interval::new(a_lo, a_lo + a_len);
        let ib = Interval::new(b_lo, b_lo + b_len);
        let x = a_lo + (pick_a * a_len as f64) as i64;
        let y = b_lo + (pick_b * b_len as f64) as i64;

        let contains = |i: Interval, v: i64| i.lo <= v && v <= i.hi;
        prop_assert!(contains(ia.add(ib), x + y));
        prop_assert!(contains(ia.sub(ib), x - y));
        prop_assert!(contains(ia.mul(ib), x * y));
        prop_assert!(contains(ia.neg(), -x));
        prop_assert!(contains(ia.abs(), x.abs()));
        prop_assert!(contains(ia.union(ib), x));
        prop_assert!(contains(ia.union(ib), y));
        let div = if y == 0 { 0 } else { x / y };
        prop_assert!(contains(ia.div(ib), div), "{x}/{y}={div} not in {:?}", ia.div(ib));
        let rem = if y == 0 { 0 } else { x % y };
        prop_assert!(contains(ia.rem(ib), rem), "{x}%{y}={rem} not in {:?}", ia.rem(ib));
    }

    /// Interval bit counts are sufficient: every value of the interval
    /// survives a round trip through a register of the computed width.
    #[test]
    fn prop_interval_bits_sufficient(
        lo in -100_000i64..100_000, len in 0i64..10_000, pick in 0.0f64..=1.0,
    ) {
        let i = Interval::new(lo, lo + len);
        let v = lo + (pick * len as f64) as i64;
        let bits = i.bits();
        prop_assert!((1..=64).contains(&bits));
        // Two's-complement round trip at `bits` width.
        let m = 1i128 << bits;
        let wrapped = (((v as i128 % m) + m) % m) as i64;
        let signed = if i.lo < 0 && wrapped >= (m / 2) as i64 {
            wrapped - m as i64
        } else {
            wrapped
        };
        prop_assert_eq!(signed, v, "width {} too narrow for {} in {:?}", bits, v, i);
    }

    /// Bit-width narrowing never changes cycles upward or semantics — it
    /// is purely an estimation refinement.
    #[test]
    fn prop_narrowing_only_shrinks(
        sbits in 4u32..16,
        u_pow in 0u32..4,
    ) {
        let hi = (1i64 << (sbits - 1)) - 1;
        let k = parse_kernel(&format!(
            "kernel f {{
               in S: i32[96] range {}..{hi};
               in C: i32[32] range {}..{hi};
               inout D: i32[64];
               for j in 0..64 {{ for i in 0..32 {{
                 D[j] = D[j] + S[i + j] * C[i]; }} }}
             }}",
            -hi - 1, -hi - 1,
        )).expect("parses");
        let u = UnrollVector(vec![1 << u_pow, 1]);
        let wide = Explorer::new(&k).evaluate(&u).expect("evaluates").estimate;
        let narrow = Explorer::new(&k)
            .bitwidth_narrowing(true)
            .evaluate(&u)
            .expect("evaluates")
            .estimate;
        prop_assert!(narrow.slices <= wide.slices);
        prop_assert!(narrow.cycles <= wide.cycles);
        prop_assert_eq!(narrow.bits_from_memory, wide.bits_from_memory);
    }

    /// The parser is total: arbitrary input text returns a parse error or
    /// a kernel, never panics.
    #[test]
    fn prop_parser_never_panics(text in ".{0,200}") {
        let _ = parse(&text);
    }

    /// Near-miss kernels (valid prefix + mutation) also never panic and
    /// either parse or produce a positioned error.
    #[test]
    fn prop_mutated_kernel_never_panics(
        cut in 0usize..120,
        junk in "[a-z0-9\\[\\]{}();:=+*<>,. ]{0,40}",
    ) {
        let base = "kernel k { in A: i32[8]; out B: i32[8]; for i in 0..8 { B[i] = A[i] * 2; } }";
        let cut = cut.min(base.len());
        let mutated = format!("{}{}", &base[..cut], junk);
        match parse(&mutated) {
            Ok(k) => prop_assert_eq!(k.name(), "k"),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Dependence analysis is symmetric in its conservative direction:
    /// shifting every constant offset of a stencil by the same amount
    /// leaves the dependence structure unchanged.
    #[test]
    fn prop_dependences_shift_invariant(
        offs in proptest::collection::btree_set(-2i64..=2, 1..4),
        shift in -2i64..=2,
    ) {
        let offsets: Vec<i64> = offs.iter().copied().collect();
        let shifted: Vec<i64> = offsets.iter().map(|o| o + shift).collect();
        let k1 = stencil_kernel(&offsets, 16);
        let k2 = stencil_kernel(&shifted, 16);
        let deps = |k: &Kernel| {
            let nest = k.perfect_nest().unwrap();
            let t = AccessTable::from_stmts(nest.innermost_body());
            let vars = nest.vars();
            let g = analyze_dependences(&t, &vars);
            let mut d: Vec<_> = g
                .deps()
                .iter()
                .map(|d| (d.kind, d.distance.clone()))
                .collect();
            d.sort_by_key(|x| format!("{x:?}"));
            d
        };
        prop_assert_eq!(deps(&k1), deps(&k2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The legacy unroll-only `DesignSpace` round-trips through the
    /// multi-axis machinery as a degenerate joint space: the same points
    /// in the same order with nothing for legality to prune, bit-identical
    /// sweep estimates, and Figure-2 selections, visit lists, traces and
    /// deterministic `EvalStats` counters that match the classic path —
    /// sampled over the five paper kernels, both memory models, at 1 and
    /// 8 workers.
    #[test]
    fn prop_unroll_only_axes_round_trip(
        idx in 0usize..5,
        pipelined in any::<bool>(),
    ) {
        let kernels = defacto_kernels::paper_kernels();
        let (_name, k) = &kernels[idx];
        let mem = if pipelined {
            MemoryModel::wildstar_pipelined()
        } else {
            MemoryModel::wildstar_non_pipelined()
        };

        // Space and sweep parity (worker-count independent; untraced).
        let classic = Explorer::new(k).memory(mem.clone());
        let joint = Explorer::new(k).memory(mem.clone()).axes(&[Axis::Unroll]);
        let (_, space) = classic.analyze().expect("classic analysis");
        let jspace = joint.joint_space().expect("joint space");
        let legacy: Vec<UnrollVector> = space.iter().collect();
        prop_assert_eq!(jspace.joint_points().len() as u64, space.size());
        for (jp, cu) in jspace.joint_points().iter().zip(&legacy) {
            prop_assert!(jp.is_unroll_only(), "{jp:?} is not a pure unroll point");
            prop_assert_eq!(&jp.unroll_vector(), cu);
        }
        if let Some(p) = jspace.pruned_counts() {
            prop_assert_eq!(p.permutations + p.unroll_perm + p.tiles, 0);
        }
        let classic_sweep = classic.sweep().expect("classic sweep");
        let joint_sweep = joint.joint_sweep().expect("joint sweep");
        prop_assert_eq!(joint_sweep.len(), classic_sweep.len());
        for (j, c) in joint_sweep.iter().zip(&classic_sweep) {
            prop_assert_eq!(j.point.unroll_vector(), c.unroll.clone());
            prop_assert_eq!(&j.estimate, &c.estimate);
        }

        // The Figure-2 search is bit-identical between the classic and
        // the degenerate-joint explorer, and across worker counts.
        let mut per_workers: Vec<(UnrollVector, String)> = Vec::new();
        for workers in [1usize, 8] {
            let classic_sink = Arc::new(MemorySink::new());
            let joint_sink = Arc::new(MemorySink::new());
            let classic = Explorer::new(k)
                .memory(mem.clone())
                .threads(workers)
                .trace(classic_sink.clone());
            let joint = Explorer::new(k)
                .memory(mem.clone())
                .threads(workers)
                .trace(joint_sink.clone())
                .axes(&[Axis::Unroll]);
            let rc = classic.explore().expect("classic search");
            let rj = joint.explore().expect("joint search");
            prop_assert_eq!(&rc.selected.unroll, &rj.selected.unroll);
            prop_assert_eq!(&rc.selected.estimate, &rj.selected.estimate);
            prop_assert_eq!(rc.termination, rj.termination);
            prop_assert_eq!(rc.visited.len(), rj.visited.len());
            for (a, b) in rc.visited.iter().zip(&rj.visited) {
                prop_assert_eq!(&a.unroll, &b.unroll);
                prop_assert_eq!(&a.estimate, &b.estimate);
            }
            // Deterministic counters only: wall times are excluded by
            // construction.
            prop_assert_eq!(rc.stats.evaluated, rj.stats.evaluated);
            prop_assert_eq!(rc.stats.tier0_evaluated, rj.stats.tier0_evaluated);
            prop_assert_eq!(rc.stats.tier0_pruned, rj.stats.tier0_pruned);
            let trace = classic_sink.to_jsonl();
            prop_assert_eq!(&trace, &joint_sink.to_jsonl());
            per_workers.push((rc.selected.unroll.clone(), trace));
        }
        prop_assert_eq!(&per_workers[0], &per_workers[1]);
    }
}
