//! End-to-end integration: every paper kernel through the full flow —
//! parse → analyze → transform → estimate → search → VHDL.

use defacto::prelude::*;
use defacto_synth::emit_vhdl;

fn explore(kernel: &Kernel, mem: MemoryModel) -> SearchResult {
    Explorer::new(kernel)
        .memory(mem)
        .explore()
        .expect("search succeeds")
}

#[test]
fn all_kernels_explore_with_both_memory_models() {
    for (name, kernel) in defacto_kernels::paper_kernels() {
        for mem in [
            MemoryModel::wildstar_pipelined(),
            MemoryModel::wildstar_non_pipelined(),
        ] {
            let r = explore(&kernel, mem.clone());
            assert!(r.selected.estimate.fits, "{name}: selected design must fit");
            assert!(r.selected.estimate.cycles > 0, "{name}");
            assert!(
                r.visited.len() as u64 <= r.space_size,
                "{name}: visited more than the space"
            );
            // The paper's headline: only a small fraction is searched.
            assert!(
                r.visited.len() <= 10,
                "{name}: search visited {} designs",
                r.visited.len()
            );
        }
    }
}

#[test]
fn selected_design_beats_baseline_everywhere() {
    for (name, kernel) in defacto_kernels::paper_kernels() {
        for mem in [
            MemoryModel::wildstar_pipelined(),
            MemoryModel::wildstar_non_pipelined(),
        ] {
            let ex = Explorer::new(&kernel).memory(mem);
            let r = ex.explore().expect("search succeeds");
            let depth = r.selected.unroll.factors().len();
            let base = ex.evaluate(&UnrollVector::ones(depth)).expect("baseline");
            assert!(
                r.selected.estimate.cycles <= base.estimate.cycles,
                "{name}: selected {} vs baseline {}",
                r.selected.estimate.cycles,
                base.estimate.cycles
            );
        }
    }
}

#[test]
fn vhdl_emits_for_every_selected_design() {
    for (name, kernel) in defacto_kernels::paper_kernels() {
        let ex = Explorer::new(&kernel);
        let r = ex.explore().expect("search succeeds");
        let design = ex.design(&r.selected.unroll).expect("transforms");
        let vhdl = emit_vhdl(&design);
        assert!(vhdl.contains("entity"), "{name}");
        assert!(vhdl.contains("architecture behavioral"), "{name}");
        assert!(vhdl.contains("mem0_addr"), "{name}");
        // The design touches memory, so reads or writes must appear.
        assert!(
            vhdl.contains("mem_read(") || vhdl.contains("mem_write("),
            "{name}"
        );
    }
}

#[test]
fn place_and_route_validates_estimates() {
    use defacto_synth::place_and_route;
    let dev = FpgaDevice::virtex1000();
    for (name, kernel) in defacto_kernels::paper_kernels() {
        let ex = Explorer::new(&kernel);
        let r = ex.explore().expect("search succeeds");
        let par = place_and_route(&r.selected.estimate, &dev, 1);
        // §6.4: cycle counts never change from estimate to implementation.
        assert_eq!(par.cycles, r.selected.estimate.cycles, "{name}");
        // Selected designs avoid severe clock degradation (< 35%, the
        // paper saw at most 30% for pipelined FIR).
        let degradation = (par.achieved_clock_ns - 40.0) / 40.0;
        assert!(degradation < 0.35, "{name}: clock degraded {degradation}");
    }
}

#[test]
fn extended_suite_explores_cleanly() {
    for (name, kernel) in defacto_kernels::extended_kernels() {
        let ex = Explorer::new(&kernel);
        let r = ex.explore().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(r.selected.estimate.fits, "{name}");
        let depth = r.selected.unroll.factors().len();
        let base = ex.evaluate(&UnrollVector::ones(depth)).expect("baseline");
        assert!(
            r.selected.estimate.cycles <= base.estimate.cycles,
            "{name}: selected not faster than baseline"
        );
    }
}

#[test]
fn explorer_is_reusable_and_deterministic() {
    let (_, kernel) = defacto_kernels::paper_kernels().remove(2); // PAT
    let ex = Explorer::new(&kernel);
    let a = ex.explore().expect("first run");
    let b = ex.explore().expect("second run");
    assert_eq!(a.selected.unroll, b.selected.unroll);
    assert_eq!(a.termination, b.termination);
    assert_eq!(
        a.visited
            .iter()
            .map(|v| v.unroll.clone())
            .collect::<Vec<_>>(),
        b.visited
            .iter()
            .map(|v| v.unroll.clone())
            .collect::<Vec<_>>(),
    );
}
