//! Offline shim for `serde`: a value-based serialization model covering
//! exactly what this workspace uses. The build environment has no
//! registry access, so the real serde cannot be fetched; this crate keeps
//! the `serde::Serialize` / `serde::Deserialize` derive surface compiling
//! against a simple JSON-like [`Value`] tree.
//!
//! Differences from real serde, by design:
//! - [`Serialize`] produces a [`Value`] directly (no serializer trait).
//! - [`Deserialize`] consumes a `&Value` (no visitor machinery).
//! - Only the types the workspace serializes are covered; generic or
//!   exotic shapes fail to compile rather than misbehave at runtime.

// Let the derive-generated `::serde::...` paths resolve inside this
// crate's own tests too.
extern crate self as serde;

// Trait and derive macro share a name, as in real serde (macros live in
// a separate namespace).
pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    /// Deserialization error: a message describing the mismatch.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl Error {
        /// Build an error from a message.
        pub fn custom(msg: &str) -> Self {
            Error(msg.to_string())
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for Error {}
}

use de::Error;

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value under `key` in an object, or `None`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Value::get`] but an error naming the missing key (used by
    /// derived `Deserialize` impls).
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error(format!("missing field `{key}`")))
    }

    /// Element `i` of an array, as an error-carrying lookup.
    pub fn index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(i)
                .ok_or_else(|| Error(format!("missing tuple element {i}"))),
            _ => Err(Error("expected array".into())),
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::UInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Is this `Value::Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Serialize a value into a [`Value`] tree.
pub trait Serialize {
    /// The value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialize a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(raw).map_err(|_| Error(format!("integer {raw} out of range")))
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(v) => Value::Int(v),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(raw).map_err(|_| Error(format!("integer {raw} out of range")))
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                // JSON has one number type: accept ints for float fields,
                // and null for the non-finite floats encoded as null.
                if v.is_null() {
                    return Ok(<$t>::INFINITY);
                }
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error(format!("expected number, got {v:?}")))
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error(format!("expected array, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($name::from_value(v.index($idx)?)?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<i64> = vec![1, 2, 3];
        assert_eq!(Vec::<i64>::from_value(&v.to_value()).unwrap(), v);
        let t: (Vec<i64>, f64) = (vec![4, 2], 1.5);
        assert_eq!(<(Vec<i64>, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn object_indexing() {
        let v = Value::Object(vec![("k".into(), Value::Str("x".into()))]);
        assert_eq!(v["k"], "x");
        assert!(v["missing"].is_null());
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Demo {
        a: u64,
        b: Vec<i64>,
        c: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrap(Vec<i64>);

    #[test]
    fn derive_round_trips() {
        let d = Demo {
            a: 9,
            b: vec![1, -2],
            c: "z".into(),
        };
        assert_eq!(Demo::from_value(&d.to_value()).unwrap(), d);
        let w = Wrap(vec![3, 4]);
        assert_eq!(Wrap::from_value(&w.to_value()).unwrap(), w);
    }
}
