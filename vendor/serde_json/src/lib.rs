//! Offline shim for `serde_json`: JSON text encoding/decoding over the
//! vendored `serde` crate's [`Value`] tree. Covers the surface this
//! workspace uses — `to_string`, `to_string_pretty`, `from_str`, the
//! [`json!`] macro and [`Value`] indexing/accessors.
//!
//! Non-finite floats encode as `null`, matching real serde_json's
//! permissive printers.

pub use serde::Value;

/// Error for JSON encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.0)
    }
}

/// Convert any serializable value to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to compact JSON text.
///
/// # Errors
///
/// Never fails in this shim; the `Result` keeps call sites
/// source-compatible with real serde_json.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (2-space indent).
///
/// # Errors
///
/// Never fails in this shim.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
///
/// # Errors
///
/// Returns an error for malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that round-trips,
                // and always includes a `.0`/exponent for integral floats.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                write_value(out, &items[i], indent, d);
            });
        }
        Value::Object(entries) => {
            write_seq(out, indent, depth, entries.len(), '{', '}', |out, i, d| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`].
///
/// # Errors
///
/// Returns a positioned error for malformed input.
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected `{}` at byte {pos}", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos])
                        .map_err(|_| Error("invalid UTF-8".into()))?,
                );
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error("bad number".into()))?;
    if text.is_empty() {
        return Err(Error(format!("expected value at byte {start}")));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::Int(v));
        }
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error(format!("bad number `{text}`")))
}

/// Build a [`Value`] with JSON-like syntax: object and array literals
/// whose values are expressions implementing `serde::Serialize`. Nest
/// objects by nesting `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($e:expr) => { $crate::to_value(&$e) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = json!({
            "name": "fir",
            "n": 42u64,
            "neg": -7i64,
            "ok": true,
            "xs": vec![1i64, 2, 3],
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back["name"], "fir");
        assert_eq!(back["n"].as_u64(), Some(42));
        assert_eq!(back["xs"][1].as_i64(), Some(2));
    }

    #[test]
    fn pretty_output_parses() {
        let v = json!({ "a": vec![1i64], "b": "x" });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn floats_and_non_finite() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(from_str::<f64>("2.25").unwrap(), 2.25);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd".to_string();
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
