//! Offline shim for `proptest`: the subset of the property-testing API
//! this workspace's test suites use, with deterministic pseudo-random
//! case generation (the build environment has no registry access, so the
//! real proptest cannot be fetched).
//!
//! Covered surface:
//! - `proptest! { #![proptest_config(..)] #[test] fn name(a in strat, ..) { .. } }`
//! - range strategies (`lo..hi`, `lo..=hi`) for the integer and float
//!   types the tests draw from
//! - `any::<bool>()`
//! - `proptest::collection::btree_set(elem, size_range)`
//! - `&str` regex-lite strategies: `.{lo,hi}` and `[charset]{lo,hi}`
//! - `prop_assert!` / `prop_assert_eq!`
//!
//! Cases are seeded from the test name and case index, so runs are
//! reproducible across machines and invocations — there is no failure
//! persistence file because there is no nondeterminism to persist.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Test-case failure raised by `prop_assert!`-family macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration: how many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case PRNG (SplitMix64 over a seed derived from the
/// test name and case index).
pub struct TestRng(u64);

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1]`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Regex-lite string strategies: `.{lo,hi}` (printable ASCII) and
/// `[charset]{lo,hi}` with `\`-escapes and `a-z` ranges in the charset.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (charset, rest) = parse_char_class(self);
        let (lo, hi) = parse_repeat(rest);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| charset[rng.below(charset.len() as u64) as usize])
            .collect()
    }
}

/// The leading character class of a regex-lite pattern, and the rest.
fn parse_char_class(pattern: &str) -> (Vec<char>, &str) {
    let mut chars = pattern.chars();
    match chars.next() {
        Some('.') => ((' '..='~').collect(), chars.as_str()),
        Some('[') => {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                match chars.next() {
                    Some(']') => break,
                    Some('\\') => {
                        let c = chars.next().expect("escape at end of char class");
                        set.push(c);
                        prev = Some(c);
                    }
                    Some('-') => {
                        // `a-z` range; a leading/trailing `-` is literal.
                        let start = prev.take().expect("range without start");
                        let end = chars.next().expect("range without end");
                        for c in start..=end {
                            if c != start {
                                set.push(c);
                            }
                        }
                    }
                    Some(c) => {
                        set.push(c);
                        prev = Some(c);
                    }
                    None => panic!("unterminated char class in pattern"),
                }
            }
            (set, chars.as_str())
        }
        _ => panic!("unsupported pattern `{pattern}`: expected `.` or `[...]`"),
    }
}

/// A `{lo,hi}` repetition suffix.
fn parse_repeat(suffix: &str) -> (usize, usize) {
    let inner = suffix
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition `{suffix}`: expected `{{lo,hi}}`"));
    let (lo, hi) = inner.split_once(',').expect("`{lo,hi}` repetition");
    (
        lo.trim().parse().expect("repetition lower bound"),
        hi.trim().parse().expect("repetition upper bound"),
    )
}

pub mod collection {
    use super::{BTreeSet, Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `BTreeSet`s with sizes drawn from a range.
    pub struct BTreeSetStrategy<E> {
        elem: E,
        sizes: Range<usize>,
    }

    /// A `BTreeSet` of `elem`-generated values with a size in `sizes`.
    pub fn btree_set<E>(elem: E, sizes: Range<usize>) -> BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        BTreeSetStrategy { elem, sizes }
    }

    impl<E> Strategy for BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        type Value = BTreeSet<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.sizes.generate(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set; retry a bounded number of times,
            // then accept whatever size was reached (still >= 1 for any
            // non-empty element domain when the lower bound demands it).
            for _ in 0..(target.max(1) * 32) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.elem.generate(rng));
            }
            while set.len() < self.sizes.start {
                set.insert(self.elem.generate(rng));
            }
            set
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestRng};
}

/// Define property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` for each generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let detail = format!("{:?}", ($(&$arg,)*));
                let outcome: Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  inputs ({}): {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e,
                        stringify!($($arg),*),
                        detail,
                    );
                }
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body, reporting the failing
/// case's inputs instead of a bare panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let v = (2u32..6).generate(&mut rng);
            assert!((2..6).contains(&v));
            let v = (-3i64..=3).generate(&mut rng);
            assert!((-3..=3).contains(&v));
            let f = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = || {
            let mut rng = TestRng::for_case("det", 7);
            (0..10)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn string_patterns_respect_charset_and_length() {
        let mut rng = TestRng::for_case("strings", 0);
        for _ in 0..100 {
            let s = ".{0,200}".generate(&mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let s = "[a-c\\[\\]. ]{1,10}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 10);
            assert!(s.chars().all(|c| "abc[]. ".contains(c)));
        }
    }

    #[test]
    fn btree_set_sizes_in_range() {
        let mut rng = TestRng::for_case("sets", 0);
        for _ in 0..100 {
            let s = collection::btree_set(-3i64..=3, 1..4).generate(&mut rng);
            assert!((1..4).contains(&s.len()));
            assert!(s.iter().all(|v| (-3..=3).contains(v)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(a in 0u32..10, b in any::<bool>(), s in ".{0,5}") {
            prop_assert!(a < 10);
            prop_assert_eq!(b, b);
            prop_assert!(s.len() <= 5, "len {} > 5", s.len());
        }
    }
}
