//! Offline shim for `criterion`: the API surface this workspace's
//! benchmarks use, backed by a simple wall-clock timing loop (the build
//! environment has no registry access, so the real criterion cannot be
//! fetched). Statistical machinery is intentionally absent — each
//! benchmark reports the median per-iteration time over its samples,
//! which is enough to compare configurations and catch regressions.
//!
//! Benchmarks honour the standard harness flags loosely: `--bench` is
//! accepted and ignored; a positional filter substring selects matching
//! benchmark ids; `--test` runs one iteration per benchmark (used by
//! `cargo test --benches`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `group/function/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

impl From<&String> for BenchmarkId {
    fn from(name: &String) -> Self {
        BenchmarkId { name: name.clone() }
    }
}

/// Drives the timing loop inside a benchmark closure.
pub struct Bencher {
    /// Iterations per sample, chosen by the calibration pass.
    iters: u64,
    /// Total time spent across `iters` iterations of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                "--test" => test_mode = true,
                "--exact" => {}
                _ if a.starts_with('-') => {
                    // Unknown flags (e.g. --save-baseline) take no operand
                    // we care about; skip a following value if present.
                    if a.contains('=') {
                        continue;
                    }
                    let _ = args.next();
                }
                _ => filter = Some(a),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: 30,
        }
    }

    fn should_run(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Run a benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.name, |b| f(b));
        self
    }

    /// Run a benchmark over an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.name, |b| f(b, input));
        self
    }

    /// Finish the group (bookkeeping no-op in this shim).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.should_run(&full) {
            return;
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.criterion.test_mode {
            f(&mut b);
            println!("{full}: ok (test mode)");
            return;
        }
        // Calibrate the per-sample iteration count so one sample takes
        // roughly 5 ms, then collect samples and report the median.
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        b.iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).max(1) as u64;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            f(&mut b);
            samples.push(b.elapsed / b.iters as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let best = samples[0];
        println!(
            "{full:<50} median {} (best {}, {} samples x {} iters)",
            fmt_duration(median),
            fmt_duration(best),
            self.sample_count,
            b.iters,
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("FIR", "[4, 4]");
        assert_eq!(id.name, "FIR/[4, 4]");
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.sample_size(2).bench_function("f", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
