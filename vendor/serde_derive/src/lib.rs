//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the shapes this workspace actually uses —
//! structs with named fields, newtype tuple structs, and enums whose
//! variants are all unit variants. No `syn`/`quote`: the item is parsed
//! by hand from the raw token stream (the build environment has no
//! registry access, so this crate must be dependency-free).
//!
//! Generated code targets the vendored `serde` crate's value-based model:
//! `Serialize::to_value(&self) -> serde::Value` and
//! `Deserialize::from_value(&serde::Value) -> Result<Self, serde::de::Error>`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item the derive is attached to.
enum Item {
    /// `struct Name { a: A, b: B, ... }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(Inner);` — serialized transparently as the inner value.
    Newtype { name: String, arity: usize },
    /// `enum Name { A, B, ... }` — serialized as the variant name string.
    UnitEnum { name: String, variants: Vec<String> },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();

    // Skip attributes (`#[...]`, including expanded doc comments) and
    // visibility (`pub`, `pub(...)`).
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err("generic types are not supported by the serde shim derive".into());
        }
    }

    match (kind.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Item::Newtype {
                name,
                arity: count_tuple_fields(g.stream()),
            })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::UnitEnum {
                name,
                variants: parse_unit_variants(g.stream())?,
            })
        }
        (k, other) => Err(format!("unsupported item shape: {k} {other:?}")),
    }
}

/// Field names of a named-field struct body; types are skipped with
/// angle-bracket depth tracking so `HashMap<K, V>` commas don't split.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next(); // the `[...]` group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = iter.next() else { break };
        let field = match tree {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{field}`, got {other:?}")),
        }
        // Consume the type up to a top-level `,`.
        let mut angle_depth = 0i32;
        for t in iter.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    for t in body {
        saw_any = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let Some(tree) = iter.next() else { break };
        match tree {
            TokenTree::Ident(id) => variants.push(id.to_string()),
            other => return Err(format!("expected unit variant, got {other}")),
        }
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => {
                return Err(format!(
                    "only unit enum variants are supported by the serde shim derive, got {other}"
                ))
            }
        }
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Newtype { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Serialize::to_value(&self.0)\n\
                         }}\n\
                     }}"
                )
            } else {
                let elems: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Value::Array(vec![{}])\n\
                         }}\n\
                     }}",
                    elems.join(", ")
                )
            }
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?}"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(String::from(match self {{ {} }}))\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
                         ::core::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Newtype { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
                             ::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let elems: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Deserialize::from_value(v.index({i})?)?"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
                             ::core::result::Result::Ok({name}({}))\n\
                         }}\n\
                     }}",
                    elems.join(", ")
                )
            }
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::core::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
                         match v.as_str().ok_or_else(|| ::serde::de::Error::custom(\"expected string\"))? {{\n\
                             {},\n\
                             other => ::core::result::Result::Err(::serde::de::Error::custom(&format!(\"unknown variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().unwrap()
}
