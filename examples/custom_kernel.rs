//! Bring your own kernel: a 2-D correlation written in the DSL, explored
//! end to end, with the selected design's behavioral VHDL emitted.
//!
//! ```sh
//! cargo run --example custom_kernel
//! ```

use defacto::prelude::*;
use defacto_synth::emit_vhdl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8×8 template correlated over a 24×24 image — the image
    // correlation workload the paper's introduction motivates.
    let kernel = parse_kernel(
        "kernel correlate {
           in  I: i16[24][24];
           in  T: i16[8][8];
           inout R: i16[16][16];
           for y in 0..16 {
             for x in 0..16 {
               for v in 0..8 {
                 for u in 0..8 {
                   R[y][x] = R[y][x] + I[y + v][x + u] * T[v][u];
                 }
               }
             }
           }
         }",
    )?;

    let explorer = Explorer::new(&kernel);
    let (sat, space) = explorer.analyze()?;
    println!("kernel `{}`:", kernel.name());
    println!(
        "  {} uniformly generated read set(s), {} write set(s) with steady traffic",
        sat.read_sets, sat.write_sets
    );
    println!("  saturation product Psat = {}", sat.psat);
    println!(
        "  explored loops: {:?} -> design space of {} candidates",
        sat.unrollable,
        space.size()
    );

    let result = explorer.explore()?;
    println!(
        "  selected {} ({} cycles, {} slices, balance {:.2}) after {} evaluations",
        result.selected.unroll,
        result.selected.estimate.cycles,
        result.selected.estimate.slices,
        result.selected.estimate.balance,
        result.visited.len()
    );

    // Emit the behavioral VHDL for the selected design — what the
    // paper's SUIF2VHDL handed to Monet.
    let design = explorer.design(&result.selected.unroll)?;
    let vhdl = emit_vhdl(&design);
    let preview: String = vhdl.lines().take(24).collect::<Vec<_>>().join("\n");
    println!("\n--- behavioral VHDL (first 24 lines) ---\n{preview}\n...");
    Ok(())
}
