//! Coarse-grain pipelining across multiple FPGAs: a smooth → edge-detect
//! image pipeline mapped onto one, two, and four FPGAs.
//!
//! ```sh
//! cargo run --example image_pipeline
//! ```

use defacto::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage 1: Jacobi smoothing; stage 2: Sobel edges on the smoothed
    // image. The stages compose through the `Img` array.
    let smooth = parse_kernel(
        "kernel smooth { in A: i16[34][34]; out Img: i16[34][34];
           for i in 1..33 { for j in 1..33 {
             Img[i][j] = (A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]) / 4;
           } } }",
    )?;
    let edges = parse_kernel(
        "kernel edges { in Img: i16[34][34]; out E: i16[34][34];
           var gx: i16; var gy: i16; var mag: i16;
           for i in 1..33 { for j in 1..33 {
             gx = (Img[i - 1][j + 1] + 2 * Img[i][j + 1] + Img[i + 1][j + 1])
                - (Img[i - 1][j - 1] + 2 * Img[i][j - 1] + Img[i + 1][j - 1]);
             gy = (Img[i + 1][j - 1] + 2 * Img[i + 1][j] + Img[i + 1][j + 1])
                - (Img[i - 1][j - 1] + 2 * Img[i - 1][j] + Img[i - 1][j + 1]);
             mag = abs(gx) + abs(gy);
             E[i][j] = mag > 255 ? 255 : mag;
           } } }",
    )?;
    let stages = vec![
        PipelineStage::new("smooth", smooth),
        PipelineStage::new("edges", edges),
    ];

    println!("two-stage image pipeline (34×34 frames), WildStar-class FPGAs:\n");
    for fpgas in [1, 2, 4] {
        let m = map_pipeline(&stages, fpgas, &PipelineOptions::default())?;
        println!("  {fpgas} FPGA(s):");
        for p in &m.placements {
            println!(
                "    {:<7} on FPGA {}: unroll {} -> {} cycles, {} slices",
                p.stage,
                p.fpga,
                p.design.unroll,
                p.design.estimate.cycles,
                p.design.estimate.slices
            );
        }
        println!(
            "    throughput: one frame per {} cycles ({:.0} frames/s at 25 MHz), \
             latency {} cycles, bottleneck: {}",
            m.throughput_cycles,
            m.throughput_per_second(40),
            m.latency_cycles,
            m.bottleneck()
        );
        println!();
    }
    Ok(())
}
