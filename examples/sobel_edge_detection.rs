//! Sobel edge detection, end to end: run the kernel on a synthetic image
//! through the reference interpreter (rendering the detected edges as
//! ASCII art), then explore its hardware design space.
//!
//! ```sh
//! cargo run --example sobel_edge_detection
//! ```

use defacto::prelude::*;
use defacto_ir::run_with_inputs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = defacto_kernels::sobel::kernel();

    // A synthetic 34×34 image: a bright disc on a dark background.
    let n = 34usize;
    let mut image = vec![0i64; n * n];
    let (cy, cx, r) = (17.0, 17.0, 9.0);
    for (idx, px) in image.iter_mut().enumerate() {
        let (i, j) = ((idx / n) as f64, (idx % n) as f64);
        let d = ((i - cy).powi(2) + (j - cx).powi(2)).sqrt();
        *px = if d < r { 220 } else { 30 };
    }

    // Software execution via the reference interpreter.
    let (ws, stats) = run_with_inputs(&kernel, &[("I", image)])?;
    let edges = ws.array("E").expect("output exists");
    println!("detected edges (interpreted in software):");
    for i in (1..n - 1).step_by(2) {
        let row: String = (1..n - 1)
            .step_by(1)
            .map(|j| {
                let v = edges[i * n + j];
                if v > 200 {
                    '#'
                } else if v > 60 {
                    '+'
                } else {
                    '.'
                }
            })
            .collect();
        println!("  {row}");
    }
    println!(
        "software profile: {} loads, {} stores, {} ALU ops\n",
        stats.loads(),
        stats.stores(),
        stats.ops
    );

    // Hardware design space exploration for the same kernel.
    let explorer = Explorer::new(&kernel).memory(MemoryModel::wildstar_pipelined());
    let result = explorer.explore()?;
    let est = &result.selected.estimate;
    println!(
        "hardware: selected unroll {} -> {} cycles ({:.1} µs), {} slices, balance {:.2}",
        result.selected.unroll,
        est.cycles,
        est.exec_time_us(),
        est.slices,
        est.balance
    );
    println!(
        "searched {} of {} candidate designs",
        result.visited.len(),
        result.space_size
    );
    Ok(())
}
