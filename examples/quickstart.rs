//! Quickstart: write a kernel in the DSL, explore its design space, and
//! print what the system selected.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use defacto::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the computation: an affine loop nest over arrays, the
    //    paper's input domain. No pragmas, no hardware annotations.
    let kernel = parse_kernel(
        "kernel fir {
           in    S: i32[96];
           in    C: i32[32];
           inout D: i32[64];
           for j in 0..64 {
             for i in 0..32 {
               D[j] = D[j] + S[i + j] * C[i];
             }
           }
         }",
    )?;

    // 2. Pick the platform: an Annapolis WildStar-class board — a Xilinx
    //    Virtex-1000 with four pipelined external memories at 40 ns.
    let explorer = Explorer::new(&kernel)
        .memory(MemoryModel::wildstar_pipelined())
        .device(FpgaDevice::virtex1000());

    // 3. Explore. The balance-guided search visits a handful of designs
    //    out of the whole unroll-factor space.
    let result = explorer.explore()?;

    println!("kernel:          {}", kernel.name());
    println!("design space:    {} candidate designs", result.space_size);
    println!(
        "search visited:  {} designs ({:.1}% of the space)",
        result.visited.len(),
        100.0 * result.fraction_explored()
    );
    println!("selected unroll: {}", result.selected.unroll);
    let est = &result.selected.estimate;
    println!(
        "estimate:        {} cycles ({:.1} µs at 25 MHz), {} slices, balance {:.2}",
        est.cycles,
        est.exec_time_us(),
        est.slices,
        est.balance
    );

    // 4. Compare against the no-unrolling baseline.
    let base = explorer.evaluate(&UnrollVector::ones(2))?;
    println!(
        "speedup:         {:.2}x over the unroll-free baseline",
        base.estimate.cycles as f64 / est.cycles as f64
    );
    Ok(())
}
