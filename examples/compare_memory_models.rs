//! Pipelined vs non-pipelined memories across the whole suite — the
//! axis the paper's Figures 4–7 contrast.
//!
//! ```sh
//! cargo run --example compare_memory_models
//! ```

use defacto::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<7} {:>16} {:>9} {:>9} {:>8} | {:>16} {:>9} {:>9} {:>8}",
        "kernel",
        "pipe unroll",
        "cycles",
        "balance",
        "speedup",
        "nonp unroll",
        "cycles",
        "balance",
        "speedup"
    );
    for (name, kernel) in defacto_kernels::paper_kernels() {
        let mut cells = Vec::new();
        for mem in [
            MemoryModel::wildstar_pipelined(),
            MemoryModel::wildstar_non_pipelined(),
        ] {
            let ex = Explorer::new(&kernel).memory(mem);
            let r = ex.explore()?;
            let depth = r.selected.unroll.factors().len();
            let base = ex.evaluate(&UnrollVector::ones(depth))?;
            cells.push((
                r.selected.unroll.to_string(),
                r.selected.estimate.cycles,
                r.selected.estimate.balance,
                base.estimate.cycles as f64 / r.selected.estimate.cycles as f64,
            ));
        }
        println!(
            "{:<7} {:>16} {:>9} {:>9.3} {:>7.2}x | {:>16} {:>9} {:>9.3} {:>7.2}x",
            name,
            cells[0].0,
            cells[0].1,
            cells[0].2,
            cells[0].3,
            cells[1].0,
            cells[1].1,
            cells[1].2,
            cells[1].3
        );
    }
    println!(
        "\nWith 1-cycle pipelined accesses the designs lean compute bound and unrolling\n\
         pays off until capacity; with 7/3-cycle non-pipelined accesses memory dominates\n\
         and the search stops at the saturation point — the paper's Figures 4-7 contrast."
    );
    Ok(())
}
