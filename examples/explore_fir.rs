//! Full FIR exploration: sweep the whole design space the way the
//! paper's Figures 4–5 plot it, for both memory models, and show where
//! the search's selection lands.
//!
//! ```sh
//! cargo run --example explore_fir
//! ```

use defacto::exhaustive::best_performance;
use defacto::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = defacto_kernels::fir::kernel();

    for (label, mem) in [
        (
            "pipelined (1-cycle reads/writes)",
            MemoryModel::wildstar_pipelined(),
        ),
        (
            "non-pipelined (7-cycle reads, 3-cycle writes)",
            MemoryModel::wildstar_non_pipelined(),
        ),
    ] {
        let ex = Explorer::new(&kernel).memory(mem);
        let result = ex.explore()?;
        let sweep = ex.sweep()?;

        println!("=== FIR with {label} memories ===");
        println!(
            "{:>10} {:>9} {:>8} {:>7}  note",
            "unroll", "balance", "cycles", "slices"
        );
        for d in &sweep {
            let mut note = String::new();
            if d.unroll == result.selected.unroll {
                note.push_str("<== selected");
            }
            if !d.estimate.fits {
                note.push_str(" (exceeds capacity)");
            }
            println!(
                "{:>10} {:>9.3} {:>8} {:>7}  {}",
                d.unroll.to_string(),
                d.estimate.balance,
                d.estimate.cycles,
                d.estimate.slices,
                note
            );
        }
        let best = best_performance(&sweep).expect("some design fits");
        println!(
            "search visited {} of {} designs; best fitting design {} at {} cycles",
            result.visited.len(),
            sweep.len(),
            best.unroll,
            best.estimate.cycles
        );
        println!();
    }
    Ok(())
}
