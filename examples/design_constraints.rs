//! Designer knobs, end to end: operator bounds (§2.3), register budgets
//! and tiling (§5.4), and bit-width narrowing (§2.4) applied to the same
//! kernel — the area/speed dials a hardware designer turns.
//!
//! ```sh
//! cargo run --example design_constraints
//! ```

use defacto::prelude::*;
use defacto_synth::{HwOp, ResourceConstraints, SynthesisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // FIR with value-range annotations: the data is 10-bit signal and
    // 7-bit coefficients, declared as C ints.
    let kernel = parse_kernel(
        "kernel fir {
           in S: i32[96] range -512..511;
           in C: i32[32] range -64..63;
           inout D: i32[64];
           for j in 0..64 { for i in 0..32 {
             D[j] = D[j] + S[i + j] * C[i];
           } }
         }",
    )?;
    let u = UnrollVector(vec![4, 4]);

    println!("FIR at unroll {u}, one designer knob at a time:\n");
    println!(
        "{:<34} {:>8} {:>8} {:>9} {:>9}",
        "configuration", "cycles", "slices", "balance", "registers"
    );

    let show = |label: &str, ex: &Explorer| -> Result<(), Box<dyn std::error::Error>> {
        let e = ex.evaluate(&u)?.estimate;
        println!(
            "{label:<34} {:>8} {:>8} {:>9.3} {:>9}",
            e.cycles, e.slices, e.balance, e.registers
        );
        Ok(())
    };

    show("default", &Explorer::new(&kernel))?;
    show(
        "2 multipliers (paper §2.3)",
        &Explorer::new(&kernel).synthesis(SynthesisOptions {
            constraints: ResourceConstraints::new().with_limit(HwOp::Mul, 2),
            ..SynthesisOptions::default()
        }),
    )?;
    show(
        "register budget 16 (paper §5.4)",
        &Explorer::new(&kernel).options(TransformOptions {
            register_budget: Some(16),
            ..TransformOptions::default()
        }),
    )?;
    show(
        "bit-width narrowing (paper §2.4)",
        &Explorer::new(&kernel).bitwidth_narrowing(true),
    )?;
    show(
        "narrowing + 2 multipliers",
        &Explorer::new(&kernel)
            .bitwidth_narrowing(true)
            .synthesis(SynthesisOptions {
                constraints: ResourceConstraints::new().with_limit(HwOp::Mul, 2),
                bitwidth_narrowing: true,
                ..SynthesisOptions::default()
            }),
    )?;

    println!(
        "\nEach knob trades along a different axis: operator bounds serialize\n\
         compute (cycles up, slices down); register budgets drop reuse chains\n\
         (memory traffic up, registers down); narrowing shrinks every operator\n\
         the data's true range allows (slices down, semantics unchanged)."
    );
    Ok(())
}
