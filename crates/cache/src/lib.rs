//! Persistent, content-addressed cross-run cache.
//!
//! Every `defacto` invocation before this crate was cold: estimates,
//! selected designs and kernel analyses died with the process. The
//! persistent cache stores them on disk, keyed by **content**, so that
//! re-running an exploration — in the same process, a later process, or
//! a `defacto watch` loop — turns repeated work into lookups:
//!
//! - **estimates** are keyed by `canonical kernel hash × context hash ×
//!   design point` ([`defacto_ir::canon`] supplies the canonical hash,
//!   so alpha-renamed / decl-reordered / bound-shifted copies of a
//!   kernel share entries);
//! - **selected-design records** are keyed by `canonical kernel hash ×
//!   context hash` and seed warm-started searches;
//! - **analysis summaries** (dependence/uniform-set digests derived
//!   from a `PreparedKernel`) are keyed by `canonical kernel hash ×
//!   subtree hash`.
//!
//! # On-disk format
//!
//! One append-friendly JSON-lines file, `cache.jsonl`, under the cache
//! directory. Every line is a self-contained record carrying a version
//! stamp (schema tag + crate version). Readers **never fail**: a torn
//! line (a crash or a concurrent writer mid-append), a corrupt line, or
//! a line stamped by another version is silently skipped and behaves as
//! a miss. Writers only ever append; when the file exceeds the size
//! budget the least-recently-used estimate entries are dropped and the
//! file is compacted via an atomic rename.

use defacto_ir::ContentHash;
use defacto_synth::{Estimate, Provenance};
use serde_json::Value;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Schema tag of the on-disk format. Bump on any layout change.
pub const SCHEMA_TAG: &str = "defacto-cache/v1";

/// Default size budget of the cache file (64 MiB).
pub const DEFAULT_MAX_BYTES: u64 = 64 * 1024 * 1024;

/// The full version stamp every record carries: schema tag + crate
/// version. Entries stamped differently are treated as misses.
pub fn version_stamp() -> String {
    format!("{SCHEMA_TAG}@{}", env!("CARGO_PKG_VERSION"))
}

/// The exploration a cached value belongs to: the canonical kernel and
/// the evaluation context (transform/synthesis options, memory model,
/// device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextKey {
    /// Canonical content hash of the kernel.
    pub kernel: ContentHash,
    /// The explorer's context hash.
    pub context: u64,
}

/// A selected-design record: what a finished search chose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionRecord {
    /// Selected unroll factors.
    pub unroll: Vec<i64>,
    /// Termination label (`Termination` rendered via its trace label).
    pub termination: String,
    /// Number of design points the search visited.
    pub visited: u64,
    /// Design-space size.
    pub space: u64,
}

/// A compact digest of one kernel's `PreparedKernel` analyses, keyed by
/// the canonical subtree hash of the innermost body it was derived
/// from. Used by incremental re-exploration to report (and test) which
/// analyses an edit invalidated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisSummary {
    /// Nest depth.
    pub depth: usize,
    /// Number of array accesses in the innermost body.
    pub accesses: usize,
    /// Uniformly generated read sets.
    pub read_sets: usize,
    /// Uniformly generated write sets.
    pub write_sets: usize,
    /// Scalars carried across body iterations (non-zero pins unrolling
    /// to the innermost loop).
    pub carried: usize,
}

/// Telemetry counters of one [`PersistentCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTelemetry {
    /// Estimate lookups served from the store.
    pub hits: u64,
    /// Estimate lookups that missed.
    pub misses: u64,
    /// Records loaded from disk at open.
    pub loaded: u64,
    /// Lines skipped at open (torn, corrupt, or version-mismatched).
    pub skipped: u64,
    /// Estimate entries evicted by the size bound so far.
    pub evicted: u64,
}

impl CacheTelemetry {
    /// Hit fraction over all estimate lookups (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct EstEntry {
    estimate: Estimate,
    tick: u64,
}

#[derive(Default)]
struct Inner {
    estimates: HashMap<(ContextKey, Vec<i64>), EstEntry>,
    selections: HashMap<ContextKey, SelectionRecord>,
    analyses: HashMap<(ContentHash, ContentHash), AnalysisSummary>,
    /// Rendered lines not yet appended to disk.
    pending: Vec<String>,
    /// Approximate on-disk size (file length after the last flush plus
    /// pending line lengths).
    bytes: u64,
    tick: u64,
    evicted: u64,
}

/// The persistent store. Thread-safe: evaluation workers share one
/// instance behind an `Arc`.
pub struct PersistentCache {
    path: PathBuf,
    max_bytes: u64,
    stamp: String,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    loaded: AtomicU64,
    skipped: AtomicU64,
}

impl std::fmt::Debug for PersistentCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentCache")
            .field("path", &self.path)
            .field("max_bytes", &self.max_bytes)
            .field("telemetry", &self.telemetry())
            .finish()
    }
}

impl PersistentCache {
    /// Open (creating if necessary) the cache under `dir` with the
    /// default size budget.
    ///
    /// # Errors
    ///
    /// Only directory creation can fail; an unreadable or corrupt cache
    /// file merely starts the cache empty.
    pub fn open(dir: &Path) -> std::io::Result<PersistentCache> {
        Self::with_capacity(dir, DEFAULT_MAX_BYTES)
    }

    /// [`PersistentCache::open`] with an explicit size budget in bytes.
    ///
    /// # Errors
    ///
    /// Only directory creation can fail.
    pub fn with_capacity(dir: &Path, max_bytes: u64) -> std::io::Result<PersistentCache> {
        std::fs::create_dir_all(dir)?;
        let cache = PersistentCache {
            path: dir.join("cache.jsonl"),
            max_bytes: max_bytes.max(1),
            stamp: version_stamp(),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            loaded: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
        };
        cache.load();
        Ok(cache)
    }

    /// The cache file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn load(&self) {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(_) => return,
        };
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.bytes = text.len() as u64;
        let mut loaded = 0u64;
        let mut skipped = 0u64;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match self.parse_line(line) {
                Some(record) => {
                    loaded += 1;
                    inner.tick += 1;
                    let tick = inner.tick;
                    match record {
                        Record::Estimate {
                            key,
                            unroll,
                            estimate,
                        } => {
                            inner
                                .estimates
                                .insert((key, unroll), EstEntry { estimate, tick });
                        }
                        Record::Selection { key, record } => {
                            inner.selections.insert(key, record);
                        }
                        Record::Analysis {
                            kernel,
                            subtree,
                            summary,
                        } => {
                            inner.analyses.insert((kernel, subtree), summary);
                        }
                    }
                }
                None => skipped += 1,
            }
        }
        self.loaded.store(loaded, Ordering::Relaxed);
        self.skipped.store(skipped, Ordering::Relaxed);
    }

    /// Look up an estimate. Counts a hit or miss and refreshes the
    /// entry's LRU position.
    pub fn lookup_estimate(&self, key: ContextKey, unroll: &[i64]) -> Option<Estimate> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.estimates.get_mut(&(key, unroll.to_vec())) {
            Some(entry) => {
                entry.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.estimate.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Number of estimates stored for `key` (how warm a re-exploration
    /// will start). Does not count as lookups.
    pub fn estimates_for(&self, key: ContextKey) -> usize {
        let inner = self.inner.lock().expect("cache lock poisoned");
        inner.estimates.keys().filter(|(k, _)| *k == key).count()
    }

    /// Insert an estimate (no-op when an identical entry exists).
    pub fn insert_estimate(&self, key: ContextKey, unroll: &[i64], estimate: &Estimate) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        let map_key = (key, unroll.to_vec());
        if let Some(existing) = inner.estimates.get(&map_key) {
            if existing.estimate == *estimate {
                return;
            }
        }
        let line = estimate_line(&self.stamp, key, unroll, estimate);
        inner.bytes += line.len() as u64 + 1;
        inner.pending.push(line);
        inner.tick += 1;
        let tick = inner.tick;
        inner.estimates.insert(
            map_key,
            EstEntry {
                estimate: estimate.clone(),
                tick,
            },
        );
    }

    /// The selected-design record for `key`, if one was stored.
    pub fn selection(&self, key: ContextKey) -> Option<SelectionRecord> {
        let inner = self.inner.lock().expect("cache lock poisoned");
        inner.selections.get(&key).cloned()
    }

    /// Store the selected design of a finished search.
    pub fn record_selection(&self, key: ContextKey, record: &SelectionRecord) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if inner.selections.get(&key) == Some(record) {
            return;
        }
        let line = selection_line(&self.stamp, key, record);
        inner.bytes += line.len() as u64 + 1;
        inner.pending.push(line);
        inner.selections.insert(key, record.clone());
    }

    /// The analysis summary for `(kernel, subtree)`, if one was stored.
    pub fn analysis(&self, kernel: ContentHash, subtree: ContentHash) -> Option<AnalysisSummary> {
        let inner = self.inner.lock().expect("cache lock poisoned");
        inner.analyses.get(&(kernel, subtree)).cloned()
    }

    /// Store an analysis summary.
    pub fn record_analysis(
        &self,
        kernel: ContentHash,
        subtree: ContentHash,
        summary: &AnalysisSummary,
    ) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if inner.analyses.get(&(kernel, subtree)) == Some(summary) {
            return;
        }
        let line = analysis_line(&self.stamp, kernel, subtree, summary);
        inner.bytes += line.len() as u64 + 1;
        inner.pending.push(line);
        inner.analyses.insert((kernel, subtree), summary.clone());
    }

    /// Append pending records to disk, compacting with LRU eviction
    /// when the file exceeds the size budget.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the in-memory view stays intact, so a
    /// failed flush loses durability, never correctness.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if inner.bytes > self.max_bytes {
            return self.compact(&mut inner);
        }
        if inner.pending.is_empty() {
            return Ok(());
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut buf = String::new();
        for line in &inner.pending {
            buf.push_str(line);
            buf.push('\n');
        }
        file.write_all(buf.as_bytes())?;
        inner.pending.clear();
        if let Ok(meta) = std::fs::metadata(&self.path) {
            inner.bytes = meta.len();
        }
        Ok(())
    }

    /// Rewrite the file from the in-memory maps, dropping the least
    /// recently used estimates until under 3/4 of the budget.
    fn compact(&self, inner: &mut Inner) -> std::io::Result<()> {
        let target = self.max_bytes * 3 / 4;
        // Render non-estimate records first — they are small and always
        // survive compaction.
        let mut fixed = String::new();
        for (key, record) in &inner.selections {
            fixed.push_str(&selection_line(&self.stamp, *key, record));
            fixed.push('\n');
        }
        for ((kernel, subtree), summary) in &inner.analyses {
            fixed.push_str(&analysis_line(&self.stamp, *kernel, *subtree, summary));
            fixed.push('\n');
        }
        let mut entries: Vec<(&(ContextKey, Vec<i64>), &EstEntry)> =
            inner.estimates.iter().collect();
        // Most recently used first.
        entries.sort_by_key(|e| std::cmp::Reverse(e.1.tick));
        let mut body = String::new();
        let mut kept: Vec<(ContextKey, Vec<i64>)> = Vec::new();
        let mut size = fixed.len() as u64;
        for ((key, unroll), entry) in entries {
            let line = estimate_line(&self.stamp, *key, unroll, &entry.estimate);
            let len = line.len() as u64 + 1;
            if size + len > target {
                break;
            }
            size += len;
            body.push_str(&line);
            body.push('\n');
            kept.push((*key, unroll.clone()));
        }
        let dropped = inner.estimates.len() - kept.len();
        inner.evicted += dropped as u64;
        let keep: std::collections::HashSet<_> = kept.into_iter().collect();
        inner.estimates.retain(|k, _| keep.contains(k));

        let tmp = self.path.with_extension("jsonl.tmp");
        std::fs::write(&tmp, format!("{fixed}{body}"))?;
        std::fs::rename(&tmp, &self.path)?;
        inner.pending.clear();
        inner.bytes = size;
        Ok(())
    }

    /// Current telemetry counters.
    pub fn telemetry(&self) -> CacheTelemetry {
        let inner = self.inner.lock().expect("cache lock poisoned");
        CacheTelemetry {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            loaded: self.loaded.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            evicted: inner.evicted,
        }
    }

    fn parse_line(&self, line: &str) -> Option<Record> {
        let v: Value = serde_json::parse(line).ok()?;
        if v.get("v")?.as_str()? != self.stamp {
            return None;
        }
        let key = || -> Option<ContextKey> {
            Some(ContextKey {
                kernel: ContentHash::from_hex(v.get("k")?.as_str()?)?,
                context: u64::from_str_radix(v.get("c")?.as_str()?, 16).ok()?,
            })
        };
        match v.get("t")?.as_str()? {
            "est" => Some(Record::Estimate {
                key: key()?,
                unroll: parse_i64_array(v.get("u")?)?,
                estimate: parse_estimate(&v)?,
            }),
            "sel" => Some(Record::Selection {
                key: key()?,
                record: SelectionRecord {
                    unroll: parse_i64_array(v.get("u")?)?,
                    termination: v.get("term")?.as_str()?.to_string(),
                    visited: v.get("visited")?.as_u64()?,
                    space: v.get("space")?.as_u64()?,
                },
            }),
            "ana" => Some(Record::Analysis {
                kernel: ContentHash::from_hex(v.get("k")?.as_str()?)?,
                subtree: ContentHash::from_hex(v.get("s")?.as_str()?)?,
                summary: AnalysisSummary {
                    depth: v.get("depth")?.as_u64()? as usize,
                    accesses: v.get("acc")?.as_u64()? as usize,
                    read_sets: v.get("rs")?.as_u64()? as usize,
                    write_sets: v.get("ws")?.as_u64()? as usize,
                    carried: v.get("car")?.as_u64()? as usize,
                },
            }),
            _ => None,
        }
    }
}

impl Drop for PersistentCache {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

enum Record {
    Estimate {
        key: ContextKey,
        unroll: Vec<i64>,
        estimate: Estimate,
    },
    Selection {
        key: ContextKey,
        record: SelectionRecord,
    },
    Analysis {
        kernel: ContentHash,
        subtree: ContentHash,
        summary: AnalysisSummary,
    },
}

fn join_i64(xs: &[i64]) -> String {
    xs.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_i64_array(v: &Value) -> Option<Vec<i64>> {
    match v {
        Value::Array(items) => items.iter().map(|x| x.as_i64()).collect(),
        _ => None,
    }
}

/// The estimate's `balance` is an `f64`; it is stored as raw bits so a
/// round trip through the store is bit-identical.
fn estimate_line(stamp: &str, key: ContextKey, unroll: &[i64], e: &Estimate) -> String {
    format!(
        "{{\"v\":\"{stamp}\",\"t\":\"est\",\"k\":\"{}\",\"c\":\"{:016x}\",\"u\":[{}],\
         \"cy\":{},\"sl\":{},\"mb\":{},\"cb\":{},\"bm\":{},\"rg\":{},\"bal\":{},\
         \"ck\":{},\"fit\":{},\"sg\":{},\"con\":{},\"nar\":{},\"pk\":{}}}",
        key.kernel,
        key.context,
        join_i64(unroll),
        e.cycles,
        e.slices,
        e.memory_busy_cycles,
        e.compute_busy_cycles,
        e.bits_from_memory,
        e.registers,
        e.balance.to_bits(),
        e.clock_ns,
        e.fits,
        e.provenance.segments,
        e.provenance.constrained,
        e.provenance.bitwidth_narrowed,
        e.provenance.packed,
    )
}

fn parse_estimate(v: &Value) -> Option<Estimate> {
    Some(Estimate {
        cycles: v.get("cy")?.as_u64()?,
        slices: v.get("sl")?.as_u64()? as u32,
        memory_busy_cycles: v.get("mb")?.as_u64()?,
        compute_busy_cycles: v.get("cb")?.as_u64()?,
        bits_from_memory: v.get("bm")?.as_u64()?,
        registers: v.get("rg")?.as_u64()? as usize,
        balance: f64::from_bits(v.get("bal")?.as_u64()?),
        clock_ns: v.get("ck")?.as_u64()? as u32,
        fits: as_bool(v.get("fit")?)?,
        provenance: Provenance {
            segments: v.get("sg")?.as_u64()? as u32,
            constrained: as_bool(v.get("con")?)?,
            bitwidth_narrowed: as_bool(v.get("nar")?)?,
            packed: as_bool(v.get("pk")?)?,
        },
    })
}

fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn selection_line(stamp: &str, key: ContextKey, r: &SelectionRecord) -> String {
    format!(
        "{{\"v\":\"{stamp}\",\"t\":\"sel\",\"k\":\"{}\",\"c\":\"{:016x}\",\"u\":[{}],\
         \"term\":\"{}\",\"visited\":{},\"space\":{}}}",
        key.kernel,
        key.context,
        join_i64(&r.unroll),
        r.termination,
        r.visited,
        r.space,
    )
}

fn analysis_line(
    stamp: &str,
    kernel: ContentHash,
    subtree: ContentHash,
    s: &AnalysisSummary,
) -> String {
    format!(
        "{{\"v\":\"{stamp}\",\"t\":\"ana\",\"k\":\"{kernel}\",\"s\":\"{subtree}\",\
         \"depth\":{},\"acc\":{},\"rs\":{},\"ws\":{},\"car\":{}}}",
        s.depth, s.accesses, s.read_sets, s.write_sets, s.carried,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("defacto-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_estimate(cycles: u64) -> Estimate {
        Estimate {
            cycles,
            slices: 120,
            memory_busy_cycles: cycles / 2,
            compute_busy_cycles: cycles / 3,
            bits_from_memory: 4096,
            registers: 17,
            balance: 1.25,
            clock_ns: 25,
            fits: true,
            provenance: Provenance {
                segments: 3,
                constrained: false,
                bitwidth_narrowed: true,
                packed: false,
            },
        }
    }

    fn sample_key(n: u128) -> ContextKey {
        ContextKey {
            kernel: ContentHash(n),
            context: 0xDEFAC70,
        }
    }

    #[test]
    fn estimates_round_trip_bit_identically_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let key = sample_key(42);
        let est = Estimate {
            balance: f64::from_bits(0x3ff000000000abcd), // not exactly representable in short decimal
            ..sample_estimate(12345)
        };
        {
            let cache = PersistentCache::open(&dir).unwrap();
            cache.insert_estimate(key, &[2, 4], &est);
            cache.flush().unwrap();
        }
        let cache = PersistentCache::open(&dir).unwrap();
        assert_eq!(cache.telemetry().loaded, 1);
        let back = cache.lookup_estimate(key, &[2, 4]).unwrap();
        assert_eq!(back, est);
        assert_eq!(back.balance.to_bits(), est.balance.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn selections_and_analyses_round_trip() {
        let dir = tmp_dir("records");
        let key = sample_key(7);
        let sel = SelectionRecord {
            unroll: vec![4, 2],
            termination: "balanced".to_string(),
            visited: 9,
            space: 42,
        };
        let summary = AnalysisSummary {
            depth: 2,
            accesses: 5,
            read_sets: 3,
            write_sets: 1,
            carried: 0,
        };
        {
            let cache = PersistentCache::open(&dir).unwrap();
            cache.record_selection(key, &sel);
            cache.record_analysis(key.kernel, ContentHash(99), &summary);
            cache.flush().unwrap();
        }
        let cache = PersistentCache::open(&dir).unwrap();
        assert_eq!(cache.selection(key), Some(sel));
        assert_eq!(cache.analysis(key.kernel, ContentHash(99)), Some(summary));
        assert_eq!(cache.selection(sample_key(8)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_corrupt_and_stale_lines_are_misses_not_errors() {
        let dir = tmp_dir("torn");
        let key = sample_key(1);
        {
            let cache = PersistentCache::open(&dir).unwrap();
            cache.insert_estimate(key, &[1, 1], &sample_estimate(100));
            cache.insert_estimate(key, &[2, 1], &sample_estimate(200));
            cache.flush().unwrap();
        }
        let path = dir.join("cache.jsonl");
        let mut text = std::fs::read_to_string(&path).unwrap();
        // A stale-version line, a corrupt line, and a torn final line.
        text.push_str("{\"v\":\"defacto-cache/v0@0.0.0\",\"t\":\"est\",\"k\":\"00\"}\n");
        text.push_str("not json at all\n");
        text.push_str("{\"v\":\"");
        std::fs::write(&path, text).unwrap();

        let cache = PersistentCache::open(&dir).unwrap();
        let t = cache.telemetry();
        assert_eq!(t.loaded, 2);
        assert_eq!(t.skipped, 3);
        assert!(cache.lookup_estimate(key, &[1, 1]).is_some());
        assert!(cache.lookup_estimate(key, &[2, 1]).is_some());
        assert!(cache.lookup_estimate(key, &[4, 1]).is_none());
        assert_eq!(cache.telemetry().hits, 2);
        assert_eq!(cache.telemetry().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_estimate_value_is_a_miss() {
        let dir = tmp_dir("truncated");
        let key = sample_key(3);
        {
            let cache = PersistentCache::open(&dir).unwrap();
            cache.insert_estimate(key, &[1], &sample_estimate(50));
            cache.flush().unwrap();
        }
        let path = dir.join("cache.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        // Chop the line mid-record: a torn write from a dying process.
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let cache = PersistentCache::open(&dir).unwrap();
        assert_eq!(cache.telemetry().loaded, 0);
        assert!(cache.lookup_estimate(key, &[1]).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let dir = tmp_dir("lru");
        let cache = PersistentCache::with_capacity(&dir, 2048).unwrap();
        let key = sample_key(5);
        for i in 0..64 {
            cache.insert_estimate(key, &[i, 1], &sample_estimate(1000 + i as u64));
        }
        // Touch one early entry so it is the most recently used.
        assert!(cache.lookup_estimate(key, &[0, 1]).is_some());
        cache.flush().unwrap();
        let t = cache.telemetry();
        assert!(t.evicted > 0, "expected evictions, telemetry {t:?}");
        assert!(
            cache.lookup_estimate(key, &[0, 1]).is_some(),
            "recently used entry evicted"
        );
        let size = std::fs::metadata(cache.path()).unwrap().len();
        assert!(size <= 2048, "cache file not bounded: {size}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_stamp_includes_schema_and_crate_version() {
        let stamp = version_stamp();
        assert!(stamp.starts_with(SCHEMA_TAG));
        assert!(stamp.contains('@'));
    }
}
