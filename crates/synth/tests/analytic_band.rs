//! Property test: the tier-0 analytic band brackets the full tier-1
//! estimate for randomly generated kernel/point/option combinations.
//!
//! Kernels are drawn from parameterized variants of the paper suite's
//! shapes (FIR accumulation, stencil windows, matrix product, shifted
//! copies with a conditional clamp), with random sizes, element types,
//! constants, and unroll factors, under random transformation and
//! synthesis options. This is the soundness property the multi-fidelity
//! search's pruning rule depends on (see `defacto-core`).

use defacto_ir::parse_kernel;
use defacto_synth::analytic::AnalyticModel;
use defacto_synth::estimate::{estimate_opts, SynthesisOptions};
use defacto_synth::schedule::ListPriority;
use defacto_synth::{FpgaDevice, MemoryModel};
use defacto_xform::{PreparedKernel, TransformOptions, UnrollVector};
use proptest::prelude::*;
use std::sync::Arc;

/// Divisors of `n`, for legal unroll factors.
fn divisors(n: i64) -> Vec<i64> {
    (1..=n).filter(|d| n % d == 0).collect()
}

fn pick<T: Copy>(options: &[T], idx: usize) -> T {
    options[idx % options.len()]
}

/// Build one of the template kernels. Returns the source and the loop
/// trip counts (outermost first).
fn template_kernel(template: usize, p0: usize, p1: usize, p2: usize) -> (String, Vec<i64>) {
    let ty = pick(&["i8", "i16", "i32", "u8", "u16"], p2);
    match template % 4 {
        // FIR accumulation, optionally with an added constant.
        0 => {
            let n = pick(&[4i64, 8, 12, 16], p0);
            let taps = pick(&[4i64, 6, 8], p1);
            let rhs = match p2 % 3 {
                0 => "S[i + j] * C[i]".to_string(),
                s => format!("S[i + j] * C[i] + {s}"),
            };
            (
                format!(
                    "kernel fir {{ in S: {ty}[{}]; in C: {ty}[{taps}]; inout D: i32[{n}];
                       for j in 0..{n} {{ for i in 0..{taps} {{
                         D[j] = D[j] + {rhs}; }} }} }}",
                    n + taps
                ),
                vec![n, taps],
            )
        }
        // Three-point stencil window with division constants.
        1 => {
            let n = pick(&[8i64, 12, 16, 24], p0);
            let c0 = pick(&[2i64, 3, 4], p1);
            let c1 = pick(&[2i64, 4, 5], p1 / 3);
            (
                format!(
                    "kernel st {{ in A: {ty}[{}]; out B: {ty}[{n}];
                       for i in 0..{n} {{
                         B[i] = A[i] / {c0} + A[i + 1] / {c1} + A[i + 2] / {c0}; }} }}",
                    n + 2
                ),
                vec![n],
            )
        }
        // Matrix product with small random dimensions.
        2 => {
            let n = pick(&[2i64, 4, 6], p0);
            let m = pick(&[2i64, 3, 4], p1);
            let p = pick(&[2i64, 4, 8], p0 / 3 + p1 / 2);
            (
                format!(
                    "kernel mm {{ in A: {ty}[{n}][{p}]; in B: {ty}[{p}][{m}]; inout C: i32[{n}][{m}];
                       for i in 0..{n} {{ for j in 0..{m} {{ for k in 0..{p} {{
                         C[i][j] = C[i][j] + A[i][k] * B[k][j]; }} }} }} }}"
                ),
                vec![n, m, p],
            )
        }
        // Shifted copy with a conditional clamp: exercises `if`
        // predication, comparisons, and scalar merges.
        _ => {
            let n = pick(&[8i64, 12, 16], p0);
            let sh = pick(&[1i64, 2, 3], p1);
            let cap = pick(&[31i64, 63, 100], p1 / 3);
            (
                format!(
                    "kernel cl {{ in A: {ty}[{n}]; out B: i16[{n}];
                       for i in 0..{n} {{
                         B[i] = A[i] << {sh};
                         if (B[i] > {cap}) {{ B[i] = {cap}; }} }} }}"
                ),
                vec![n],
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn analytic_band_brackets_full_estimate(
        template in 0usize..4,
        p0 in 0usize..64,
        p1 in 0usize..64,
        p2 in 0usize..64,
        factor_seed in 0usize..1024,
        opts_bits in 0usize..256,
        budget_sel in 0usize..3,
    ) {
        let bit = |i: usize| opts_bits >> i & 1 == 1;
        let (peel, sr, rwe, layout) = (bit(0), bit(1), bit(2), bit(3));
        let (narrow, pack, pipelined, slack) = (bit(4), bit(5), bit(6), bit(7));
        let (src, trips) = template_kernel(template, p0, p1, p2);
        let factors: Vec<i64> = trips
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let ds = divisors(t);
                pick(&ds, factor_seed >> (3 * i))
            })
            .collect();
        let topts = TransformOptions {
            peel,
            scalar_replacement: sr,
            redundant_write_elim: rwe,
            custom_layout: layout,
            register_budget: [None, Some(4usize), Some(16)][budget_sel],
            ..TransformOptions::default()
        };
        let sopts = SynthesisOptions {
            bitwidth_narrowing: narrow,
            pack_small_types: pack,
            priority: if slack { ListPriority::Slack } else { ListPriority::Asap },
            ..SynthesisOptions::default()
        };
        let mem = if pipelined {
            MemoryModel::wildstar_pipelined()
        } else {
            MemoryModel::wildstar_non_pipelined()
        };
        let dev = FpgaDevice::virtex1000();

        let kernel = parse_kernel(&src).expect("template kernels parse");
        let prepared = Arc::new(PreparedKernel::prepare(&kernel).expect("templates prepare"));
        let model = AnalyticModel::new(
            prepared.clone(),
            mem.clone(),
            dev.clone(),
            topts.clone(),
            sopts.clone(),
        )
        .expect("unconstrained options admit the analytic model");

        let unroll = UnrollVector(factors.clone());
        let band = model.evaluate(&unroll).expect("divisor factors are legal");
        let design = prepared
            .transform(&unroll, &topts)
            .expect("divisor factors are legal");
        let estimate = estimate_opts(&design, &mem, &dev, &sopts);

        prop_assert!(band.cycles_lo <= band.cycles_hi);
        prop_assert!(band.slices_lo <= band.slices_hi);
        prop_assert!(band.mem_busy_lo <= band.mem_busy_hi);
        prop_assert!(band.comp_busy_lo <= band.comp_busy_hi);
        prop_assert!(band.bits_lo <= band.bits_hi);
        prop_assert!(
            band.contains(&estimate),
            "band does not bracket the estimate\nkernel: {}\nfactors: {:?} topts: {:?} sopts: {:?}\nband: {:#?}\nestimate: {:#?}",
            src, factors, topts, sopts, band, estimate,
        );
    }
}
