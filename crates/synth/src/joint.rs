//! Tier-0 analytic bands for *joint* design points.
//!
//! A joint point = (unroll, permutation, tile, narrow, pack). The
//! permutation/tile pair selects a kernel variant; the narrow/pack flags
//! override the synthesis options per point. [`JointAnalyticModel`]
//! therefore keys a family of [`AnalyticModel`]s by
//! `(permutation, tile, narrow, pack)` — each one built over the
//! variant's [`PreparedKernel`](defacto_xform::PreparedKernel) (served
//! by a shared [`VariantCache`]) with the flag-adjusted options — and
//! prices any joint point through the matching member.
//!
//! Soundness is inherited wholesale: each member model's band provably
//! brackets `estimate_opts` of the fully transformed variant design
//! (the [`AnalyticBand`] containment invariant), and evaluating a joint
//! point *is* running the classic unroll pipeline on that variant with
//! those options. This is what makes bound-based pruning of joint
//! subtrees sound — see `defacto-core`'s `BranchAndBound` strategy and
//! DESIGN.md §14.

use crate::analytic::{AnalyticBand, AnalyticModel};
use crate::constraints::ResourceConstraints;
use crate::device::FpgaDevice;
use crate::estimate::SynthesisOptions;
use crate::memory::MemoryModel;
use defacto_xform::{TransformOptions, UnrollVector, VariantCache};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The coordinates selecting one member model: `(permutation, tile,
/// narrow, pack)`.
pub type JointModelKey = (Vec<usize>, Option<(usize, i64)>, bool, bool);

/// A lazily-built family of tier-0 models covering a joint space. Share
/// behind an `Arc`; internally synchronized.
#[derive(Debug)]
pub struct JointAnalyticModel {
    variants: Arc<VariantCache>,
    mem: MemoryModel,
    dev: FpgaDevice,
    topts: TransformOptions,
    sopts: SynthesisOptions,
    /// `None` inside means the member declined (the variant does not
    /// prepare) — such points must take the full tier-1 path.
    models: Mutex<HashMap<JointModelKey, Option<Arc<AnalyticModel>>>>,
}

impl JointAnalyticModel {
    /// Build the family, or `None` when designer operator constraints
    /// are in effect (every member [`AnalyticModel`] would decline — see
    /// [`AnalyticModel::new`]).
    pub fn new(
        variants: Arc<VariantCache>,
        mem: MemoryModel,
        dev: FpgaDevice,
        topts: TransformOptions,
        sopts: SynthesisOptions,
    ) -> Option<Self> {
        if sopts.constraints != ResourceConstraints::default() {
            return None;
        }
        Some(JointAnalyticModel {
            variants,
            mem,
            dev,
            topts,
            sopts,
            models: Mutex::new(HashMap::new()),
        })
    }

    /// The synthesis options a point with these flags is estimated
    /// under: the base options with each flag forced *on* when the point
    /// selects it (never forced off — mirroring the joint evaluator).
    fn flagged_options(&self, narrow: bool, pack: bool) -> SynthesisOptions {
        let mut sopts = self.sopts.clone();
        if narrow {
            sopts.bitwidth_narrowing = true;
        }
        if pack {
            sopts.pack_small_types = true;
        }
        sopts
    }

    /// The member model for one variant/flag combination, built and
    /// cached on first use. `None` when the variant does not prepare.
    fn member(
        &self,
        permutation: &[usize],
        tile: Option<(usize, i64)>,
        narrow: bool,
        pack: bool,
    ) -> Option<Arc<AnalyticModel>> {
        let key: JointModelKey = (permutation.to_vec(), tile, narrow, pack);
        if let Some(m) = self
            .models
            .lock()
            .expect("joint model cache poisoned")
            .get(&key)
        {
            return m.clone();
        }
        let built = self
            .variants
            .get(permutation, tile)
            .ok()
            .and_then(|v| v.prepared.clone())
            .and_then(|prepared| {
                AnalyticModel::new(
                    prepared,
                    self.mem.clone(),
                    self.dev.clone(),
                    self.topts.clone(),
                    self.flagged_options(narrow, pack),
                )
            })
            .map(Arc::new);
        let mut cache = self.models.lock().expect("joint model cache poisoned");
        cache.entry(key).or_insert(built).clone()
    }

    /// Price one joint point: the band of the variant's unroll point
    /// under the flag-adjusted options. `unroll` must already be the
    /// vector the joint evaluator transforms with (all-ones one level
    /// deeper for tiled points). `None` when the member model declined
    /// or the band errored — callers must fall back to tier 1.
    pub fn band(
        &self,
        permutation: &[usize],
        tile: Option<(usize, i64)>,
        narrow: bool,
        pack: bool,
        unroll: &UnrollVector,
    ) -> Option<AnalyticBand> {
        let model = self.member(permutation, tile, narrow, pack)?;
        model.evaluate(unroll).ok()
    }

    /// The member model's synthetic band-midpoint estimate (see
    /// [`AnalyticModel::synthetic_estimate`]).
    pub fn synthetic_estimate(
        &self,
        permutation: &[usize],
        tile: Option<(usize, i64)>,
        narrow: bool,
        pack: bool,
        band: &AnalyticBand,
    ) -> Option<crate::estimate::Estimate> {
        let model = self.member(permutation, tile, narrow, pack)?;
        Some(model.synthetic_estimate(band))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate_opts;
    use crate::oplib::HwOp;
    use defacto_ir::parse_kernel;
    use defacto_xform::transform;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    const PACKABLE: &str = "kernel p { in A: u8[64]; out B: i32[64] range 0..100;
       for i in 0..64 { B[i] = A[i] + 1; } }";

    fn model(src: &str) -> JointAnalyticModel {
        let k = parse_kernel(src).unwrap();
        let variants = Arc::new(VariantCache::new(&k).unwrap());
        JointAnalyticModel::new(
            variants,
            MemoryModel::wildstar_pipelined(),
            FpgaDevice::virtex1000(),
            TransformOptions::default(),
            SynthesisOptions::default(),
        )
        .unwrap()
    }

    /// The containment invariant, joint edition: the band brackets what
    /// the joint evaluator's exact pipeline (variant transform +
    /// flag-adjusted estimate) reports.
    fn check_joint_point(
        m: &JointAnalyticModel,
        src: &str,
        perm: &[usize],
        tile: Option<(usize, i64)>,
        narrow: bool,
        pack: bool,
        unroll: Vec<i64>,
    ) {
        let k = parse_kernel(src).unwrap();
        let mut variant = defacto_xform::normalize_loops(&k).unwrap();
        if perm.iter().enumerate().any(|(i, &l)| i != l) {
            variant = defacto_xform::interchange(&variant, perm).unwrap();
        }
        if let Some((level, t)) = tile {
            variant = defacto_xform::tiling::tile_for_registers(&variant, level, t).unwrap();
        }
        let u = UnrollVector(unroll);
        let band = m.band(perm, tile, narrow, pack, &u).expect("band");
        let design = transform(&variant, &u, &TransformOptions::default()).unwrap();
        let sopts = m.flagged_options(narrow, pack);
        let e = estimate_opts(
            &design,
            &MemoryModel::wildstar_pipelined(),
            &FpgaDevice::virtex1000(),
            &sopts,
        );
        assert!(
            band.contains(&e),
            "joint band does not bracket estimate at perm {perm:?} tile {tile:?} \
             narrow {narrow} pack {pack} unroll {:?}:\nband {band:#?}\nestimate {e:#?}",
            u.factors()
        );
    }

    #[test]
    fn joint_bands_bracket_interchanged_points() {
        let m = model(FIR);
        for perm in [[0usize, 1], [1, 0]] {
            for unroll in [vec![1, 1], vec![4, 2], vec![8, 8]] {
                check_joint_point(&m, FIR, &perm, None, false, false, unroll);
            }
        }
    }

    #[test]
    fn joint_bands_bracket_tiled_points() {
        let m = model(FIR);
        for tile in [(0usize, 8i64), (1, 4)] {
            check_joint_point(&m, FIR, &[0, 1], Some(tile), false, false, vec![1, 1, 1]);
        }
    }

    #[test]
    fn joint_bands_bracket_flagged_points() {
        let m = model(PACKABLE);
        for (narrow, pack) in [(true, false), (false, true), (true, true)] {
            for unroll in [vec![1], vec![4]] {
                check_joint_point(&m, PACKABLE, &[0], None, narrow, pack, unroll);
            }
        }
    }

    #[test]
    fn members_are_cached_per_key() {
        let m = model(FIR);
        let u = UnrollVector(vec![2, 2]);
        assert!(m.band(&[1, 0], None, false, false, &u).is_some());
        assert!(m.band(&[1, 0], None, false, false, &u).is_some());
        assert_eq!(
            m.models.lock().unwrap().len(),
            1,
            "repeat pricing must reuse the member model"
        );
    }

    #[test]
    fn constrained_options_decline_the_family() {
        let k = parse_kernel(FIR).unwrap();
        let variants = Arc::new(VariantCache::new(&k).unwrap());
        let sopts = SynthesisOptions {
            constraints: ResourceConstraints::new().with_limit(HwOp::Mul, 2),
            ..SynthesisOptions::default()
        };
        assert!(JointAnalyticModel::new(
            variants,
            MemoryModel::wildstar_pipelined(),
            FpgaDevice::virtex1000(),
            TransformOptions::default(),
            sopts,
        )
        .is_none());
    }
}
