//! External-memory models.
//!
//! The Annapolis WildStar board connects four external SRAM memories to
//! each FPGA. The paper evaluates two access-cost models:
//!
//! - **pipelined**: one new access can issue per memory per cycle, with a
//!   read and write latency of 1 cycle;
//! - **non-pipelined**: each access occupies its memory for the full
//!   latency — 7 cycles per read, 3 per write (the WildStar's measured
//!   latencies).
//!
//! Real systems fall somewhere in between; the two models bracket the
//! design space, which is exactly how the paper uses them.

use std::fmt;

/// Timing and structure of the board's external memories.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryModel {
    /// Number of independent external memories.
    pub num_memories: usize,
    /// Data width of each memory port in bits.
    pub width_bits: u32,
    /// Cycles from issue to data available, per read.
    pub read_latency: u32,
    /// Cycles to retire a write.
    pub write_latency: u32,
    /// When true a memory accepts a new access every cycle; otherwise an
    /// access occupies its memory for the whole latency.
    pub pipelined: bool,
}

impl MemoryModel {
    /// The paper's pipelined model: 1-cycle reads and writes.
    pub fn pipelined(num_memories: usize) -> Self {
        MemoryModel {
            num_memories,
            width_bits: 32,
            read_latency: 1,
            write_latency: 1,
            pipelined: true,
        }
    }

    /// The paper's non-pipelined model: 7-cycle reads, 3-cycle writes
    /// (Annapolis WildStar latencies).
    pub fn non_pipelined(num_memories: usize) -> Self {
        MemoryModel {
            num_memories,
            width_bits: 32,
            read_latency: 7,
            write_latency: 3,
            pipelined: false,
        }
    }

    /// WildStar default: 4 memories, pipelined.
    pub fn wildstar_pipelined() -> Self {
        Self::pipelined(4)
    }

    /// WildStar default: 4 memories, non-pipelined.
    pub fn wildstar_non_pipelined() -> Self {
        Self::non_pipelined(4)
    }

    /// Cycles a memory port is *occupied* by one read (1 when pipelined).
    pub fn read_occupancy(&self) -> u32 {
        if self.pipelined {
            1
        } else {
            self.read_latency
        }
    }

    /// Cycles a memory port is occupied by one write.
    pub fn write_occupancy(&self) -> u32 {
        if self.pipelined {
            1
        } else {
            self.write_latency
        }
    }

    /// Peak bandwidth in bits per cycle across all memories.
    pub fn peak_bits_per_cycle(&self) -> u64 {
        self.num_memories as u64 * self.width_bits as u64 / self.read_occupancy() as u64
    }
}

impl fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {}-bit {} memories (R{}/W{})",
            self.num_memories,
            self.width_bits,
            if self.pipelined {
                "pipelined"
            } else {
                "non-pipelined"
            },
            self.read_latency,
            self.write_latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latencies() {
        let p = MemoryModel::wildstar_pipelined();
        assert_eq!((p.read_latency, p.write_latency), (1, 1));
        assert_eq!(p.num_memories, 4);
        let n = MemoryModel::wildstar_non_pipelined();
        assert_eq!((n.read_latency, n.write_latency), (7, 3));
    }

    #[test]
    fn occupancy() {
        let p = MemoryModel::pipelined(4);
        assert_eq!(p.read_occupancy(), 1);
        assert_eq!(p.write_occupancy(), 1);
        let n = MemoryModel::non_pipelined(4);
        assert_eq!(n.read_occupancy(), 7);
        assert_eq!(n.write_occupancy(), 3);
    }

    #[test]
    fn peak_bandwidth() {
        assert_eq!(MemoryModel::pipelined(4).peak_bits_per_cycle(), 128);
        assert_eq!(MemoryModel::non_pipelined(4).peak_bits_per_cycle(), 128 / 7);
    }
}
