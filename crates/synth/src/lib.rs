//! Behavioral-synthesis estimation for DEFACTO-style design space
//! exploration.
//!
//! The paper drives its search with space/time *estimates* from the
//! Mentor Graphics Monet behavioral synthesis tool (binding, allocation,
//! ASAP scheduling at a fixed 40 ns clock). This crate is the
//! reproduction's substitute for Monet:
//!
//! - [`device`] — FPGA device models (Xilinx Virtex-1000 class: 12,288
//!   slices);
//! - [`memory`] — external-memory models (Annapolis WildStar class: 4
//!   memories, pipelined 1/1-cycle or non-pipelined 7/3-cycle read/write);
//! - [`oplib`] — the operator library: area (slices) and latency (cycles)
//!   per operation and bit width;
//! - [`dfg`] — datapath dataflow-graph construction from straight-line
//!   segments of the transformed kernel;
//! - [`schedule`] — resource-constrained ASAP list scheduling with
//!   per-memory port contention, reads scheduled before writes (Monet's
//!   documented behaviour), and optional designer operator bounds
//!   ([`constraints`], paper §2.3);
//! - [`mod@estimate`] — the estimator: walks the (possibly imperfect) loop
//!   structure, schedules every segment, allocates shared operators and
//!   produces total cycles, slices, the memory/compute busy times and the
//!   paper's balance metric `B = F/C`;
//! - [`report`] — ASCII Gantt rendering of schedules and steady-body
//!   extraction;
//! - [`vhdl`] — a behavioral-VHDL emitter (the `SUIF2VHDL` analog);
//! - [`par`] — a deterministic logic-synthesis/place-and-route simulator
//!   used to reproduce the paper's §6.4 estimate-accuracy study.

pub mod analytic;
pub mod constraints;
pub mod device;
pub mod dfg;
pub mod estimate;
pub mod joint;
pub mod memory;
pub mod oplib;
pub mod par;
pub mod report;
pub mod schedule;
pub mod vhdl;

pub use analytic::{AnalyticBand, AnalyticModel};
pub use constraints::ResourceConstraints;
pub use device::FpgaDevice;
pub use dfg::{
    build_dfg, build_dfg_opts, build_dfg_ranged, Dfg, DfgOptions, Node, NodeId, NodeKind,
};
pub use estimate::{
    estimate, estimate_constrained, estimate_opts, Estimate, Provenance, SynthesisOptions,
};
pub use joint::{JointAnalyticModel, JointModelKey};
pub use memory::MemoryModel;
pub use oplib::{op_spec, HwOp, OpSpec};
pub use par::{place_and_route, ParResult};
pub use report::{describe_schedule, main_body_schedule};
pub use schedule::{
    schedule_dfg, schedule_dfg_constrained, schedule_dfg_prioritized, ListPriority, Schedule,
};
pub use vhdl::emit_vhdl;
