//! Resource-constrained list scheduling of one DFG.
//!
//! The scheduler models Monet's documented behaviour: operations start as
//! soon as possible (ASAP), memory accesses contend for their memory's
//! single port, and reads are scheduled before writes. By default
//! datapath operators are unconstrained during scheduling; *allocation*
//! then derives the number of operator instances from the maximum
//! concurrency the schedule exhibits — behavioral synthesis shares
//! operators across cycles (and, in the estimator, across code
//! segments). With designer [`ResourceConstraints`] (paper §2.3) the
//! bounded classes serialize onto their units instead.

use crate::constraints::ResourceConstraints;
use crate::dfg::{Dfg, NodeKind};
use crate::memory::MemoryModel;
use crate::oplib::{op_spec, HwOp};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Ready-list ordering policy.
///
/// Monet schedules ASAP (the default and the paper's model). The
/// slack-driven policy is the textbook list-scheduling refinement: under
/// designer operator bounds it starts critical-path operations first,
/// often shortening the constrained schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ListPriority {
    /// First-ready-first (ties by reads-before-writes, then node id) —
    /// Monet's documented behaviour.
    #[default]
    Asap,
    /// Least-slack-first (critical path operations ahead of slack ones).
    Slack,
}

/// Peak/total usage of one operator class at one width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpUsage {
    /// Maximum instances active in any single cycle (the allocation).
    pub max_concurrent: u32,
    /// Total operation instances bound to this class (drives multiplexing
    /// overhead when shared).
    pub total_uses: u32,
}

/// The result of scheduling one segment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schedule {
    /// Cycles until every node has finished.
    pub length: u64,
    /// Start cycle per node (indexed by `NodeId`).
    pub start: Vec<u64>,
    /// Finish cycle per node.
    pub finish: Vec<u64>,
    /// Port-occupancy cycles per memory bank.
    pub mem_busy_per_bank: Vec<u64>,
    /// Memory-limited time: the maximum bank occupancy (`F`'s
    /// denominator).
    pub t_mem: u64,
    /// Compute-limited time: the longest chain of operator latencies
    /// (`C`'s denominator).
    pub t_comp: u64,
    /// Bits moved to/from memory.
    pub bits_transferred: u64,
    /// Number of read accesses.
    pub reads: usize,
    /// Number of write accesses.
    pub writes: usize,
    /// Operator usage per (class, width).
    pub op_usage: HashMap<(HwOp, u32), OpUsage>,
}

/// Schedule `dfg` against `mem` with unbounded datapath operators.
///
/// Deterministic: ties break on node id. Nodes are visited in a
/// topological order prioritized by (ASAP time, reads-before-writes,
/// id).
pub fn schedule_dfg(dfg: &Dfg, mem: &MemoryModel) -> Schedule {
    schedule_dfg_constrained(dfg, mem, &ResourceConstraints::new())
}

/// Schedule `dfg` against `mem` under designer resource constraints
/// (paper §2.3): operator classes with a bound serialize onto that many
/// units, lengthening the schedule but capping the allocation.
pub fn schedule_dfg_constrained(
    dfg: &Dfg,
    mem: &MemoryModel,
    constraints: &ResourceConstraints,
) -> Schedule {
    schedule_dfg_prioritized(dfg, mem, constraints, ListPriority::Asap)
}

/// The most general scheduling entry point: resource constraints plus a
/// ready-list priority policy.
pub fn schedule_dfg_prioritized(
    dfg: &Dfg,
    mem: &MemoryModel,
    constraints: &ResourceConstraints,
    priority: ListPriority,
) -> Schedule {
    let n = dfg.len();
    let mut sched = Schedule {
        start: vec![0; n],
        finish: vec![0; n],
        mem_busy_per_bank: vec![0; mem.num_memories.max(1)],
        ..Schedule::default()
    };
    if n == 0 {
        return sched;
    }

    // Unconstrained ASAP levels for priority.
    let mut asap = vec![0u64; n];
    for node in dfg.nodes() {
        let ready = node
            .preds
            .iter()
            .map(|p| asap[p.0] + latency(&dfg.nodes()[p.0].kind, mem))
            .max()
            .unwrap_or(0);
        asap[node.id.0] = ready;
    }

    // Slack = ALAP − ASAP: the scheduling freedom of each node. The
    // reverse longest path gives ALAP against the unconstrained critical
    // path length.
    let slack: Vec<u64> = match priority {
        ListPriority::Asap => vec![0; n],
        ListPriority::Slack => {
            let total = asap
                .iter()
                .enumerate()
                .map(|(i, &a)| a + latency(&dfg.nodes()[i].kind, mem))
                .max()
                .unwrap_or(0);
            let mut tail = vec![0u64; n]; // longest path from node to a sink
            for node in dfg.nodes().iter().rev() {
                // Successor tails were already computed (reverse order of a
                // topologically ordered node list).
                let lat = latency(&node.kind, mem);
                for p in &node.preds {
                    tail[p.0] = tail[p.0].max(tail[node.id.0] + lat);
                }
            }
            (0..n)
                .map(|i| {
                    let lat = latency(&dfg.nodes()[i].kind, mem);
                    let alap = total.saturating_sub(tail[i] + lat);
                    alap.saturating_sub(asap[i])
                })
                .collect()
        }
    };

    // Kahn's algorithm with a priority heap.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for node in dfg.nodes() {
        indeg[node.id.0] = node.preds.len();
        for p in &node.preds {
            succs[p.0].push(node.id.0);
        }
    }
    // Max-heap: invert ordering (smallest ASAP first, reads before
    // writes, then id).
    #[derive(PartialEq, Eq)]
    struct Prio(u64, u8, usize);
    impl Ord for Prio {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .0
                .cmp(&self.0)
                .then(other.1.cmp(&self.1))
                .then(other.2.cmp(&self.2))
        }
    }
    impl PartialOrd for Prio {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let class = |kind: &NodeKind| -> u8 {
        match kind {
            NodeKind::Load { .. } => 0,
            NodeKind::Store { .. } => 1,
            _ => 0,
        }
    };

    let key = |id: usize, kind: &NodeKind| -> Prio {
        match priority {
            ListPriority::Asap => Prio(asap[id], class(kind), id),
            ListPriority::Slack => Prio(slack[id], class(kind), id),
        }
    };
    let mut heap: BinaryHeap<Prio> = BinaryHeap::new();
    for node in dfg.nodes() {
        if indeg[node.id.0] == 0 {
            heap.push(key(node.id.0, &node.kind));
        }
    }

    let mut bank_free: Vec<u64> = vec![0; mem.num_memories.max(1)];
    // Packed-word fetches already issued: (array, bank, word) → the
    // fetch's start cycle. Follow-up loads of the same word ride along
    // without occupying the port again.
    let mut fetched_words: HashMap<(&str, usize, i64), u64> = HashMap::new();
    // Bounded operator classes: a min-heap of unit-free times per class.
    let mut unit_pools: HashMap<HwOp, BinaryHeap<Reverse<u64>>> = HashMap::new();
    for (op, units) in constraints.iter() {
        let mut pool = BinaryHeap::with_capacity(units as usize);
        for _ in 0..units {
            pool.push(Reverse(0u64));
        }
        unit_pools.insert(op, pool);
    }
    while let Some(Prio(_, _, id)) = heap.pop() {
        let node = &dfg.nodes()[id];
        let data_ready = node
            .preds
            .iter()
            .map(|p| sched.finish[p.0])
            .max()
            .unwrap_or(0);
        let (start, fin) = match &node.kind {
            NodeKind::Load {
                array,
                bank,
                bits,
                word,
            } => {
                let bank = (*bank) % bank_free.len();
                let key = (array.as_str(), bank, *word);
                match fetched_words.get(&key) {
                    // The word is already being fetched: ride along.
                    Some(&fetch_start) => {
                        let start = data_ready.max(fetch_start);
                        (start, fetch_start.max(start) + mem.read_latency as u64)
                    }
                    None => {
                        let start = data_ready.max(bank_free[bank]);
                        bank_free[bank] = start + mem.read_occupancy() as u64;
                        sched.mem_busy_per_bank[bank] += mem.read_occupancy() as u64;
                        sched.bits_transferred += *bits as u64;
                        sched.reads += 1;
                        fetched_words.insert(key, start);
                        (start, start + mem.read_latency as u64)
                    }
                }
            }
            NodeKind::Store { bank, bits, .. } => {
                let bank = (*bank) % bank_free.len();
                let start = data_ready.max(bank_free[bank]);
                bank_free[bank] = start + mem.write_occupancy() as u64;
                sched.mem_busy_per_bank[bank] += mem.write_occupancy() as u64;
                sched.bits_transferred += *bits as u64;
                sched.writes += 1;
                (start, start + mem.write_latency as u64)
            }
            NodeKind::Op { op, bits } => {
                let lat = op_spec(*op, *bits).latency as u64;
                match unit_pools.get_mut(op) {
                    Some(pool) => {
                        let Reverse(unit_free) = pool.pop().expect("pool non-empty");
                        let start = data_ready.max(unit_free);
                        // A unit is occupied for at least one cycle even
                        // for combinational (0-latency) classes.
                        pool.push(Reverse(start + lat.max(1)));
                        (start, start + lat)
                    }
                    None => (data_ready, data_ready + lat),
                }
            }
            NodeKind::Rotate { .. } => (data_ready, data_ready + 1),
            NodeKind::Source => (0, 0),
        };
        sched.start[id] = start;
        sched.finish[id] = fin;
        sched.length = sched.length.max(fin);
        for &s in &succs[id] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                heap.push(key(s, &dfg.nodes()[s].kind));
            }
        }
    }

    sched.t_mem = sched.mem_busy_per_bank.iter().copied().max().unwrap_or(0);
    sched.t_comp = compute_critical_path(dfg);
    sched.op_usage = allocate(dfg, &sched);
    sched
}

/// Longest chain of operator latencies through the graph (memory and
/// rotation nodes contribute zero) — the "computational delay" of the
/// balance metric's consumption rate.
fn compute_critical_path(dfg: &Dfg) -> u64 {
    let mut cpl = vec![0u64; dfg.len()];
    let mut best = 0;
    for node in dfg.nodes() {
        let here = match &node.kind {
            NodeKind::Op { op, bits } => op_spec(*op, *bits).latency as u64,
            _ => 0,
        };
        let pred_max = node.preds.iter().map(|p| cpl[p.0]).max().unwrap_or(0);
        cpl[node.id.0] = pred_max + here;
        best = best.max(cpl[node.id.0]);
    }
    best
}

/// Derive operator allocation from schedule concurrency.
fn allocate(dfg: &Dfg, sched: &Schedule) -> HashMap<(HwOp, u32), OpUsage> {
    // Sweep-line concurrency per (op, width).
    let mut events: HashMap<(HwOp, u32), Vec<(u64, i64)>> = HashMap::new();
    for node in dfg.nodes() {
        if let NodeKind::Op { op, bits } = &node.kind {
            let s = sched.start[node.id.0];
            // Zero-latency units still occupy their wiring for the cycle.
            let f = sched.finish[node.id.0].max(s + 1);
            let ev = events.entry((*op, *bits)).or_default();
            ev.push((s, 1));
            ev.push((f, -1));
        }
    }
    let mut usage = HashMap::new();
    for ((op, bits), mut ev) in events {
        ev.sort();
        let mut cur = 0i64;
        let mut peak = 0i64;
        let mut total = 0u32;
        for (_, d) in ev {
            cur += d;
            peak = peak.max(cur);
            if d > 0 {
                total += 1;
            }
        }
        usage.insert(
            (op, bits),
            OpUsage {
                max_concurrent: peak as u32,
                total_uses: total,
            },
        );
    }
    usage
}

fn latency(kind: &NodeKind, mem: &MemoryModel) -> u64 {
    match kind {
        NodeKind::Load { .. } => mem.read_latency as u64,
        NodeKind::Store { .. } => mem.write_latency as u64,
        NodeKind::Op { op, bits } => op_spec(*op, *bits).latency as u64,
        NodeKind::Rotate { .. } => 1,
        NodeKind::Source => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::build_dfg;
    use defacto_ir::parse_kernel;
    use defacto_xform::assign_memories;

    fn sched_for(src: &str, mem: &MemoryModel, banks: usize) -> Schedule {
        let k = parse_kernel(src).unwrap();
        let binding = assign_memories(&k, banks);
        let nest = k.perfect_nest().unwrap();
        let dfg = build_dfg(nest.innermost_body(), &k, &binding);
        schedule_dfg(&dfg, mem)
    }

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn fir_body_pipelined() {
        let s = sched_for(FIR, &MemoryModel::pipelined(4), 4);
        // Load (1 cycle) → 32-bit mul (2) → add (1) → store (1): length 5
        // when the three loads issue in parallel on distinct banks.
        assert_eq!(s.reads, 3);
        assert_eq!(s.writes, 1);
        assert_eq!(s.length, 5);
        assert_eq!(s.t_comp, 3); // mul(2) + add(1)
        assert!(s.t_mem <= 2); // ≤ 2 accesses per bank
        assert_eq!(s.bits_transferred, 4 * 32);
    }

    #[test]
    fn single_memory_serializes_accesses() {
        let p4 = sched_for(FIR, &MemoryModel::pipelined(4), 4);
        let p1 = sched_for(FIR, &MemoryModel::pipelined(1), 1);
        assert!(p1.t_mem > p4.t_mem);
        assert!(p1.length >= p4.length);
        assert_eq!(p1.t_mem, 4); // 4 accesses × 1 cycle on one port
    }

    #[test]
    fn non_pipelined_occupancy() {
        let s = sched_for(FIR, &MemoryModel::non_pipelined(4), 4);
        // Each read occupies its bank for 7 cycles.
        assert!(s.t_mem >= 7);
        assert!(s.length >= 7);
    }

    #[test]
    fn reads_preferred_over_writes() {
        // Two independent accesses to one bank: the read goes first even
        // though the store's value is ready immediately.
        let s = sched_for(
            "kernel rw { in A: i32[8]; out B: i32[8]; out Cc: i32[8]; var t: i32;
               for i in 0..8 {
                 B[i] = 7;
                 t = A[i] + 1;
                 Cc[i] = t;
               } }",
            &MemoryModel::pipelined(1),
            1,
        );
        let _ = s;
        // All three accesses share bank 0; the read must be scheduled at
        // cycle 0.
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.t_mem, 3);
    }

    #[test]
    fn allocation_counts_concurrency() {
        // Four independent multiplies: with parallel data they all start
        // at the same cycle → allocation of 4 multipliers.
        let s = sched_for(
            "kernel m4 { in A: i32[8]; in B: i32[8]; out C: i32[4];
               for i in 0..1 {
                 C[0] = A[0] * B[0];
                 C[1] = A[1] * B[1];
                 C[2] = A[2] * B[2];
                 C[3] = A[3] * B[3];
               } }",
            &MemoryModel::pipelined(4),
            4,
        );
        let mul = s.op_usage.get(&(HwOp::Mul, 32)).copied().unwrap();
        assert_eq!(mul.total_uses, 4);
        assert!(mul.max_concurrent >= 2);
        assert!(mul.max_concurrent <= 4);
    }

    #[test]
    fn empty_graph() {
        let dfg = Dfg::default();
        let s = schedule_dfg(&dfg, &MemoryModel::pipelined(4));
        assert_eq!(s.length, 0);
        assert_eq!(s.t_mem, 0);
        assert_eq!(s.t_comp, 0);
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = sched_for(FIR, &MemoryModel::pipelined(4), 4);
        let b = sched_for(FIR, &MemoryModel::pipelined(4), 4);
        assert_eq!(a, b);
    }

    const M4: &str = "kernel m4 { in A: i32[8]; in B: i32[8]; out C: i32[4];
       for i in 0..1 {
         C[0] = A[0] * B[0];
         C[1] = A[1] * B[1];
         C[2] = A[2] * B[2];
         C[3] = A[3] * B[3];
       } }";

    fn constrained_sched(src: &str, c: &ResourceConstraints) -> Schedule {
        let k = defacto_ir::parse_kernel(src).unwrap();
        let binding = defacto_xform::assign_memories(&k, 4);
        let nest = k.perfect_nest().unwrap();
        let dfg = crate::dfg::build_dfg(nest.innermost_body(), &k, &binding);
        schedule_dfg_constrained(&dfg, &MemoryModel::pipelined(4), c)
    }

    #[test]
    fn multiplier_limit_serializes_and_caps_allocation() {
        let free = constrained_sched(M4, &ResourceConstraints::new());
        let one = constrained_sched(M4, &ResourceConstraints::new().with_limit(HwOp::Mul, 1));
        let two = constrained_sched(M4, &ResourceConstraints::new().with_limit(HwOp::Mul, 2));
        assert!(one.length > two.length, "{} vs {}", one.length, two.length);
        assert!(two.length >= free.length);
        assert_eq!(one.op_usage[&(HwOp::Mul, 32)].max_concurrent, 1);
        assert!(two.op_usage[&(HwOp::Mul, 32)].max_concurrent <= 2);
        // The four multiplies still all execute.
        assert_eq!(one.op_usage[&(HwOp::Mul, 32)].total_uses, 4);
    }

    #[test]
    fn constraints_never_violate_dependences() {
        let k = defacto_ir::parse_kernel(FIR).unwrap();
        let binding = defacto_xform::assign_memories(&k, 4);
        let nest = k.perfect_nest().unwrap();
        let dfg = crate::dfg::build_dfg(nest.innermost_body(), &k, &binding);
        let c = ResourceConstraints::new()
            .with_limit(HwOp::Mul, 1)
            .with_limit(HwOp::AddSub, 1);
        let s = schedule_dfg_constrained(&dfg, &MemoryModel::pipelined(4), &c);
        for node in dfg.nodes() {
            for p in &node.preds {
                assert!(
                    s.start[node.id.0] >= s.finish[p.0],
                    "node {:?} starts before pred {:?} finishes",
                    node.id,
                    p
                );
            }
        }
    }

    #[test]
    fn slack_priority_beats_asap_under_constraints() {
        // A slack-free critical chain (mult feeding three serial adds)
        // competes with an independent multiply that appears FIRST in
        // program order; both consume the same pre-loaded registers so
        // only the multiplier is contended. With one multiplier, ASAP's
        // id tie-break starts the uncritical multiply first and delays
        // the chain; slack priority starts the critical multiply
        // immediately.
        let k = defacto_ir::parse_kernel(
            "kernel sl { in A: i32[8]; in B: i32[8];
               out C: i32[1]; out D2: i32[1];
               var x: i32; var y: i32;
               for t in 0..1 {
                 x = A[0];
                 y = B[0];
                 D2[0] = x * y;
                 C[0] = x * y + x + x + x;
               } }",
        )
        .unwrap();
        let binding = defacto_xform::assign_memories(&k, 4);
        let nest = k.perfect_nest().unwrap();
        let dfg = crate::dfg::build_dfg(nest.innermost_body(), &k, &binding);
        let mem = MemoryModel::pipelined(4);
        let c = ResourceConstraints::new().with_limit(HwOp::Mul, 1);
        let asap = schedule_dfg_prioritized(&dfg, &mem, &c, ListPriority::Asap);
        let slack = schedule_dfg_prioritized(&dfg, &mem, &c, ListPriority::Slack);
        assert!(
            slack.length < asap.length,
            "slack {} vs asap {}",
            slack.length,
            asap.length
        );
        // Both respect dependences.
        for node in dfg.nodes() {
            for p in &node.preds {
                assert!(slack.start[node.id.0] >= slack.finish[p.0]);
            }
        }
    }

    #[test]
    fn slack_equals_asap_without_contention() {
        let k = defacto_ir::parse_kernel(FIR).unwrap();
        let binding = defacto_xform::assign_memories(&k, 4);
        let nest = k.perfect_nest().unwrap();
        let dfg = crate::dfg::build_dfg(nest.innermost_body(), &k, &binding);
        let mem = MemoryModel::pipelined(4);
        let free = ResourceConstraints::new();
        let a = schedule_dfg_prioritized(&dfg, &mem, &free, ListPriority::Asap);
        let b = schedule_dfg_prioritized(&dfg, &mem, &free, ListPriority::Slack);
        assert_eq!(a.length, b.length);
    }

    #[test]
    fn unconstrained_matches_default_entry_point() {
        let k = defacto_ir::parse_kernel(FIR).unwrap();
        let binding = defacto_xform::assign_memories(&k, 4);
        let nest = k.perfect_nest().unwrap();
        let dfg = crate::dfg::build_dfg(nest.innermost_body(), &k, &binding);
        let mem = MemoryModel::pipelined(4);
        assert_eq!(
            schedule_dfg(&dfg, &mem),
            schedule_dfg_constrained(&dfg, &mem, &ResourceConstraints::new())
        );
    }
}
