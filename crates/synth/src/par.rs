//! Logic-synthesis + place-and-route simulator (paper §6.4 substitute).
//!
//! The paper validates its behavioral-synthesis estimates by running full
//! logic synthesis and place-and-route on selected designs, observing:
//!
//! - the *cycle count never changes* from estimate to implementation;
//! - the achieved clock degrades with routing complexity — under 10% for
//!   most selected designs, ~30% for the large pipelined FIR, and badly
//!   for huge unrollings near device capacity;
//! - area inflates slightly super-linearly with unrolling, more so for
//!   large designs.
//!
//! This module reproduces those observations with a deterministic
//! congestion model: clock degradation and area inflation grow with
//! device utilization, with a small design-dependent jitter derived from
//! a hash of the design (so results are reproducible without real
//! vendor tools).

use crate::device::FpgaDevice;
use crate::estimate::Estimate;

/// Outcome of simulated logic synthesis + place-and-route.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParResult {
    /// Cycle count — identical to the estimate (as the paper observed).
    pub cycles: u64,
    /// Post-P&R area in slices (≥ the estimate).
    pub slices: u32,
    /// Achieved clock period in nanoseconds (≥ the target for congested
    /// designs).
    pub achieved_clock_ns: f64,
    /// Whether the achieved clock meets the device's target.
    pub clock_met: bool,
    /// Whether the inflated area still fits the device.
    pub fits: bool,
}

impl ParResult {
    /// Wall-clock execution time in microseconds at the achieved clock.
    pub fn exec_time_us(&self) -> f64 {
        self.cycles as f64 * self.achieved_clock_ns / 1000.0
    }
}

/// Simulate logic synthesis and place-and-route for an estimated design.
///
/// Deterministic for a given `(estimate, device, seed)`; the seed models
/// the P&R tool's placement randomness and is hashed together with the
/// design's parameters.
pub fn place_and_route(est: &Estimate, dev: &FpgaDevice, seed: u64) -> ParResult {
    let utilization = est.slices as f64 / dev.capacity_slices as f64;

    // Jitter in [-0.03, +0.03], from a SplitMix64 hash of design + seed.
    let h = splitmix(
        seed ^ (est.slices as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(est.cycles),
    );
    let jitter = ((h >> 11) as f64 / (1u64 << 53) as f64) * 0.06 - 0.03;

    // Routing congestion: ~2% when the device is mostly empty, under 10%
    // through ~60% utilization, ~30% when packed to capacity (the paper's
    // pipelined-FIR observation), and severe beyond it.
    let over = (utilization - 0.25).max(0.0);
    let congestion = 0.02 + 0.30 * (over / 0.75).powi(2) + 1.2 * (utilization - 1.0).max(0.0);
    let degradation = (congestion * (1.0 + jitter)).max(0.0);
    let achieved_clock_ns = dev.clock_ns as f64 * (1.0 + degradation);

    // Area inflation: synthesis-estimate optimism grows with utilization.
    let inflation = 1.0 + 0.02 + 0.12 * utilization * utilization + jitter.abs();
    let slices = (est.slices as f64 * inflation).round() as u32;

    ParResult {
        cycles: est.cycles,
        slices,
        achieved_clock_ns,
        // 10% timing slack is customary before a design "misses" timing.
        clock_met: achieved_clock_ns <= dev.clock_ns as f64 * 1.10,
        fits: dev.fits(slices),
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(slices: u32, cycles: u64) -> Estimate {
        Estimate {
            cycles,
            slices,
            memory_busy_cycles: 1,
            compute_busy_cycles: 1,
            bits_from_memory: 0,
            registers: 0,
            balance: 1.0,
            clock_ns: 40,
            fits: true,
            provenance: Default::default(),
        }
    }

    #[test]
    fn cycles_never_change() {
        let dev = FpgaDevice::virtex1000();
        let r = place_and_route(&est(2000, 12345), &dev, 7);
        assert_eq!(r.cycles, 12345);
    }

    #[test]
    fn small_designs_meet_timing() {
        let dev = FpgaDevice::virtex1000();
        let r = place_and_route(&est(1500, 1000), &dev, 7);
        assert!(r.clock_met, "clock {}", r.achieved_clock_ns);
        assert!(r.achieved_clock_ns >= 40.0);
        assert!((r.achieved_clock_ns - 40.0) / 40.0 < 0.10);
    }

    #[test]
    fn large_designs_degrade() {
        let dev = FpgaDevice::virtex1000();
        let small = place_and_route(&est(2000, 1000), &dev, 7);
        let large = place_and_route(&est(11_000, 1000), &dev, 7);
        assert!(large.achieved_clock_ns > small.achieved_clock_ns);
        assert!(
            (large.achieved_clock_ns - 40.0) / 40.0 > 0.15,
            "degradation {}",
            (large.achieved_clock_ns - 40.0) / 40.0
        );
        assert!(!large.clock_met);
    }

    #[test]
    fn area_inflates_more_when_congested() {
        let dev = FpgaDevice::virtex1000();
        let small = place_and_route(&est(2000, 1000), &dev, 7);
        let large = place_and_route(&est(10_000, 1000), &dev, 7);
        let infl_small = small.slices as f64 / 2000.0;
        let infl_large = large.slices as f64 / 10_000.0;
        assert!(infl_small >= 1.0);
        assert!(infl_large > infl_small);
    }

    #[test]
    fn deterministic_per_seed() {
        let dev = FpgaDevice::virtex1000();
        let a = place_and_route(&est(5000, 999), &dev, 42);
        let b = place_and_route(&est(5000, 999), &dev, 42);
        assert_eq!(a, b);
        let c = place_and_route(&est(5000, 999), &dev, 43);
        // Different seed, same design: jitter differs (almost surely).
        assert_ne!(a.achieved_clock_ns, c.achieved_clock_ns);
    }
}
