//! Human-readable schedule reports.
//!
//! Behavioral-synthesis users inspect schedules to understand where the
//! cycles go; [`describe_schedule`] renders one segment's schedule as an
//! ASCII Gantt chart (one row per operation, one column per cycle), and
//! [`main_body_schedule`] extracts and schedules the steady-state
//! innermost body of a transformed design — the body the balance metric
//! is about.

use crate::dfg::{build_dfg, Dfg, NodeKind};
use crate::memory::MemoryModel;
use crate::schedule::{schedule_dfg, Schedule};
use defacto_ir::Stmt;
use defacto_xform::TransformedDesign;
use std::fmt::Write;

/// Render a schedule as an ASCII Gantt chart.
pub fn describe_schedule(dfg: &Dfg, sched: &Schedule) -> String {
    let mut out = String::new();
    let width = sched.length.max(1) as usize;
    let _ = writeln!(
        out,
        "{:<28} {}",
        "operation",
        (0..width.min(80))
            .map(|c| (c % 10).to_string())
            .collect::<String>()
    );
    for node in dfg.nodes() {
        let label = match &node.kind {
            NodeKind::Source => continue,
            NodeKind::Load { array, bank, .. } => format!("load {array} @mem{bank}"),
            NodeKind::Store { array, bank, .. } => format!("store {array} @mem{bank}"),
            NodeKind::Op { op, bits } => format!("{op} ({bits}b)"),
            NodeKind::Rotate { regs, .. } => format!("rotate x{regs}"),
        };
        let start = sched.start[node.id.0] as usize;
        let finish = (sched.finish[node.id.0] as usize).max(start + 1);
        let mut bar = String::new();
        for c in 0..width.min(80) {
            bar.push(if c >= start && c < finish { '#' } else { '.' });
        }
        let _ = writeln!(out, "{label:<28} {bar}");
    }
    let _ = writeln!(
        out,
        "length {} cycles; memory-limited {} cycles; compute path {} cycles",
        sched.length, sched.t_mem, sched.t_comp
    );
    out
}

/// Locate the steady-state innermost body of a transformed design (the
/// innermost body of the *last* loop chain — peeled first-iteration
/// copies come before it) and schedule it.
pub fn main_body_schedule(design: &TransformedDesign, mem: &MemoryModel) -> (Dfg, Schedule) {
    let body = steady_innermost(design.kernel.body());
    let dfg = build_dfg(body, &design.kernel, &design.binding);
    let sched = schedule_dfg(&dfg, mem);
    (dfg, sched)
}

fn steady_innermost(stmts: &[Stmt]) -> &[Stmt] {
    // Follow the last `For` at each level; stop when a level has none.
    let mut cur = stmts;
    loop {
        let last_for = cur.iter().rev().find_map(|s| match s {
            Stmt::For(l) => Some(l),
            _ => None,
        });
        match last_for {
            Some(l) => cur = &l.body,
            None => return cur,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;
    use defacto_xform::{transform, TransformOptions, UnrollVector};

    fn fir_design() -> TransformedDesign {
        let k = parse_kernel(
            "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
               for j in 0..64 { for i in 0..32 {
                 D[j] = D[j] + S[i + j] * C[i]; } } }",
        )
        .unwrap();
        transform(&k, &UnrollVector(vec![2, 2]), &TransformOptions::default()).unwrap()
    }

    #[test]
    fn steady_body_contains_s_loads_but_no_c_loads() {
        let d = fir_design();
        let (dfg, sched) = main_body_schedule(&d, &MemoryModel::wildstar_pipelined());
        let arrays: Vec<&str> = dfg
            .memory_nodes()
            .filter_map(|n| match &n.kind {
                NodeKind::Load { array, .. } => Some(array.as_str()),
                _ => None,
            })
            .collect();
        // Peeling removed the C chain fills from the steady body.
        assert!(arrays.iter().all(|&a| a == "S"), "{arrays:?}");
        assert_eq!(arrays.len(), 3);
        assert!(sched.length > 0);
    }

    #[test]
    fn gantt_renders_all_operations() {
        let d = fir_design();
        let (dfg, sched) = main_body_schedule(&d, &MemoryModel::wildstar_pipelined());
        let text = describe_schedule(&dfg, &sched);
        assert!(text.contains("load S"), "{text}");
        assert!(text.contains("mul"), "{text}");
        assert!(text.contains("rotate"), "{text}");
        assert!(text.contains("length"), "{text}");
        // One bar row per non-source node.
        let bars = text.lines().filter(|l| l.contains('#')).count();
        assert!(bars >= dfg.len() - 1, "{text}");
    }

    #[test]
    fn describe_is_deterministic() {
        let d = fir_design();
        let mem = MemoryModel::wildstar_pipelined();
        let (g1, s1) = main_body_schedule(&d, &mem);
        let (g2, s2) = main_body_schedule(&d, &mem);
        assert_eq!(describe_schedule(&g1, &s1), describe_schedule(&g2, &s2));
    }
}
