//! Tier-0 analytic estimation: a cost *band* for a design point computed
//! from the [`PreparedKernel`] census alone — no body copying, no DFG
//! construction, no scheduling.
//!
//! [`AnalyticModel`] prices the exact structural counts of
//! [`PreparedKernel::census`] into an [`AnalyticBand`] that provably
//! brackets what [`crate::estimate::estimate_opts`] would report for the
//! fully transformed design:
//!
//! - **cycles**: the loop setup/iteration overhead is computed exactly
//!   (peeling-aware); segment schedule lengths are bracketed between the
//!   resource floors (memory-port occupancy over the usable banks, the
//!   serialized accumulator-update chain) and the fully serial sum of
//!   every node's latency and occupancy;
//! - **slices**: bracketed between the irreducible register/interface
//!   floor and a width-monotone upper bound that prices every static
//!   operator instance at the widest bits the DFG width rules can assign;
//! - **memory/compute busy time, bits from memory**: from the census
//!   traffic classes (exact without small-type packing, banded with it);
//! - **registers**: exact (the census mirrors scalar replacement).
//!
//! The band's soundness is what the multi-fidelity search's pruning proof
//! rests on (see `defacto-core`): a point whose `cycles_lo` already
//! exceeds the best certainly-fitting `cycles_hi` can never win the
//! paper's best-performance selection, so it is safe to skip its tier-1
//! evaluation. Property tests in this module and `defacto-core` assert
//! band containment across the paper kernels' design spaces and randomly
//! generated kernel/point pairs.
//!
//! The model declines (`AnalyticModel::new` returns `None`) when designer
//! operator bounds are in effect: constrained schedules serialize in ways
//! the closed form does not bracket, and the paper applies constraints
//! only to individual designs, not to sweeps.

use crate::constraints::ResourceConstraints;
use crate::device::FpgaDevice;
use crate::estimate::{
    Estimate, Provenance, SynthesisOptions, LOOP_CONTROL_SLICES, LOOP_ITER_OVERHEAD,
    LOOP_SETUP_OVERHEAD,
};
use crate::memory::MemoryModel;
use crate::oplib::{
    fsm_state_slices_ceil, op_spec, register_slices, HwOp, FSM_BASE_SLICES, MEMORY_INTERFACE_SLICES,
};
use crate::schedule::ListPriority;
use defacto_ir::stmt::collect_accesses;
use defacto_ir::{ArrayKind, BinOp, Expr, Kernel, LValue, Stmt};
use defacto_xform::{PointCensus, PreparedKernel, TrafficKind, TransformOptions, UnrollVector};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Tier-0 prediction for one design point: every tier-1 quantity as a
/// closed interval, plus the exact quantities the census determines
/// outright.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AnalyticBand {
    /// Execution-cycle band.
    pub cycles_lo: u64,
    /// Execution-cycle band.
    pub cycles_hi: u64,
    /// Area band in slices.
    pub slices_lo: u32,
    /// Area band in slices.
    pub slices_hi: u32,
    /// Memory-busy band.
    pub mem_busy_lo: u64,
    /// Memory-busy band.
    pub mem_busy_hi: u64,
    /// Compute-busy band.
    pub comp_busy_lo: u64,
    /// Compute-busy band.
    pub comp_busy_hi: u64,
    /// External-memory traffic band in bits.
    pub bits_lo: u64,
    /// External-memory traffic band in bits.
    pub bits_hi: u64,
    /// Exact register count (originals + introduced).
    pub registers: usize,
    /// Balance band (`B = F/C`), ±∞ guarded like the estimator's.
    pub balance_lo: f64,
    /// Balance band (`B = F/C`), ±∞ guarded like the estimator's.
    pub balance_hi: f64,
    /// The design *may* fit the device (`slices_lo` fits).
    pub fits_possible: bool,
    /// The design *certainly* fits the device (`slices_hi` fits).
    pub fits_certain: bool,
    /// Clock period of the device model (ns).
    pub clock_ns: u32,
}

impl AnalyticBand {
    /// Does this band bracket a full tier-1 estimate? This is the
    /// soundness invariant of the multi-fidelity search.
    pub fn contains(&self, e: &Estimate) -> bool {
        self.cycles_lo <= e.cycles
            && e.cycles <= self.cycles_hi
            && self.slices_lo <= e.slices
            && e.slices <= self.slices_hi
            && self.mem_busy_lo <= e.memory_busy_cycles
            && e.memory_busy_cycles <= self.mem_busy_hi
            && self.comp_busy_lo <= e.compute_busy_cycles
            && e.compute_busy_cycles <= self.comp_busy_hi
            && self.bits_lo <= e.bits_from_memory
            && e.bits_from_memory <= self.bits_hi
            && e.registers == self.registers
            && self.balance_lo <= e.balance
            && e.balance <= self.balance_hi
            && (!self.fits_certain || e.fits)
            && (self.fits_possible || !e.fits)
            && e.clock_ns == self.clock_ns
    }

    /// Band-midpoint execution time in microseconds (for pure-analytic
    /// ranking).
    pub fn mid_exec_time_us(&self) -> f64 {
        let mid = self.cycles_lo / 2 + self.cycles_hi / 2;
        mid as f64 * self.clock_ns as f64 / 1000.0
    }
}

/// One operator class of the base body: hardware op, the widest bits the
/// DFG can assign its nodes, instances per base-body copy.
#[derive(Debug, Default)]
struct BaseOps {
    /// `(op, width-upper-bound) -> uses per base-body copy`.
    classes: HashMap<(HwOp, u32), u32>,
    /// Σ latency at the width upper bound over one base-body copy.
    lat_sum: u64,
}

impl BaseOps {
    fn push(&mut self, op: HwOp, w: u32) {
        let w = w.max(1);
        *self.classes.entry((op, w)).or_insert(0) += 1;
        self.lat_sum += op_spec(op, w).latency as u64;
    }
}

/// What the lower-bound walk can promise about one base-body value, in
/// every jammed/steady copy of the body the transform can produce.
#[derive(Debug, Clone, Copy)]
enum LoVal {
    /// A literal the constant folder sees, with its exact value.
    Lit(i64),
    /// Possibly a literal in some unrolled copy (anything derived from a
    /// loop-variable read, which full unrolling substitutes away) — no
    /// latency or area credit may rest on it.
    MaybeLit,
    /// Certainly a non-literal value: `(serial latency floor, value-width
    /// floor)`. The width floor bounds the operand width every copy's DFG
    /// node must reach, under the active narrowing mode.
    Val(u64, u32),
}

/// Guaranteed-to-materialize facts about the base body: operator classes
/// that survive constant folding in every steady copy (at width floors)
/// and, per array, the minimum serial latency feeding its body stores.
#[derive(Debug, Default)]
struct BaseLower {
    /// `(op, width-lower-bound) -> uses per base-body copy`.
    classes: HashMap<(HwOp, u32), u32>,
    /// Per array: min over its unconditional stores of the store value's
    /// guaranteed serial op latency.
    store_depth: HashMap<String, u64>,
}

impl BaseLower {
    fn push(&mut self, op: HwOp, w: u32) {
        *self.classes.entry((op, w.max(1))).or_insert(0) += 1;
    }
}

/// Bits of the point interval `[v, v]`, mirroring `Interval::bits`.
fn point_bits(v: i64) -> u32 {
    fn unsigned_bits(v: i64) -> u32 {
        (64 - v.leading_zeros()).max(1)
    }
    if v >= 0 {
        unsigned_bits(v)
    } else {
        let neg = unsigned_bits(v.saturating_add(1).saturating_neg());
        let pos = unsigned_bits(0);
        neg.max(pos) + 1
    }
}

const MAX_IBITS: u32 = 65;

/// The tier-0 analytic estimator for one prepared kernel on one
/// memory/device target. Construction walks the base body once to
/// classify its operators; [`Self::evaluate`] then prices any legal
/// unroll vector in microseconds.
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    prepared: Arc<PreparedKernel>,
    topts: TransformOptions,
    sopts: SynthesisOptions,
    mem: MemoryModel,
    dev: FpgaDevice,
    classes: Vec<(HwOp, u32, u32)>,
    base_lat_sum: u64,
    /// Operator classes certain to survive folding in every steady copy,
    /// at width floors: the slices lower bound's datapath term.
    lower_classes: Vec<(HwOp, u32, u32)>,
    /// Per array: guaranteed serial latency feeding its body stores.
    store_depth_lo: HashMap<String, u64>,
    /// Arrays whose accesses all share one coefficient signature — the
    /// renamability condition `assign_memories` checks, preserved by the
    /// affine transformations (substitutions apply uniformly, scalar
    /// replacement only removes accesses, fills reuse set signatures).
    renamable: HashSet<String>,
    /// Declared widths of the source kernel's scalars.
    original_scalars: Vec<u32>,
    /// Per loop level: non-subscript reads of the level's variable in one
    /// base-body copy. The jam rewrites each such read in an offset copy
    /// to `var + offset` — a real `AddSub` node the base classes never
    /// see, priced separately per point.
    loop_var_reads: Vec<u32>,
}

impl AnalyticModel {
    /// Build the model, or `None` when designer operator constraints are
    /// in effect (the analytic form does not bracket constrained
    /// schedules — such points must take the full tier-1 path).
    pub fn new(
        prepared: Arc<PreparedKernel>,
        mem: MemoryModel,
        dev: FpgaDevice,
        topts: TransformOptions,
        sopts: SynthesisOptions,
    ) -> Option<Self> {
        if sopts.constraints != ResourceConstraints::default() {
            return None;
        }
        let mut base = BaseOps::default();
        walk_stmts(
            prepared.base_body(),
            prepared.normalized(),
            false,
            &mut base,
        );
        let original_scalars = prepared
            .normalized()
            .scalars()
            .iter()
            .map(|s| s.ty.bits())
            .collect();
        let loop_var_reads: Vec<u32> = prepared
            .var_names()
            .iter()
            .map(|v| count_scalar_reads(prepared.base_body(), v))
            .collect();
        let mut classes: Vec<(HwOp, u32, u32)> = base
            .classes
            .iter()
            .map(|(&(op, w), &n)| (op, w, n))
            .collect();
        classes.sort();
        let mut lower = BaseLower::default();
        let mut env = HashMap::new();
        lower_stmts(
            prepared.base_body(),
            prepared.normalized(),
            sopts.bitwidth_narrowing,
            &mut env,
            &mut lower,
            true,
        );
        let mut lower_classes: Vec<(HwOp, u32, u32)> = lower
            .classes
            .iter()
            .map(|(&(op, w), &n)| (op, w, n))
            .collect();
        lower_classes.sort();
        let norm = prepared.normalized();
        let vars = norm.loop_vars();
        let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
        let accesses = collect_accesses(norm.body());
        let mut signatures: HashMap<&str, Vec<Vec<Vec<i64>>>> = HashMap::new();
        for (acc, _) in &accesses {
            let sig = acc.coeff_signature(&var_refs);
            let sigs = signatures.entry(acc.array.as_str()).or_default();
            if !sigs.contains(&sig) {
                sigs.push(sig);
            }
        }
        let renamable: HashSet<String> = norm
            .arrays()
            .iter()
            .filter(|a| signatures.get(a.name.as_str()).map(Vec::len).unwrap_or(0) <= 1)
            .map(|a| a.name.clone())
            .collect();
        Some(AnalyticModel {
            prepared,
            topts,
            sopts,
            mem,
            dev,
            classes,
            base_lat_sum: base.lat_sum,
            lower_classes,
            store_depth_lo: lower.store_depth,
            renamable,
            original_scalars,
            loop_var_reads,
        })
    }

    /// The prepared kernel the model prices.
    pub fn prepared(&self) -> &Arc<PreparedKernel> {
        &self.prepared
    }

    /// Price one design point. Fails with exactly the per-point errors of
    /// [`PreparedKernel::transform`] (illegal factors, broken jam).
    pub fn evaluate(&self, unroll: &UnrollVector) -> defacto_xform::Result<AnalyticBand> {
        let census = self.prepared.census(unroll, &self.topts)?;
        Ok(self.price(&census))
    }

    /// Price an already-computed census.
    pub fn price(&self, c: &PointCensus) -> AnalyticBand {
        let depth = c.trips.len();
        let peel_on = self.topts.peel;
        let bodies = c.bodies.max(0) as u64;
        let product = c.product.max(0) as u64;

        // Loop setup/iteration overhead: exact, peeling-aware. A peeled
        // level keeps a steady loop of `t - 1` iterations (none when
        // `t == 1`); entries equal the enclosing iteration product.
        let mut ovh: u64 = 0;
        let mut loops_lo: u32 = 0;
        let mut ctx: u64 = 1;
        for l in 0..depth {
            let t = c.trips[l].max(0) as u64;
            let steady = t - u64::from(c.peelable[l] && t > 0);
            if steady >= 1 {
                ovh = ovh.saturating_add(
                    ctx.saturating_mul(LOOP_SETUP_OVERHEAD + steady * LOOP_ITER_OVERHEAD),
                );
                loops_lo += 1;
            }
            ctx = ctx.saturating_mul(t);
        }

        // Memory traffic. Upper side: every event at full latency +
        // occupancy. Lower side: only events certain to occupy a port —
        // with packing, loads sharing a word ride one fetch, so body-
        // context loads are pooled per array and deduplicated by word,
        // and packed non-body classes are dropped (maximal riding).
        let rd = (
            self.mem.read_latency as u64,
            self.mem.read_occupancy() as u64,
        );
        let wr = (
            self.mem.write_latency as u64,
            self.mem.write_occupancy() as u64,
        );
        let word_bits = self.mem.width_bits;
        let mut traffic_cyc_hi: u64 = 0;
        let mut mem_hi: u64 = 0;
        let mut bits_hi: u64 = 0;
        let mut occ_lo: u64 = 0;
        let mut bits_lo: u64 = 0;
        let mut fills_per_body: u64 = 0;
        let mut body_pool: HashMap<&str, (u32, Vec<i64>)> = HashMap::new();
        for t in &c.traffic {
            // Without peeling, guarded fills are predicated in the body
            // and issue unconditionally once per body.
            let execs = match (&t.kind, peel_on) {
                (TrafficKind::Guarded(_), false) => c.bodies,
                _ => t.executions(&c.trips),
            }
            .max(0) as u64;
            let n = t.flat_offsets.len() as u64;
            let events = execs.saturating_mul(n);
            let (lat, occ) = if t.is_write { wr } else { rd };
            traffic_cyc_hi = traffic_cyc_hi.saturating_add(events.saturating_mul(lat + occ));
            mem_hi = mem_hi.saturating_add(events.saturating_mul(occ));
            bits_hi = bits_hi.saturating_add(events.saturating_mul(t.elem_bits as u64));
            if !t.is_write {
                if let TrafficKind::Guarded(_) = t.kind {
                    fills_per_body += n;
                }
            }
            let packed = self.sopts.pack_small_types && t.elem_bits < word_bits;
            if t.conditional {
                // Conditional classes execute under a user `if`; peeling's
                // trip-1 substitution plus constant folding may remove the
                // branch (and its accesses) from the materialized design
                // entirely, so the lower bound takes no credit for them.
            } else if t.is_write || !packed {
                occ_lo = occ_lo.saturating_add(events.saturating_mul(occ));
                bits_lo = bits_lo.saturating_add(events.saturating_mul(t.elem_bits as u64));
            } else {
                // Packed loads: pool the classes that certainly execute in
                // the innermost-body segment (one fetch per distinct word
                // per body); headers and peeled fills may ride — drop.
                let body_ctx = matches!(t.kind, TrafficKind::Body)
                    || (!peel_on && matches!(t.kind, TrafficKind::Guarded(_)))
                    || matches!(&t.kind, TrafficKind::AtLevel(l) if *l + 1 == depth);
                if body_ctx {
                    let epw = (word_bits / t.elem_bits.max(1)).max(1) as i64;
                    let entry = body_pool
                        .entry(t.array.as_str())
                        .or_insert_with(|| (t.elem_bits, Vec::new()));
                    entry
                        .1
                        .extend(t.flat_offsets.iter().map(|o| o.div_euclid(epw)));
                }
            }
        }
        for (_, (elem_bits, mut words)) in body_pool {
            words.sort_unstable();
            words.dedup();
            let fetches = bodies.saturating_mul(words.len() as u64);
            occ_lo = occ_lo.saturating_add(fetches.saturating_mul(rd.1));
            bits_lo = bits_lo.saturating_add(fetches.saturating_mul(elem_bits as u64));
        }

        // Usable memory banks: layout spreads arrays over the board's
        // memories, the scheduler folds banks modulo the model's count.
        let m_eff = if self.topts.custom_layout {
            self.topts.num_memories.min(self.mem.num_memories).max(1) as u64
        } else {
            1
        };
        let mem_lo = occ_lo.div_ceil(m_eff);

        // Compute. Upper side: every operator latency fully serialized
        // (plus 1-cycle rotates and, without peeling, the predicated fill
        // guards' comparators). Lower side: the serialized accumulator
        // register-update chain — `max_writes_per_offset` dependent
        // updates per body, each at its op's width-independent minimum
        // latency (zero when a constant operand admits strength reduction
        // or identity folding).
        let guard_lat = if peel_on {
            0
        } else {
            c.guard_eqs_per_body.max(0) as u64
        };
        // Jam-introduced index arithmetic: each non-subscript read of the
        // level-l loop variable becomes `var + offset` in every body copy
        // with a nonzero level-l offset — `product - product/U_l` copies.
        // (Subscript reads fold into the affine constant term instead.)
        let mut jam_adds: u64 = 0;
        for (l, &reads) in self.loop_var_reads.iter().enumerate() {
            let u = c.factors.get(l).copied().unwrap_or(1).max(1) as u64;
            if u > 1 {
                jam_adds =
                    jam_adds.saturating_add((reads as u64).saturating_mul(product - product / u));
            }
        }
        let jam_add_lat = jam_adds.saturating_mul(op_spec(HwOp::AddSub, 33).latency as u64);
        let body_op_lat = product
            .saturating_mul(self.base_lat_sum)
            .saturating_add(guard_lat)
            .saturating_add(jam_add_lat);
        let comp_hi = bodies.saturating_mul(body_op_lat);
        let steady_bodies: u64 = c
            .trips
            .iter()
            .zip(&c.peelable)
            .map(|(&t, &p)| if p { (t - 1).max(0) } else { t.max(0) } as u64)
            .product();
        let mut comp_lo: u64 = 0;
        for a in &c.accumulators {
            if let Some(tops) = &a.serial_ops {
                if let Some(ml) = tops
                    .iter()
                    .map(|&(op, has_const)| min_serial_lat(op, has_const))
                    .min()
                {
                    comp_lo = comp_lo.max(
                        steady_bodies
                            .saturating_mul(a.max_writes_per_offset.max(0) as u64)
                            .saturating_mul(ml),
                    );
                }
            }
        }

        // Store serialization: every store to one array depends on the
        // previous store to that array (the DFG's memory-ordering edge),
        // so a segment with `n` stores of an array runs at least
        // `n × write_latency` cycles — regardless of banking or packing
        // (stores never pool into words). In each steady body the first
        // such store additionally waits for its value's guaranteed serial
        // op chain. Conditional and guarded classes may fold away under
        // peeling, so they earn nothing.
        // Read drain: the list scheduler's ASAP priority pops every
        // dependence-free load (class 0, level 0) before any store, and
        // placement is immediate against the monotone per-bank
        // high-water marks — so a body segment's first store starts no
        // earlier than the least-loaded bank's occupancy from the
        // segment's certain loads. Only unconditional body loads of
        // arrays with no in-segment store qualify (anything else may
        // carry dependence edges or fold away); the bank histogram
        // composes the layout's cyclic distribution (min over the
        // unknown greedy phase) with the scheduler's physical fold, and
        // packed small-typed arrays distribute phaselessly by word.
        let m_bind = if self.topts.custom_layout {
            self.topts.num_memories.max(1)
        } else {
            1
        };
        let m_phys = self.mem.num_memories.max(1);
        let mut drain_lo: u64 = 0;
        if self.sopts.priority == ListPriority::Asap {
            let stored_in_body: HashSet<&str> = c
                .traffic
                .iter()
                .filter(|t| {
                    t.is_write
                        && (t.conditional
                            || matches!(t.kind, TrafficKind::Body | TrafficKind::Guarded(_)))
                })
                .map(|t| t.array.as_str())
                .collect();
            let mut body_loads: HashMap<&str, (u32, Vec<i64>)> = HashMap::new();
            for t in &c.traffic {
                if t.is_write
                    || t.conditional
                    || !matches!(t.kind, TrafficKind::Body)
                    || stored_in_body.contains(t.array.as_str())
                {
                    continue;
                }
                let e = body_loads
                    .entry(t.array.as_str())
                    .or_insert_with(|| (t.elem_bits, Vec::new()));
                e.1.extend_from_slice(&t.flat_offsets);
            }
            for (array, (eb, offsets)) in body_loads {
                let packed = self.sopts.pack_small_types && eb < word_bits;
                let min_bank: u64 = if packed {
                    let epw = (word_bits / eb.max(1)).max(1) as i64;
                    let mut words: Vec<i64> = offsets.iter().map(|o| o.div_euclid(epw)).collect();
                    words.sort_unstable();
                    words.dedup();
                    if m_bind == 1 {
                        words.len() as u64
                    } else {
                        let mut hist = vec![0u64; m_phys];
                        for w in words {
                            hist[(w.rem_euclid(m_bind as i64) as usize) % m_phys] += 1;
                        }
                        hist.into_iter().min().unwrap_or(0)
                    }
                } else if m_bind == 1 {
                    // Everything folds onto one bank — stores included.
                    offsets.len() as u64
                } else if self.renamable.contains(array) {
                    (0..m_bind as i64)
                        .map(|phase| {
                            let mut hist = vec![0u64; m_phys];
                            for &o in &offsets {
                                hist[((o + phase).rem_euclid(m_bind as i64) as usize) % m_phys] +=
                                    1;
                            }
                            hist.into_iter().min().unwrap_or(0)
                        })
                        .min()
                        .unwrap_or(0)
                } else {
                    // Single-bank layout: some physical bank sees none.
                    0
                };
                drain_lo = drain_lo.saturating_add(min_bank.saturating_mul(rd.1));
            }
        }

        let mut store_lo: u64 = 0;
        {
            let mut per_array: HashMap<&str, (u64, bool)> = HashMap::new();
            for t in &c.traffic {
                if !t.is_write || t.conditional || matches!(t.kind, TrafficKind::Guarded(_)) {
                    continue;
                }
                let execs = t.executions(&c.trips).max(0) as u64;
                let events = execs.saturating_mul(t.flat_offsets.len() as u64);
                let e = per_array.entry(t.array.as_str()).or_insert((0, false));
                e.0 = e.0.saturating_add(events);
                e.1 |= matches!(t.kind, TrafficKind::Body) && !t.flat_offsets.is_empty();
            }
            for (array, (events, in_body)) in per_array {
                let mut floor = events.saturating_mul(wr.0);
                if in_body {
                    let depth = self.store_depth_lo.get(array).copied().unwrap_or(0);
                    floor = floor.saturating_add(steady_bodies.saturating_mul(depth.max(drain_lo)));
                }
                store_lo = store_lo.max(floor);
            }
        }

        let cycles_hi = ovh
            .saturating_add(comp_hi)
            .saturating_add(bodies.saturating_mul(c.rotates_per_body.max(0) as u64))
            .saturating_add(traffic_cyc_hi);
        let cycles_lo = ovh.saturating_add(comp_lo.max(mem_lo).max(store_lo));

        // Area. Static instance counts: each peeled level doubles the
        // static copies of everything at or below it.
        let instances: u64 = c.peelable.iter().map(|&p| 1 + u64::from(p)).product();
        let narrow = self.sopts.bitwidth_narrowing;

        let mut slices_hi: u64 = 0;
        for &(op, w, count) in &self.classes {
            let uses = (count as u64)
                .saturating_mul(product)
                .saturating_mul(instances);
            slices_hi = slices_hi.saturating_add(uses.saturating_mul(unit_area_hi(op, w)));
        }
        slices_hi = slices_hi.saturating_add(
            jam_adds
                .saturating_mul(instances)
                .saturating_mul(unit_area_hi(HwOp::AddSub, 33)),
        );
        if !peel_on {
            // Predicated fill guards: comparator + conjunctions + one mux
            // per filled register (the scalar merge of the `if`).
            let eqs = c.guard_eqs_per_body.max(0) as u64;
            let ands = c.guard_ands_per_body.max(0) as u64;
            slices_hi = slices_hi.saturating_add(eqs.saturating_mul(unit_area_hi(HwOp::Cmp, 32)));
            slices_hi = slices_hi.saturating_add(ands.saturating_mul(unit_area_hi(HwOp::Logic, 1)));
            let mux_w = c.registers.iter().map(|r| r.bits).max().unwrap_or(32);
            slices_hi = slices_hi
                .saturating_add(fills_per_body.saturating_mul(unit_area_hi(HwOp::Mux, mux_w)));
        }

        // Registers: counts are exact; widths are declared on the upper
        // side. Load-valued registers price exactly at the declared
        // element width even under narrowing (the fetched range spans the
        // declared type); others can narrow to one slice.
        let mut regs_lo: u64 = 0;
        let mut regs_hi: u64 = 0;
        for rc in &c.registers {
            let hi = register_slices(rc.bits) as u64;
            let lo = if rc.load_valued || !narrow { hi } else { 1 };
            regs_lo += rc.count as u64 * lo;
            regs_hi += rc.count as u64 * hi;
        }
        for &b in &self.original_scalars {
            let hi = register_slices(b) as u64;
            regs_lo += if narrow { 1 } else { hi };
            regs_hi += hi;
        }

        let mut loops_hi: u64 = 0;
        let mut inst_ctx: u64 = 1;
        for l in 0..depth {
            loops_hi += inst_ctx;
            inst_ctx = inst_ctx.saturating_mul(1 + u64::from(c.peelable[l]));
        }

        // FSM states merge statically: bound by the serial length of every
        // static copy of the body and headers.
        let traffic_static: u64 = c
            .traffic
            .iter()
            .map(|t| {
                let (lat, occ) = if t.is_write { wr } else { rd };
                t.flat_offsets.len() as u64 * (lat + occ)
            })
            .sum();
        let fsm_hi = instances.saturating_mul(
            body_op_lat
                .saturating_add(c.rotates_per_body.max(0) as u64)
                .saturating_add(traffic_static),
        );

        // Datapath floor: operators certain to survive folding in every
        // steady copy, priced at the smaller of the operator's area and
        // the estimator's sharing-mux charge, both at the width floor
        // (both are width-monotone). Only the single steady instance
        // earns credit — peeled static copies may fold.
        let mut datapath_lo: u64 = 0;
        for &(op, w, n) in &self.lower_classes {
            let unit = (op_spec(op, w).area_slices as u64).min((w / 4 + 1) as u64);
            datapath_lo =
                datapath_lo.saturating_add((n as u64).saturating_mul(product).saturating_mul(unit));
        }

        let fixed =
            self.mem.num_memories as u64 * MEMORY_INTERFACE_SLICES as u64 + FSM_BASE_SLICES as u64;
        let slices_lo_u64 = (regs_lo + fixed + loops_lo as u64 * LOOP_CONTROL_SLICES as u64)
            .saturating_add(datapath_lo);
        let slices_hi_u64 = slices_hi
            .saturating_add(regs_hi)
            .saturating_add(fixed)
            .saturating_add(loops_hi.saturating_mul(LOOP_CONTROL_SLICES as u64))
            .saturating_add(fsm_state_slices_ceil(fsm_hi));
        let slices_lo = slices_lo_u64.min(u32::MAX as u64) as u32;
        let slices_hi = slices_hi_u64.min(u32::MAX as u64) as u32;

        // Balance band, with the estimator's idle conventions.
        let mut balance_lo = if mem_hi == 0 {
            if comp_lo == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            comp_lo as f64 / mem_hi as f64
        };
        let mut balance_hi = if mem_lo == 0 {
            if comp_hi == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            comp_hi as f64 / mem_lo as f64
        };
        if comp_lo == 0 && mem_lo == 0 {
            balance_lo = balance_lo.min(1.0);
            balance_hi = balance_hi.max(1.0);
        }

        AnalyticBand {
            cycles_lo,
            cycles_hi,
            slices_lo,
            slices_hi,
            mem_busy_lo: mem_lo,
            mem_busy_hi: mem_hi,
            comp_busy_lo: comp_lo,
            comp_busy_hi: comp_hi,
            bits_lo,
            bits_hi,
            registers: self.original_scalars.len() + c.total_registers(),
            balance_lo,
            balance_hi,
            fits_possible: self.dev.fits(slices_lo),
            fits_certain: self.dev.fits(slices_hi),
            clock_ns: self.dev.clock_ns,
        }
    }

    /// A synthetic [`Estimate`] at the band midpoint, for pure-analytic
    /// ranking. `provenance.segments == 0` marks it as tier-0 (no segment
    /// was ever scheduled).
    pub fn synthetic_estimate(&self, band: &AnalyticBand) -> Estimate {
        let mid = |lo: u64, hi: u64| lo / 2 + hi / 2 + (lo & hi & 1);
        let cycles = mid(band.cycles_lo, band.cycles_hi);
        let slices =
            (mid(band.slices_lo as u64, band.slices_hi as u64)).min(u32::MAX as u64) as u32;
        let comp = mid(band.comp_busy_lo, band.comp_busy_hi);
        let memb = mid(band.mem_busy_lo, band.mem_busy_hi);
        let balance = match (comp, memb) {
            (0, 0) => 1.0,
            (_, 0) => f64::INFINITY,
            (c, m) => c as f64 / m as f64,
        };
        Estimate {
            cycles,
            slices,
            memory_busy_cycles: memb,
            compute_busy_cycles: comp,
            bits_from_memory: mid(band.bits_lo, band.bits_hi),
            registers: band.registers,
            balance,
            clock_ns: band.clock_ns,
            fits: self.dev.fits(slices),
            provenance: Provenance {
                segments: 0,
                constrained: false,
                bitwidth_narrowed: self.sopts.bitwidth_narrowing,
                packed: self.sopts.pack_small_types,
            },
        }
    }
}

/// Width-monotone per-use area bound: operator area or the sharing-mux
/// tree, whichever the estimator could charge.
fn unit_area_hi(op: HwOp, w: u32) -> u64 {
    (op_spec(op, w).area_slices as u64).max((w / 4 + 1) as u64)
}

/// Minimum latency the update operator of an accumulator chain can reach
/// at any width, under strength reduction and identity folding of a
/// constant operand.
fn min_serial_lat(op: BinOp, has_const: bool) -> u64 {
    if has_const {
        // `x + 0`, `x * 1`, shifts by constants … may fold away entirely.
        return 0;
    }
    match op {
        BinOp::Add | BinOp::Sub => 1,
        BinOp::Mul => 1,
        BinOp::Div | BinOp::Rem => 2,
        BinOp::Shl | BinOp::Shr => 1,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 1,
        BinOp::And | BinOp::Or | BinOp::Xor => 0,
    }
}

fn scalar_decl_bits(k: &Kernel, name: &str) -> u32 {
    // Loop index variables price as the DFG's 16-bit counters.
    k.scalar(name).map(|d| d.ty.bits()).unwrap_or(16)
}

fn elem_bits(k: &Kernel, array: &str) -> u32 {
    k.array(array).map(|a| a.ty.bits()).unwrap_or(32)
}

/// Non-subscript reads of `name` in one base-body copy. Subscript
/// variables live in `AffineExpr` indices, which an `Expr` walk never
/// reaches — exactly the reads the jam folds away affinely.
fn count_scalar_reads(body: &[Stmt], name: &str) -> u32 {
    fn in_expr(e: &Expr, name: &str) -> u32 {
        match e {
            Expr::Scalar(n) => u32::from(n == name),
            Expr::Int(_) | Expr::Load(_) => 0,
            Expr::Unary(_, a) => in_expr(a, name),
            Expr::Binary(_, a, b) => in_expr(a, name) + in_expr(b, name),
            Expr::Select(c, t, f) => in_expr(c, name) + in_expr(t, name) + in_expr(f, name),
        }
    }
    body.iter()
        .map(|s| match s {
            Stmt::Assign { rhs, .. } => in_expr(rhs, name),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                in_expr(cond, name)
                    + count_scalar_reads(then_body, name)
                    + count_scalar_reads(else_body, name)
            }
            Stmt::For(l) => count_scalar_reads(&l.body, name),
            Stmt::Rotate(_) => 0,
        })
        .sum()
}

/// Walk one expression, recording every operator it will instantiate at
/// an upper-bound width. Returns `(node_width_hi, interval_bits_hi)`:
/// the first bounds the DFG node width under both width rules, the
/// second bounds `Interval::bits` of the value under narrowing (scalar
/// and array reads clamp to declared types; intermediate results can
/// exceed their node width until the next cap).
fn walk_expr(e: &Expr, k: &Kernel, out: &mut BaseOps) -> (u32, u32) {
    match e {
        Expr::Int(v) => {
            let pb = point_bits(*v);
            (pb.max(32), pb)
        }
        Expr::Scalar(n) => {
            if k.scalar(n).is_some() {
                let w = scalar_decl_bits(k, n);
                (w, w)
            } else {
                // Undeclared names are loop variables: the range analysis
                // falls back to a 32-bit interval, and the jam rewrites
                // each non-subscript read to `var + offset`, whose add
                // can grow the interval to 33 bits — bound the operand a
                // copy's parent operator sees, not just the bare counter.
                (32, 33)
            }
        }
        Expr::Load(a) => {
            let w = elem_bits(k, &a.array);
            (w, w)
        }
        Expr::Unary(op, inner) => {
            let (w, ib) = walk_expr(inner, k, out);
            let rib = ib.saturating_add(1).min(MAX_IBITS);
            let node_w = w.max(rib);
            out.push(HwOp::of_unop(*op), node_w);
            (node_w, rib)
        }
        Expr::Binary(op, lhs, rhs) => {
            let (const_side, pow2) = match (&**lhs, &**rhs, op) {
                (_, Expr::Int(v), _) => (true, v.abs().count_ones() == 1),
                (Expr::Int(v), _, BinOp::Mul) => (true, v.abs().count_ones() == 1),
                _ => (false, false),
            };
            let (wa, ia) = walk_expr(lhs, k, out);
            let (wb, ib) = walk_expr(rhs, k, out);
            let w = wa.max(wb).max(1);
            out.push(HwOp::of_binop(*op, const_side, pow2), w);
            let rib = match op {
                BinOp::Add | BinOp::Sub => ia.max(ib) + 1,
                BinOp::Mul => ia + ib,
                BinOp::Div | BinOp::Rem => ia.max(ib) + 1,
                BinOp::Shl => match &**rhs {
                    Expr::Int(c) if (0..32).contains(c) => ia + *c as u32,
                    _ => 32,
                },
                BinOp::Shr => ia.max(ib) + 1,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 1,
                BinOp::And | BinOp::Or | BinOp::Xor => ia.max(ib) + 2,
            }
            .min(MAX_IBITS);
            if op.is_comparison() {
                (1, 1)
            } else {
                (w, rib)
            }
        }
        Expr::Select(c, t, f) => {
            let _ = walk_expr(c, k, out);
            let (wt, it) = walk_expr(t, k, out);
            let (wf, if_) = walk_expr(f, k, out);
            let rib = it.max(if_).saturating_add(1).min(MAX_IBITS);
            let node_w = wt.max(wf).max(rib).max(1);
            out.push(HwOp::Mux, node_w);
            (node_w, rib)
        }
    }
}

fn walk_stmts(body: &[Stmt], k: &Kernel, under_if: bool, out: &mut BaseOps) {
    for s in body {
        match s {
            Stmt::Assign { lhs, rhs } => {
                let (w, _) = walk_expr(rhs, k, out);
                if under_if {
                    // Predicated execution merges the assigned value with
                    // the incoming one through a mux (scalar merges price
                    // at the declared width; counting one per assignment
                    // over-approximates the per-name merge).
                    let wl = match lhs {
                        LValue::Scalar(n) => scalar_decl_bits(k, n),
                        LValue::Array(a) => elem_bits(k, &a.array),
                    };
                    out.push(HwOp::Mux, w.max(wl).max(1));
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let _ = walk_expr(cond, k, out);
                walk_stmts(then_body, k, true, out);
                walk_stmts(else_body, k, true, out);
            }
            Stmt::For(l) => walk_stmts(&l.body, k, under_if, out),
            Stmt::Rotate(_) => {}
        }
    }
}

/// Bits of the inclusive interval `[lo, hi]`, mirroring `Interval::bits`
/// in the range analysis.
fn interval_bits(lo: i64, hi: i64) -> u32 {
    fn unsigned_bits(v: i64) -> u32 {
        (64 - v.leading_zeros()).max(1)
    }
    if lo >= 0 {
        unsigned_bits(hi)
    } else {
        let neg = unsigned_bits(lo.saturating_add(1).saturating_neg());
        let pos = unsigned_bits(hi.max(0));
        neg.max(pos) + 1
    }
}

/// Width floor of a load's value under the active narrowing mode. The
/// range analysis seeds annotated arrays at their annotation (stores only
/// widen it), unannotated `in`/`inout` arrays at the full declared range,
/// and unannotated `out` arrays at `[0, 0]` — only the last gives no
/// floor beyond one bit.
fn load_width_lo(k: &Kernel, array: &str, narrow: bool) -> u32 {
    let Some(decl) = k.array(array) else { return 1 };
    if !narrow {
        return decl.ty.bits();
    }
    match decl.range {
        Some((lo, hi)) => interval_bits(lo, hi).min(decl.ty.bits()),
        None if decl.kind == ArrayKind::Out => 1,
        None => decl.ty.bits(),
    }
}

/// Minimum latency the DFG can assign a node of `op` at any width.
fn lat_lo(op: HwOp) -> u64 {
    op_spec(op, 1).latency as u64
}

/// Walk one base-body expression computing what *must* survive in every
/// steady copy: mirrors `fold_unary`/`fold_binary` exactly (those are the
/// only folds any pass applies), treats loop-variable reads as possible
/// literals (full unrolling substitutes them), and records surviving
/// operator classes at width floors when `count` is set.
fn lower_expr(
    e: &Expr,
    k: &Kernel,
    narrow: bool,
    env: &HashMap<String, (u64, u32)>,
    out: &mut BaseLower,
    count: bool,
) -> LoVal {
    match e {
        Expr::Int(v) => LoVal::Lit(*v),
        Expr::Scalar(n) => {
            if let Some((d, w)) = env.get(n) {
                LoVal::Val(*d, *w)
            } else if k.scalar(n).is_some() {
                // Unassigned declared scalar: a register read (never
                // folded — there is no constant propagation), value 0.
                LoVal::Val(0, if narrow { 1 } else { scalar_decl_bits(k, n) })
            } else {
                // Loop variable: a literal in fully unrolled copies.
                LoVal::MaybeLit
            }
        }
        Expr::Load(a) => LoVal::Val(0, load_width_lo(k, &a.array, narrow)),
        Expr::Unary(op, inner) => match lower_expr(inner, k, narrow, env, out, count) {
            LoVal::Lit(v) => LoVal::Lit(op.apply(v)),
            LoVal::MaybeLit => LoVal::MaybeLit,
            LoVal::Val(d, w) => {
                // Abs/neg can shed one interval bit (`[-256, 0]` →
                // `[0, 256]`); the node prices at the result width.
                let rw = if narrow {
                    w.saturating_sub(1).max(1)
                } else {
                    w
                };
                let hw = HwOp::of_unop(*op);
                if count {
                    out.push(hw, rw);
                }
                LoVal::Val(d + lat_lo(hw), rw)
            }
        },
        Expr::Binary(op, lhs, rhs) => {
            let a = lower_expr(lhs, k, narrow, env, out, count);
            let b = lower_expr(rhs, k, narrow, env, out, count);
            lower_binary(*op, a, b, narrow, out, count)
        }
        Expr::Select(c, t, f) => {
            match lower_expr(c, k, narrow, env, out, count) {
                // The folder resolves constant conditions: mirror it and
                // walk only the surviving arm (expressions have no
                // side effects, so the dropped arm contributes nothing).
                LoVal::Lit(0) => lower_expr(f, k, narrow, env, out, count),
                LoVal::Lit(_) => lower_expr(t, k, narrow, env, out, count),
                cond => {
                    let tv = lower_expr(t, k, narrow, env, out, false);
                    let fv = lower_expr(f, k, narrow, env, out, false);
                    if let LoVal::MaybeLit = cond {
                        // Either arm may be selected by substitution.
                        match (tv, fv) {
                            (LoVal::Val(dt, wt), LoVal::Val(df, wf)) => {
                                LoVal::Val(dt.min(df), wt.min(wf))
                            }
                            _ => LoVal::MaybeLit,
                        }
                    } else {
                        // Non-literal condition: the mux node survives
                        // and needs all inputs; its result interval is a
                        // superset of both arms.
                        let dc = match cond {
                            LoVal::Val(d, _) => d,
                            _ => 0,
                        };
                        let (dt, wt) = match tv {
                            LoVal::Val(d, w) => (d, w),
                            _ => (0, 1),
                        };
                        let (df, wf) = match fv {
                            LoVal::Val(d, w) => (d, w),
                            _ => (0, 1),
                        };
                        let w = wt.max(wf).max(1);
                        if count {
                            out.push(HwOp::Mux, w);
                        }
                        LoVal::Val(dc.max(dt).max(df) + lat_lo(HwOp::Mux), w)
                    }
                }
            }
        }
    }
}

/// Binary case of the lower walk: apply the folder's exact rules, then
/// classify what certainly survives.
fn lower_binary(
    op: BinOp,
    a: LoVal,
    b: LoVal,
    narrow: bool,
    out: &mut BaseLower,
    count: bool,
) -> LoVal {
    use LoVal::{Lit, MaybeLit, Val};
    // Exact mirror of `fold_binary`'s constant and identity rules.
    match (&a, &b) {
        (Lit(x), Lit(y)) => return Lit(op.apply(*x, *y)),
        (Lit(0), _) if op == BinOp::Add => return b,
        (_, Lit(0)) if matches!(op, BinOp::Add | BinOp::Sub) => return a,
        (Lit(1), _) if op == BinOp::Mul => return b,
        (_, Lit(1)) if op == BinOp::Mul => return a,
        (Lit(0), _) | (_, Lit(0)) if op == BinOp::Mul => return Lit(0),
        (Lit(0), _) | (_, Lit(0)) if op == BinOp::And => return Lit(0),
        (Lit(0), _) if op == BinOp::Or => return b,
        (_, Lit(0)) if op == BinOp::Or => return a,
        _ => {}
    }
    let has_identity = matches!(
        op,
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::And | BinOp::Or
    );
    match (a, b) {
        (MaybeLit, MaybeLit) => MaybeLit,
        (Val(d, w), MaybeLit) | (MaybeLit, Val(d, w)) => {
            if matches!(op, BinOp::Mul | BinOp::And) {
                // A substituted literal 0 annihilates the whole node.
                MaybeLit
            } else if has_identity {
                // `x + 0` folds to `x`: the value survives, the node may
                // not.
                Val(d, w)
            } else {
                // No identity rule exists for this operator, so a node
                // survives in every copy — but its class depends on
                // whether the other side became a literal (a shift
                // amount folding to a constant turns `Div`/`Shl` into a
                // zero-latency, zero-area `ConstShift`), so only the
                // class-invariant operators take credit.
                let (cls_both, latf) = match op {
                    BinOp::Xor => (Some(HwOp::Logic), lat_lo(HwOp::Logic)),
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        (Some(HwOp::Cmp), lat_lo(HwOp::Cmp))
                    }
                    _ => (None, 0),
                };
                if let Some(cls) = cls_both {
                    if count {
                        out.push(cls, if op.is_comparison() { w } else { w.max(1) });
                    }
                }
                let rw = if op.is_comparison() {
                    1
                } else if narrow {
                    // Division/shift results can shrink arbitrarily.
                    1
                } else {
                    w
                };
                Val(d + latf, rw)
            }
        }
        (Val(da, wa), Val(db, wb)) => {
            // Both sides certainly non-literal: the node survives with
            // operand width at least `max(wa, wb)` (the DFG clamp keeps
            // a binary node at least as wide as each operand's value).
            let hw = HwOp::of_binop(op, false, false);
            let w = wa.max(wb).max(1);
            if count {
                out.push(hw, w);
            }
            let d = da.max(db) + lat_lo(hw);
            if op.is_comparison() {
                Val(d, 1)
            } else if narrow {
                // Result intervals can shrink below both operands
                // (cancellation, division): no downstream width credit.
                Val(d, 1)
            } else {
                Val(d, w)
            }
        }
        (Val(d, w), Lit(v)) | (Lit(v), Val(d, w)) => {
            // One side a known literal the identity rules above did not
            // fold: the node survives; classify it the way the DFG does
            // (constant on the right, or either side for `Mul`).
            let rhs_const = matches!(b, Lit(_)) || op == BinOp::Mul;
            let pow2 = v.unsigned_abs().count_ones() == 1;
            let hw = HwOp::of_binop(op, rhs_const, pow2);
            if count {
                out.push(hw, w);
            }
            let d = d + lat_lo(hw);
            if op.is_comparison() || narrow {
                Val(d, 1)
            } else {
                Val(d, w)
            }
        }
        (Lit(_), MaybeLit) | (MaybeLit, Lit(_)) => MaybeLit,
        // Handled by the folding mirror above.
        (Lit(x), Lit(y)) => Lit(op.apply(x, y)),
    }
}

/// Names assigned anywhere in a statement list (for invalidating the
/// scalar environment across predicated branches).
fn assigned_scalars(body: &[Stmt], names: &mut Vec<String>) {
    for s in body {
        match s {
            Stmt::Assign {
                lhs: LValue::Scalar(n),
                ..
            } => names.push(n.clone()),
            Stmt::Assign { .. } | Stmt::Rotate(_) => {}
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assigned_scalars(then_body, names);
                assigned_scalars(else_body, names);
            }
            Stmt::For(l) => assigned_scalars(&l.body, names),
        }
    }
}

/// Statement-level lower walk. `top` is true for unconditionally executed
/// statements: only those contribute operator classes and store depths
/// (a branch may fold away in peeled or fully unrolled copies).
fn lower_stmts(
    body: &[Stmt],
    k: &Kernel,
    narrow: bool,
    env: &mut HashMap<String, (u64, u32)>,
    out: &mut BaseLower,
    top: bool,
) {
    for s in body {
        match s {
            Stmt::Assign { lhs, rhs } => {
                let v = lower_expr(rhs, k, narrow, env, out, top);
                match lhs {
                    LValue::Scalar(n) => {
                        let decl = scalar_decl_bits(k, n);
                        let (d, w) = match v {
                            LoVal::Val(d, w) => (d, w.min(decl)),
                            _ => (0, 1),
                        };
                        env.insert(n.clone(), (d, if narrow { w } else { decl }));
                    }
                    LValue::Array(a) => {
                        if top {
                            let d = match v {
                                LoVal::Val(d, _) => d,
                                _ => 0,
                            };
                            out.store_depth
                                .entry(a.array.clone())
                                .and_modify(|e| *e = (*e).min(d))
                                .or_insert(d);
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => match lower_expr(cond, k, narrow, env, out, top) {
                // The folder resolves constant branches — mirror it.
                LoVal::Lit(0) => lower_stmts(else_body, k, narrow, env, out, top),
                LoVal::Lit(_) => lower_stmts(then_body, k, narrow, env, out, top),
                _ => {
                    // Predicated (or substitution-foldable) branch: take
                    // no credit for its contents, but scan it for
                    // environment effects.
                    lower_stmts(then_body, k, narrow, env, out, false);
                    lower_stmts(else_body, k, narrow, env, out, false);
                    let mut names = Vec::new();
                    assigned_scalars(then_body, &mut names);
                    assigned_scalars(else_body, &mut names);
                    for n in names {
                        let w = if narrow { 1 } else { scalar_decl_bits(k, &n) };
                        env.insert(n, (0, w));
                    }
                }
            },
            Stmt::For(l) => {
                // An inner loop's body executes at least once per copy
                // when its trip count is positive (zero-trip loops are
                // dropped by simplification).
                if l.trip_count() > 0 {
                    lower_stmts(&l.body, k, narrow, env, out, top);
                }
            }
            Stmt::Rotate(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate_opts;
    use crate::schedule::ListPriority;
    use defacto_ir::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    const MATMUL: &str = "kernel mm { in A: i32[32][16]; in B: i32[16][4]; inout C: i32[32][4];
       for i in 0..32 { for j in 0..4 { for k in 0..16 {
         C[i][j] = C[i][j] + A[i][k] * B[k][j]; } } } }";

    const STENCIL8: &str = "kernel st { in A: u8[66]; out B: u8[64];
       for i in 0..64 { B[i] = A[i] / 2 + A[i + 1] / 4 + A[i + 2] / 2; } }";

    fn model(
        src: &str,
        topts: TransformOptions,
        sopts: SynthesisOptions,
        mem: MemoryModel,
    ) -> AnalyticModel {
        let k = parse_kernel(src).unwrap();
        let p = Arc::new(PreparedKernel::prepare(&k).unwrap());
        AnalyticModel::new(p, mem, FpgaDevice::virtex1000(), topts, sopts).unwrap()
    }

    fn check_point(m: &AnalyticModel, factors: Vec<i64>) {
        let u = UnrollVector(factors.clone());
        let band = m.evaluate(&u).unwrap();
        let d = m.prepared.transform(&u, &m.topts).unwrap();
        let e = estimate_opts(&d, &m.mem, &m.dev, &m.sopts);
        assert!(
            band.contains(&e),
            "band does not bracket estimate at {factors:?}:\nband {band:#?}\nestimate {e:#?}"
        );
        assert!(band.cycles_lo <= band.cycles_hi);
        assert!(band.slices_lo <= band.slices_hi);
    }

    #[test]
    fn band_brackets_fir_space_default_opts() {
        let m = model(
            FIR,
            TransformOptions::default(),
            SynthesisOptions::default(),
            MemoryModel::wildstar_pipelined(),
        );
        for uj in [1i64, 2, 4, 8, 16, 32, 64] {
            for ui in [1i64, 2, 4, 8, 16, 32] {
                check_point(&m, vec![uj, ui]);
            }
        }
    }

    #[test]
    fn band_brackets_fir_non_pipelined_memory() {
        let m = model(
            FIR,
            TransformOptions::default(),
            SynthesisOptions::default(),
            MemoryModel::wildstar_non_pipelined(),
        );
        for uj in [1i64, 2, 8, 64] {
            for ui in [1i64, 4, 32] {
                check_point(&m, vec![uj, ui]);
            }
        }
    }

    #[test]
    fn band_brackets_matmul_space() {
        let m = model(
            MATMUL,
            TransformOptions::default(),
            SynthesisOptions::default(),
            MemoryModel::wildstar_pipelined(),
        );
        for ui in [1i64, 2, 8, 32] {
            for uj in [1i64, 2, 4] {
                for uk in [1i64, 4, 16] {
                    check_point(&m, vec![ui, uj, uk]);
                }
            }
        }
    }

    #[test]
    fn band_brackets_under_option_toggles() {
        let toggles = [
            TransformOptions {
                peel: false,
                ..TransformOptions::default()
            },
            TransformOptions {
                scalar_replacement: false,
                ..TransformOptions::default()
            },
            TransformOptions {
                redundant_write_elim: false,
                ..TransformOptions::default()
            },
            TransformOptions {
                custom_layout: false,
                ..TransformOptions::default()
            },
            TransformOptions {
                register_budget: Some(8),
                ..TransformOptions::default()
            },
        ];
        for topts in toggles {
            let m = model(
                FIR,
                topts.clone(),
                SynthesisOptions::default(),
                MemoryModel::wildstar_pipelined(),
            );
            for factors in [vec![1, 1], vec![2, 2], vec![8, 4], vec![64, 32]] {
                check_point(&m, factors);
            }
        }
    }

    #[test]
    fn band_brackets_narrowing_and_packing() {
        for (narrow, pack) in [(true, false), (false, true), (true, true)] {
            let sopts = SynthesisOptions {
                bitwidth_narrowing: narrow,
                pack_small_types: pack,
                ..SynthesisOptions::default()
            };
            for src in [FIR, STENCIL8] {
                let m = model(
                    src,
                    TransformOptions::default(),
                    sopts.clone(),
                    MemoryModel::wildstar_pipelined(),
                );
                let depth = m.prepared.loops().len();
                for f in [1i64, 2, 4] {
                    check_point(&m, vec![f; depth]);
                }
            }
        }
    }

    #[test]
    fn band_brackets_loop_var_guard_under_unroll() {
        // Fuzzer reproducer (tests/fuzz_corpus/pass_jam_index_guard):
        // a non-subscript loop-variable read gains a `var + offset` add
        // in every jammed copy — the band's upper side must price it.
        let m = model(
            "kernel g { out B: u8[4]; for k in 0..4 { if (k < 2) { B[k] = 1; } } }",
            TransformOptions::default(),
            SynthesisOptions::default(),
            MemoryModel::wildstar_pipelined(),
        );
        for f in [1i64, 2, 4] {
            check_point(&m, vec![f]);
        }
    }

    #[test]
    fn band_brackets_foldable_conditional_store() {
        // Fuzzer reproducer (tests/fuzz_corpus/pass_folded_else_store):
        // peeling substitutes the trip-1 `j` into the body, the user `if`
        // folds to a constant, and the else-branch store vanishes from
        // the materialized design — the band's lower side must not rely
        // on conditional traffic.
        let m = model(
            "kernel c { inout D: u32[2]; in S: u16[2]; out E: i32[1][1];
               for i in 0..2 { for j in 0..1 {
                 D[i] = S[i + j];
                 if (j < 1) { } else { E[i][j] = 1; } } } }",
            TransformOptions::default(),
            SynthesisOptions::default(),
            MemoryModel::wildstar_pipelined(),
        );
        for factors in [vec![1, 1], vec![2, 1]] {
            check_point(&m, factors);
        }
    }

    #[test]
    fn band_brackets_slack_priority() {
        let m = model(
            FIR,
            TransformOptions::default(),
            SynthesisOptions {
                priority: ListPriority::Slack,
                ..SynthesisOptions::default()
            },
            MemoryModel::wildstar_pipelined(),
        );
        for factors in [vec![1, 1], vec![4, 4], vec![16, 8]] {
            check_point(&m, factors);
        }
    }

    #[test]
    fn constrained_options_decline_the_model() {
        let k = parse_kernel(FIR).unwrap();
        let p = Arc::new(PreparedKernel::prepare(&k).unwrap());
        let sopts = SynthesisOptions {
            constraints: ResourceConstraints::new().with_limit(HwOp::Mul, 2),
            ..SynthesisOptions::default()
        };
        assert!(AnalyticModel::new(
            p,
            MemoryModel::wildstar_pipelined(),
            FpgaDevice::virtex1000(),
            TransformOptions::default(),
            sopts,
        )
        .is_none());
    }

    #[test]
    fn register_floor_prunes_oversized_points() {
        // At extreme unrolls the register floor alone must exceed the
        // device — the lever the tier-0 pruning rule uses.
        let k = parse_kernel(FIR).unwrap();
        let p = Arc::new(PreparedKernel::prepare(&k).unwrap());
        let m = AnalyticModel::new(
            p,
            MemoryModel::wildstar_pipelined(),
            FpgaDevice::virtex300(),
            TransformOptions::default(),
            SynthesisOptions::default(),
        )
        .unwrap();
        let band = m.evaluate(&UnrollVector(vec![64, 32])).unwrap();
        assert!(!band.fits_possible, "slices_lo {}", band.slices_lo);
    }

    #[test]
    fn synthetic_estimate_is_tier0_marked() {
        let m = model(
            FIR,
            TransformOptions::default(),
            SynthesisOptions::default(),
            MemoryModel::wildstar_pipelined(),
        );
        let band = m.evaluate(&UnrollVector(vec![2, 2])).unwrap();
        let e = m.synthetic_estimate(&band);
        assert_eq!(e.provenance.segments, 0);
        assert!(e.cycles >= band.cycles_lo && e.cycles <= band.cycles_hi);
    }

    #[test]
    fn evaluate_rejects_what_transform_rejects() {
        let m = model(
            FIR,
            TransformOptions::default(),
            SynthesisOptions::default(),
            MemoryModel::wildstar_pipelined(),
        );
        assert!(m.evaluate(&UnrollVector(vec![3, 1])).is_err());
        assert!(m.evaluate(&UnrollVector(vec![2])).is_err());
    }
}
