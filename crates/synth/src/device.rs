//! FPGA device models.
//!
//! The paper targets the Annapolis WildStar board's Xilinx Virtex-1000
//! parts and fixes the synthesis clock at 40 ns (25 MHz). Capacity is
//! expressed in *slices* — the Virtex unit of two 4-input LUTs plus two
//! flip-flops — and a design is realizable only if its estimated slice
//! count fits the device.

use std::fmt;

/// A target FPGA device.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FpgaDevice {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of logic slices available.
    pub capacity_slices: u32,
    /// Target clock period in nanoseconds (the paper fixes 40 ns).
    pub clock_ns: u32,
}

impl FpgaDevice {
    /// The Xilinx Virtex-1000 class device of the paper's evaluation:
    /// 12,288 slices, 40 ns clock.
    pub fn virtex1000() -> Self {
        FpgaDevice {
            name: "XCV1000".to_string(),
            capacity_slices: 12_288,
            clock_ns: 40,
        }
    }

    /// A smaller Virtex-300 class device, useful for exercising
    /// capacity-constrained searches.
    pub fn virtex300() -> Self {
        FpgaDevice {
            name: "XCV300".to_string(),
            capacity_slices: 3_072,
            clock_ns: 40,
        }
    }

    /// A larger Virtex-II 6000 class device (33,792 slices), for
    /// exploring how the search scales with capacity.
    pub fn virtex2_6000() -> Self {
        FpgaDevice {
            name: "XC2V6000".to_string(),
            capacity_slices: 33_792,
            clock_ns: 40,
        }
    }

    /// Does a design of `slices` fit on this device?
    pub fn fits(&self, slices: u32) -> bool {
        slices <= self.capacity_slices
    }

    /// Clock frequency in MHz implied by the clock period.
    pub fn clock_mhz(&self) -> f64 {
        1000.0 / self.clock_ns as f64
    }
}

impl Default for FpgaDevice {
    fn default() -> Self {
        FpgaDevice::virtex1000()
    }
}

impl fmt::Display for FpgaDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} slices @ {} ns)",
            self.name, self.capacity_slices, self.clock_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtex1000_matches_paper_parameters() {
        let d = FpgaDevice::virtex1000();
        assert_eq!(d.capacity_slices, 12_288);
        assert_eq!(d.clock_ns, 40);
        assert!((d.clock_mhz() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn fits_is_inclusive() {
        let d = FpgaDevice::virtex300();
        assert!(d.fits(3_072));
        assert!(!d.fits(3_073));
    }

    #[test]
    fn default_is_the_paper_device() {
        assert_eq!(FpgaDevice::default(), FpgaDevice::virtex1000());
    }
}
