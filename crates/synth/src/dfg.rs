//! Datapath dataflow-graph construction.
//!
//! A straight-line segment of the transformed kernel (no loops) lowers to
//! a DFG whose nodes are memory accesses, priced datapath operators,
//! register rotations, and a shared source for live-in values (loop
//! indices, registers carried from earlier segments, constants). Edges
//! are data dependences plus the memory-ordering edges needed for
//! same-array accesses.
//!
//! `if` statements lower to predicated form: both branches evaluate,
//! scalar targets merge through multiplexers, and memory accesses issue
//! unconditionally — the paper's generated code "always performs
//! conditional memory accesses" precisely so scheduling sees a uniform
//! body.

use crate::oplib::HwOp;
use defacto_analysis::{Interval, RangeInfo};
use defacto_ir::{ArrayAccess, BinOp, Expr, Kernel, LValue, Stmt};
use defacto_xform::layout::ArrayLayout;
use defacto_xform::MemoryBinding;
use std::collections::HashMap;

/// Scalar names assigned (or rotated) in `stmts`, in program order with
/// repeats — the rename-invariant iteration order for `if` merges.
fn collect_scalar_defs<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a String>) {
    for s in stmts {
        match s {
            Stmt::Assign {
                lhs: LValue::Scalar(n),
                ..
            } => out.push(n),
            Stmt::Assign { .. } => {}
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_scalar_defs(then_body, out);
                collect_scalar_defs(else_body, out);
            }
            Stmt::Rotate(regs) => out.extend(regs.iter()),
            Stmt::For(l) => collect_scalar_defs(&l.body, out),
        }
    }
}

/// Index of a node in its [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// What a DFG node does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// Values available at cycle 0: constants, loop indices, live-in
    /// registers.
    Source,
    /// A memory read from `bank`.
    Load {
        /// Array being read.
        array: String,
        /// Physical memory bank (from the data layout).
        bank: usize,
        /// Element width.
        bits: u32,
        /// Memory-word class: loads of the same `(array, bank, word)`
        /// fetch the same packed word and share one port slot. Unique per
        /// node when packing is disabled.
        word: i64,
    },
    /// A memory write to `bank`.
    Store {
        /// Array being written.
        array: String,
        /// Physical memory bank.
        bank: usize,
        /// Element width.
        bits: u32,
    },
    /// A datapath operator instance.
    Op {
        /// Operator class.
        op: HwOp,
        /// Operand width.
        bits: u32,
    },
    /// A parallel register rotation (one cycle, no operator area).
    Rotate {
        /// Number of registers in the chain.
        regs: usize,
        /// Register width.
        bits: u32,
    },
}

/// One DFG node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The node's id.
    pub id: NodeId,
    /// What it computes.
    pub kind: NodeKind,
    /// Data/ordering predecessors.
    pub preds: Vec<NodeId>,
}

/// A dataflow graph for one straight-line segment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dfg {
    nodes: Vec<Node>,
}

impl Dfg {
    /// All nodes, in creation (topological) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterator over memory access nodes.
    pub fn memory_nodes(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Load { .. } | NodeKind::Store { .. }))
    }

    fn push(&mut self, kind: NodeKind, preds: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { id, kind, preds });
        id
    }
}

/// Build the DFG of a straight-line statement list.
///
/// `kernel` provides element/scalar types; `binding` provides the memory
/// bank of every access. Nested loops are not allowed here — the
/// estimator walks loop structure itself and hands only straight-line
/// segments to this builder.
///
/// # Panics
///
/// Panics if `stmts` contains a `For` statement.
pub fn build_dfg(stmts: &[Stmt], kernel: &Kernel, binding: &MemoryBinding) -> Dfg {
    build_dfg_opts(stmts, kernel, binding, &DfgOptions::default())
}

/// Construction options for [`build_dfg_opts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DfgOptions<'a> {
    /// Value-range information for bit-width narrowing (paper §2.4).
    pub ranges: Option<&'a RangeInfo>,
    /// Memory word width for small-type packing (paper §4: "packing small
    /// data types"): loads of elements sharing a word share one fetch.
    pub pack_word_bits: Option<u32>,
}

/// Like [`build_dfg`], with optional value-range information: when
/// present, operator widths come from the inferred intervals instead of
/// the declared C types — the bit-width narrowing of paper §2.4.
pub fn build_dfg_ranged(
    stmts: &[Stmt],
    kernel: &Kernel,
    binding: &MemoryBinding,
    ranges: Option<&RangeInfo>,
) -> Dfg {
    build_dfg_opts(
        stmts,
        kernel,
        binding,
        &DfgOptions {
            ranges,
            pack_word_bits: None,
        },
    )
}

/// The most general DFG construction entry point.
pub fn build_dfg_opts(
    stmts: &[Stmt],
    kernel: &Kernel,
    binding: &MemoryBinding,
    opts: &DfgOptions<'_>,
) -> Dfg {
    build_dfg_stmts(stmts, kernel, binding, opts)
}

/// [`build_dfg_opts`] over any iterator of borrowed statements, so
/// callers walking a body can feed straight-line segments without
/// cloning them into a contiguous buffer first.
pub(crate) fn build_dfg_stmts<'s>(
    stmts: impl IntoIterator<Item = &'s Stmt>,
    kernel: &Kernel,
    binding: &MemoryBinding,
    opts: &DfgOptions<'_>,
) -> Dfg {
    let mut b = Builder {
        dfg: Dfg::default(),
        kernel,
        binding,
        ranges: opts.ranges,
        pack_word_bits: opts.pack_word_bits,
        defs: HashMap::new(),
        def_ranges: HashMap::new(),
        source: None,
        last_store: HashMap::new(),
        loads_since_store: HashMap::new(),
    };
    for s in stmts {
        b.stmt(s);
    }
    b.dfg
}

struct Builder<'a> {
    dfg: Dfg,
    kernel: &'a Kernel,
    binding: &'a MemoryBinding,
    /// Value-range information for bit-width narrowing, when enabled.
    ranges: Option<&'a RangeInfo>,
    /// Memory word width for small-type packing, when enabled.
    pack_word_bits: Option<u32>,
    /// Current producer of each scalar.
    defs: HashMap<String, NodeId>,
    /// Value interval of each scalar's current definition (narrowing).
    def_ranges: HashMap<String, Interval>,
    /// Lazily created shared source node.
    source: Option<NodeId>,
    /// Last store per array (for load→store ordering).
    last_store: HashMap<String, NodeId>,
    /// Loads since the last store, per array (for store→load ordering).
    loads_since_store: HashMap<String, Vec<NodeId>>,
}

impl Builder<'_> {
    fn source(&mut self) -> NodeId {
        match self.source {
            Some(s) => s,
            None => {
                let s = self.dfg.push(NodeKind::Source, vec![]);
                self.source = Some(s);
                s
            }
        }
    }

    fn scalar_bits(&self, name: &str) -> u32 {
        let declared = self
            .kernel
            .scalar(name)
            .map(|d| d.ty.bits())
            // Loop index variables: 16-bit counters.
            .unwrap_or(16);
        match self.ranges {
            Some(info) => info.var(name).bits().min(declared),
            None => declared,
        }
    }

    /// Value interval of a scalar read under narrowing.
    fn scalar_interval(&self, name: &str) -> Option<Interval> {
        let info = self.ranges?;
        Some(
            self.def_ranges
                .get(name)
                .copied()
                .unwrap_or_else(|| info.var(name)),
        )
    }

    fn array_bits(&self, array: &str) -> u32 {
        self.kernel.array(array).map(|a| a.ty.bits()).unwrap_or(32)
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { lhs, rhs } => {
                let (v, _, iv) = self.expr(rhs);
                match lhs {
                    LValue::Scalar(n) => {
                        self.defs.insert(n.clone(), v);
                        if let (Some(info), Some(iv)) = (self.ranges, iv) {
                            // Values wrap at the declared register width.
                            let ty = self
                                .kernel
                                .scalar(n)
                                .map(|d| d.ty)
                                .unwrap_or(defacto_ir::ScalarType::I32);
                            let _ = info;
                            self.def_ranges.insert(n.clone(), iv.clamp_to(ty));
                        }
                    }
                    LValue::Array(a) => {
                        self.store(a, v);
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let (c, _, _) = self.expr(cond);
                // Predicated execution: evaluate both branches, mux scalar
                // defs, issue memory accesses unconditionally. Two clones
                // of the def map (pre-branch state for each branch); the
                // merge mutates the restored map in place.
                let saved: HashMap<String, NodeId> = self.defs.clone();
                for st in then_body {
                    self.stmt(st);
                }
                let then_defs = std::mem::replace(&mut self.defs, saved.clone());
                for st in else_body {
                    self.stmt(st);
                }
                let else_defs = std::mem::replace(&mut self.defs, saved);
                // Merge in program order of first definition (then branch
                // first), not name order: mux creation order — and with it
                // node ids and register pressure — must be invariant under
                // alpha-renaming so canonically identical kernels estimate
                // identically. Names defined before the `if` and untouched
                // by both branches merge to their own value, so walking
                // only branch-assigned names is equivalent to walking
                // every defined name.
                let mut touched: Vec<&String> = Vec::new();
                collect_scalar_defs(then_body, &mut touched);
                collect_scalar_defs(else_body, &mut touched);
                let mut seen = std::collections::HashSet::new();
                touched.retain(|n| seen.insert(*n));
                for name in touched {
                    let t = then_defs.get(name).copied();
                    let e = else_defs.get(name).copied();
                    // `self.defs` holds the pre-branch defs again; the
                    // loop only ever overwrites the name it is merging,
                    // so later lookups still see pre-branch values.
                    let pre = self.defs.get(name).copied();
                    let (t, e) = (t.or(pre), e.or(pre));
                    match (t, e) {
                        (Some(tv), Some(ev)) if tv == ev => {
                            self.defs.insert(name.clone(), tv);
                        }
                        (Some(tv), Some(ev)) => {
                            let bits = self.scalar_bits(name);
                            let mux = self.dfg.push(
                                NodeKind::Op {
                                    op: HwOp::Mux,
                                    bits,
                                },
                                vec![c, tv, ev],
                            );
                            self.defs.insert(name.clone(), mux);
                        }
                        (Some(tv), None) | (None, Some(tv)) => {
                            // Defined on one path only and not before:
                            // keep the defined value (estimation only).
                            self.defs.insert(name.clone(), tv);
                        }
                        (None, None) => {}
                    }
                }
            }
            Stmt::Rotate(regs) => {
                let bits = regs.first().map(|r| self.scalar_bits(r)).unwrap_or(32);
                let mut preds: Vec<NodeId> = regs
                    .iter()
                    .filter_map(|r| self.defs.get(r).copied())
                    .collect();
                preds.sort();
                preds.dedup();
                let rot = self.dfg.push(
                    NodeKind::Rotate {
                        regs: regs.len(),
                        bits,
                    },
                    preds,
                );
                // The rotation redefines every register in the chain.
                if self.ranges.is_some() {
                    let all = regs
                        .iter()
                        .filter_map(|r| self.scalar_interval(r))
                        .reduce(Interval::union);
                    if let Some(all) = all {
                        for r in regs {
                            self.def_ranges.insert(r.clone(), all);
                        }
                    }
                }
                for r in regs {
                    self.defs.insert(r.clone(), rot);
                }
            }
            Stmt::For(_) => panic!("build_dfg: loops must be handled by the estimator"),
        }
    }

    fn store(&mut self, a: &ArrayAccess, value: NodeId) {
        let bits = self.array_bits(&a.array);
        let bank = self.binding.bank_of(a);
        let mut preds = vec![value];
        if let Some(&prev) = self.last_store.get(&a.array) {
            preds.push(prev);
        }
        preds.extend(self.loads_since_store.remove(&a.array).unwrap_or_default());
        preds.sort();
        preds.dedup();
        let st = self.dfg.push(
            NodeKind::Store {
                array: a.array.clone(),
                bank,
                bits,
            },
            preds,
        );
        self.last_store.insert(a.array.clone(), st);
    }

    /// Returns the producing node, the operator width to price it at,
    /// and (under narrowing) the value interval.
    fn expr(&mut self, e: &Expr) -> (NodeId, u32, Option<Interval>) {
        match e {
            Expr::Int(v) => {
                let iv = self.ranges.map(|_| Interval::point(*v));
                let bits = match iv {
                    Some(i) => i.bits(),
                    None => 32,
                };
                (self.source(), bits, iv)
            }
            Expr::Scalar(n) => {
                let iv = self.scalar_interval(n);
                let bits = match iv {
                    Some(i) => i.bits().min(self.scalar_bits(n).max(1)),
                    None => self.scalar_bits(n),
                };
                match self.defs.get(n).copied() {
                    Some(d) => (d, bits, iv),
                    None => (self.source(), bits, iv),
                }
            }
            Expr::Load(a) => {
                // Memory transfers move whole declared-width elements; the
                // *value* may be narrower under an annotation.
                let mem_bits = self.array_bits(&a.array);
                let iv = self.ranges.map(|info| info.array(&a.array));
                let bits = match iv {
                    Some(i) => i.bits().min(mem_bits),
                    None => mem_bits,
                };
                // Word class: elements of a small-typed array packed into
                // one memory word share a fetch; otherwise every load is
                // its own word. Packing also changes the layout — packed
                // arrays distribute cyclically by *word* (phaseless), so
                // the elements of one word actually live together.
                let (bank, word) = match self.pack_word_bits {
                    Some(word_bits) if mem_bits < word_bits => {
                        let epw = (word_bits / mem_bits).max(1) as i64;
                        let word = self.binding.flat_offset(a).div_euclid(epw);
                        let bank = match self.binding.layout(&a.array) {
                            Some(ArrayLayout::Single { bank }) => bank,
                            _ => {
                                word.rem_euclid(self.binding.num_memories().max(1) as i64) as usize
                            }
                        };
                        (bank, word)
                    }
                    _ => (self.binding.bank_of(a), self.dfg.len() as i64 + (1 << 40)),
                };
                let mut preds = Vec::new();
                if let Some(&prev) = self.last_store.get(&a.array) {
                    preds.push(prev);
                }
                let ld = self.dfg.push(
                    NodeKind::Load {
                        array: a.array.clone(),
                        bank,
                        bits: mem_bits,
                        word,
                    },
                    preds,
                );
                self.loads_since_store
                    .entry(a.array.clone())
                    .or_default()
                    .push(ld);
                (ld, bits, iv)
            }
            Expr::Unary(op, inner) => {
                let (v, bits, iv) = self.expr(inner);
                let riv = iv.map(|i| match op {
                    defacto_ir::UnOp::Neg => i.neg(),
                    defacto_ir::UnOp::Abs => i.abs(),
                    defacto_ir::UnOp::Not => Interval::new(
                        i.hi.saturating_neg().saturating_sub(1),
                        i.lo.saturating_neg().saturating_sub(1),
                    ),
                });
                let rbits = riv.map(Interval::bits).unwrap_or(bits);
                let node = self.dfg.push(
                    NodeKind::Op {
                        op: HwOp::of_unop(*op),
                        bits: rbits,
                    },
                    vec![v],
                );
                (node, rbits, riv)
            }
            Expr::Binary(op, lhs, rhs) => {
                // Strength reduction information: constant (power-of-two)
                // right operand. Multiplication is commutative, so a
                // constant left operand counts too.
                let (const_side, pow2) = match (&**lhs, &**rhs, op) {
                    (_, Expr::Int(v), _) => (true, v.abs().count_ones() == 1),
                    (Expr::Int(v), _, BinOp::Mul) => (true, v.abs().count_ones() == 1),
                    _ => (false, false),
                };
                let (a, ba, ia) = self.expr(lhs);
                let (b, bb, ib) = self.expr(rhs);
                let riv = match (ia, ib) {
                    (Some(x), Some(y)) => Some(match op {
                        BinOp::Add => x.add(y),
                        BinOp::Sub => x.sub(y),
                        BinOp::Mul => x.mul(y),
                        BinOp::Div => x.div(y),
                        BinOp::Rem => x.rem(y),
                        BinOp::Shl => {
                            if y.lo == y.hi && (0..32).contains(&y.lo) {
                                x.mul(Interval::point(1i64 << y.lo))
                            } else {
                                Interval::of_type(defacto_ir::ScalarType::I32)
                            }
                        }
                        BinOp::Shr => {
                            if y.lo == y.hi && (0..32).contains(&y.lo) {
                                x.div(Interval::point(1i64 << y.lo))
                            } else {
                                x.union(Interval::point(0))
                            }
                        }
                        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                            Interval::new(0, 1)
                        }
                        BinOp::And | BinOp::Or | BinOp::Xor => {
                            let bits = x.union(y).bits().min(62);
                            if x.lo >= 0 && y.lo >= 0 {
                                Interval::new(0, (1i64 << bits) - 1)
                            } else {
                                Interval::new(-(1i64 << (bits - 1)).max(1), (1i64 << bits) - 1)
                            }
                        }
                    }),
                    _ => None,
                };
                // Operator width: interval-driven under narrowing (the
                // wider operand still has to flow through the unit),
                // declared-width rule otherwise.
                let bits = match (riv, ia, ib) {
                    (Some(r), Some(x), Some(y)) => {
                        r.bits().max(x.bits()).max(y.bits()).min(ba.max(bb).max(1))
                    }
                    _ => ba.max(bb),
                };
                let hw = HwOp::of_binop(*op, const_side, pow2);
                let node = self.dfg.push(NodeKind::Op { op: hw, bits }, vec![a, b]);
                let out_bits = if op.is_comparison() { 1 } else { bits };
                (node, out_bits, riv)
            }
            Expr::Select(c, t, f) => {
                let (cn, _, _) = self.expr(c);
                let (tn, bt, it) = self.expr(t);
                let (fn_, bf, if_) = self.expr(f);
                let riv = match (it, if_) {
                    (Some(x), Some(y)) => Some(x.union(y)),
                    _ => None,
                };
                let bits = riv.map(Interval::bits).unwrap_or_else(|| bt.max(bf));
                let node = self.dfg.push(
                    NodeKind::Op {
                        op: HwOp::Mux,
                        bits,
                    },
                    vec![cn, tn, fn_],
                );
                (node, bits, riv)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;
    use defacto_xform::assign_memories;

    fn dfg_for(src: &str) -> (Dfg, Kernel) {
        let k = parse_kernel(src).unwrap();
        let binding = assign_memories(&k, 4);
        let nest = k.perfect_nest().unwrap();
        let dfg = build_dfg(nest.innermost_body(), &k, &binding);
        (dfg, k)
    }

    #[test]
    fn fir_body_structure() {
        let (dfg, _) = dfg_for(
            "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
               for j in 0..64 { for i in 0..32 {
                 D[j] = D[j] + S[i + j] * C[i]; } } }",
        );
        let loads = dfg
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Load { .. }))
            .count();
        let stores = dfg
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Store { .. }))
            .count();
        let ops = dfg
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Op { .. }))
            .count();
        assert_eq!(loads, 3);
        assert_eq!(stores, 1);
        assert_eq!(ops, 2); // one mul, one add

        // The store depends (transitively) on the add.
        let store = dfg
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Store { .. }))
            .unwrap();
        assert!(!store.preds.is_empty());
    }

    #[test]
    fn predicated_if_makes_mux_and_unconditional_store() {
        let (dfg, _) = dfg_for(
            "kernel p { in A: i32[8]; out B: i32[8]; var t: i32;
               for i in 0..8 {
                 if (A[i] > 0) { t = A[i]; } else { t = 0 - A[i]; }
                 B[i] = t;
               } }",
        );
        let muxes = dfg
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Op { op: HwOp::Mux, .. }))
            .count();
        assert_eq!(muxes, 1);
        let stores = dfg
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Store { .. }))
            .count();
        assert_eq!(stores, 1);
    }

    #[test]
    fn memory_ordering_edges() {
        // Store then load of the same array: the load must wait.
        let (dfg, _) = dfg_for(
            "kernel so { inout A: i32[8];
               for i in 0..4 {
                 A[i] = 1;
                 A[i + 4] = A[i] + 1;
               } }",
        );
        let nodes = dfg.nodes();
        let first_store = nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Store { .. }))
            .unwrap();
        let load_after = nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Load { .. }))
            .unwrap();
        assert!(load_after.preds.contains(&first_store.id));
    }

    #[test]
    fn strength_reduced_mul_by_constant() {
        let (dfg, _) = dfg_for(
            "kernel sr { in A: i32[8]; out B: i32[8];
               for i in 0..8 { B[i] = A[i] * 4 + A[i] * 3; } }",
        );
        let shifts = dfg
            .nodes()
            .iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    NodeKind::Op {
                        op: HwOp::ConstShift,
                        ..
                    }
                )
            })
            .count();
        let muls = dfg
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Op { op: HwOp::Mul, .. }))
            .count();
        assert_eq!(shifts, 1); // ×4
        assert_eq!(muls, 1); // ×3
    }

    #[test]
    fn rotate_node_redefines_registers() {
        let k = parse_kernel(
            "kernel r { out B: i32[2]; var r0: i32; var r1: i32;
               for i in 0..2 {
                 r0 = 1;
                 rotate(r0, r1);
                 B[i] = r0;
               } }",
        )
        .unwrap();
        let binding = assign_memories(&k, 1);
        let nest = k.perfect_nest().unwrap();
        let dfg = build_dfg(nest.innermost_body(), &k, &binding);
        let rot = dfg
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Rotate { .. }))
            .unwrap();
        // The store of B[i] uses r0 as redefined by the rotation.
        let store = dfg
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Store { .. }))
            .unwrap();
        assert!(store.preds.contains(&rot.id));
    }

    #[test]
    #[should_panic(expected = "loops must be handled")]
    fn loops_rejected() {
        let k = parse_kernel("kernel l { out B: i32[4]; for i in 0..4 { B[i] = 0; } }").unwrap();
        let binding = assign_memories(&k, 1);
        build_dfg(k.body(), &k, &binding);
    }
}
