//! The behavioral-synthesis estimator.
//!
//! Walks the transformed kernel's (possibly imperfect) loop structure,
//! schedules every straight-line segment, and aggregates:
//!
//! - **cycles** — total execution time at the fixed 40 ns clock, with one
//!   FSM cycle of loop overhead per iteration and one of loop setup;
//! - **memory/compute busy time** — the denominators of the paper's
//!   fetch rate `F` and consumption rate `C`; their ratio is the balance
//!   metric (`B > 1`: compute bound, `B < 1`: memory bound);
//! - **slices** — datapath operators at their schedule-derived
//!   allocation (shared across segments, as behavioral synthesis reuses
//!   operators between peeled and steady bodies), registers, memory
//!   interfaces, loop counters and the control FSM.

use crate::constraints::ResourceConstraints;
use crate::device::FpgaDevice;
use crate::memory::MemoryModel;
use crate::oplib::{
    fsm_state_slices, op_spec, register_slices, HwOp, FSM_BASE_SLICES, MEMORY_INTERFACE_SLICES,
};
use crate::schedule::{schedule_dfg_prioritized, ListPriority, OpUsage};
use defacto_analysis::{infer_ranges, RangeInfo};
use defacto_ir::{Kernel, Stmt};
use defacto_xform::TransformedDesign;
use std::collections::HashMap;

/// One FSM cycle per loop iteration (index update + branch).
pub(crate) const LOOP_ITER_OVERHEAD: u64 = 1;
/// One FSM cycle to enter a loop (index reset).
pub(crate) const LOOP_SETUP_OVERHEAD: u64 = 1;
/// Slices for one loop's 16-bit counter + bound comparator.
pub(crate) const LOOP_CONTROL_SLICES: u32 = 12;

/// How an estimate was produced — which estimator features shaped it and
/// how much scheduling work it took. Carried on every [`Estimate`] so
/// traces and reports can attribute a number to its configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Provenance {
    /// Straight-line segments scheduled (one DFG build + list schedule
    /// each) across the whole loop structure.
    pub segments: u32,
    /// Designer operator bounds were in effect (paper §2.3).
    pub constrained: bool,
    /// Bit-width narrowing was applied (paper §2.4).
    pub bitwidth_narrowed: bool,
    /// Small-type packing was applied (paper §4).
    pub packed: bool,
}

/// A behavioral-synthesis estimate for one design point.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Estimate {
    /// Total execution cycles.
    pub cycles: u64,
    /// Estimated area in slices.
    pub slices: u32,
    /// Aggregate memory-limited time (Σ per-segment max bank occupancy ×
    /// executions).
    pub memory_busy_cycles: u64,
    /// Aggregate compute-limited time (Σ per-segment operator critical
    /// path × executions).
    pub compute_busy_cycles: u64,
    /// Total bits moved to/from external memory.
    pub bits_from_memory: u64,
    /// On-chip registers (scalar variables of the design).
    pub registers: usize,
    /// The design's balance `B = F/C` (±∞ guarded; 1.0 when both idle).
    pub balance: f64,
    /// Clock period used (ns).
    pub clock_ns: u32,
    /// Whether the design fits the device.
    pub fits: bool,
    /// How the estimate was produced.
    pub provenance: Provenance,
}

impl Estimate {
    /// Wall-clock execution time in microseconds.
    pub fn exec_time_us(&self) -> f64 {
        self.cycles as f64 * self.clock_ns as f64 / 1000.0
    }

    /// True when the design is memory bound (`B < 1`).
    pub fn memory_bound(&self) -> bool {
        self.balance < 1.0
    }

    /// True when the design is compute bound (`B > 1`).
    pub fn compute_bound(&self) -> bool {
        self.balance > 1.0
    }
}

#[derive(Default)]
struct Aggregate {
    // Dynamic quantities (scaled by trip counts).
    cycles: u64,
    mem_busy: u64,
    comp_busy: u64,
    bits: u64,
    // Static quantities (structural, not scaled).
    op_usage: HashMap<(HwOp, u32), OpUsage>,
    fsm_states: u64,
    loops: u32,
    segments: u32,
}

impl Aggregate {
    fn merge_static(&mut self, other: &Aggregate) {
        self.merge_op_usage(&other.op_usage);
        self.fsm_states += other.fsm_states;
        self.loops += other.loops;
        self.segments += other.segments;
    }

    fn merge_op_usage(&mut self, usage: &HashMap<(HwOp, u32), OpUsage>) {
        for (k, u) in usage {
            let e = self.op_usage.entry(*k).or_default();
            // Operators are shared across segments: allocation is the max
            // concurrency anywhere; uses accumulate (they contend for the
            // shared units through multiplexers).
            e.max_concurrent = e.max_concurrent.max(u.max_concurrent);
            e.total_uses += u.total_uses;
        }
    }
}

/// Estimate a transformed design against a memory model and device.
///
/// The balance metric compares the design's aggregate fetch rate `F`
/// (bits ÷ memory-busy time) with its consumption rate `C` (bits ÷
/// compute-critical time); since the numerators agree, `B` reduces to
/// compute time over memory time.
pub fn estimate(design: &TransformedDesign, mem: &MemoryModel, dev: &FpgaDevice) -> Estimate {
    estimate_opts(design, mem, dev, &SynthesisOptions::default())
}

/// Like [`estimate`] but with designer operator bounds (paper §2.3): the
/// schedule serializes onto the limited units, trading cycles for area.
pub fn estimate_constrained(
    design: &TransformedDesign,
    mem: &MemoryModel,
    dev: &FpgaDevice,
    constraints: &ResourceConstraints,
) -> Estimate {
    estimate_opts(
        design,
        mem,
        dev,
        &SynthesisOptions {
            constraints: constraints.clone(),
            ..SynthesisOptions::default()
        },
    )
}

/// Synthesis-side options for [`estimate_opts`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SynthesisOptions {
    /// Designer operator bounds (paper §2.3).
    pub constraints: ResourceConstraints,
    /// Bit-width narrowing from value-range analysis (paper §2.4): bind
    /// operators and registers at the widths the inferred intervals need
    /// instead of the declared C types.
    pub bitwidth_narrowing: bool,
    /// Small-type packing (paper §4): elements of arrays narrower than
    /// the memory word share fetches (e.g. four `u8` pixels per 32-bit
    /// word).
    pub pack_small_types: bool,
    /// Ready-list policy: Monet-style ASAP (default) or least-slack-first.
    pub priority: ListPriority,
}

/// The most general estimation entry point.
pub fn estimate_opts(
    design: &TransformedDesign,
    mem: &MemoryModel,
    dev: &FpgaDevice,
    opts: &SynthesisOptions,
) -> Estimate {
    let ranges = opts
        .bitwidth_narrowing
        .then(|| infer_ranges(&design.kernel));
    let pack = opts.pack_small_types.then_some(mem.width_bits);
    let agg = walk(
        design.kernel.body(),
        &WalkCtx {
            kernel: &design.kernel,
            design,
            mem,
            constraints: &opts.constraints,
            ranges: ranges.as_ref(),
            pack,
            priority: opts.priority,
        },
    );

    let balance = match (agg.comp_busy, agg.mem_busy) {
        (0, 0) => 1.0,
        (_, 0) => f64::INFINITY,
        (c, m) => c as f64 / m as f64,
    };

    // Area. Accumulated in u64 with saturating arithmetic: a heavily
    // unrolled kernel can push any single term past u32 range, and the
    // clamp back to the `Estimate::slices` width must happen exactly
    // once, visibly, at the end.
    let mut area: u64 = 0;
    for ((op, bits), usage) in &agg.op_usage {
        let spec = op_spec(*op, *bits);
        area = area.saturating_add(spec.area_slices as u64 * usage.max_concurrent as u64);
        // Sharing multiplexers: each use beyond the allocated instances
        // steers operands through a mux tree.
        let shared = usage.total_uses.saturating_sub(usage.max_concurrent);
        area = area.saturating_add(shared as u64 * (bits / 4 + 1) as u64);
    }
    let mut registers = 0usize;
    for s in design.kernel.scalars() {
        registers += 1;
        let bits = match &ranges {
            Some(info) => info.var(&s.name).bits().min(s.ty.bits()),
            None => s.ty.bits(),
        };
        area = area.saturating_add(register_slices(bits) as u64);
    }
    area = area.saturating_add(mem.num_memories as u64 * MEMORY_INTERFACE_SLICES as u64);
    area = area.saturating_add(agg.loops as u64 * LOOP_CONTROL_SLICES as u64);
    area = area
        .saturating_add(FSM_BASE_SLICES as u64)
        .saturating_add(fsm_state_slices(agg.fsm_states));
    let slices = area.min(u32::MAX as u64) as u32;

    Estimate {
        cycles: agg.cycles,
        slices,
        memory_busy_cycles: agg.mem_busy,
        compute_busy_cycles: agg.comp_busy,
        bits_from_memory: agg.bits,
        registers,
        balance,
        clock_ns: dev.clock_ns,
        fits: dev.fits(slices),
        provenance: Provenance {
            segments: agg.segments,
            constrained: opts.constraints != ResourceConstraints::default(),
            bitwidth_narrowed: opts.bitwidth_narrowing,
            packed: opts.pack_small_types,
        },
    }
}

/// Everything [`walk`] needs besides the statements themselves — fixed
/// for a whole estimate, threaded unchanged through the loop recursion.
struct WalkCtx<'a> {
    kernel: &'a Kernel,
    design: &'a TransformedDesign,
    mem: &'a MemoryModel,
    constraints: &'a ResourceConstraints,
    ranges: Option<&'a RangeInfo>,
    pack: Option<u32>,
    priority: ListPriority,
}

fn walk(stmts: &[Stmt], ctx: &WalkCtx<'_>) -> Aggregate {
    let mut agg = Aggregate::default();
    // Straight-line statements are borrowed from the body, not cloned:
    // segments only feed the DFG builder, which reads them.
    let mut segment: Vec<&Stmt> = Vec::new();

    let flush = |segment: &mut Vec<&Stmt>, agg: &mut Aggregate| {
        if segment.is_empty() {
            return;
        }
        let dfg = crate::dfg::build_dfg_stmts(
            segment.iter().copied(),
            ctx.kernel,
            &ctx.design.binding,
            &crate::dfg::DfgOptions {
                ranges: ctx.ranges,
                pack_word_bits: ctx.pack,
            },
        );
        let sched = schedule_dfg_prioritized(&dfg, ctx.mem, ctx.constraints, ctx.priority);
        agg.cycles += sched.length;
        agg.mem_busy += sched.t_mem;
        agg.comp_busy += sched.t_comp;
        agg.bits += sched.bits_transferred;
        agg.fsm_states += sched.length;
        agg.segments += 1;
        agg.merge_op_usage(&sched.op_usage);
        segment.clear();
    };

    for s in stmts {
        match s {
            Stmt::For(l) => {
                flush(&mut segment, &mut agg);
                let inner = walk(&l.body, ctx);
                // `trip_count` is non-negative by definition (degenerate
                // loops report zero and are rejected up front by lint
                // DF010), so this conversion is lossless — the old
                // `.max(0) as u64` sign-clamp hid that contract.
                let trips = u64::try_from(l.trip_count()).unwrap_or(0);
                agg.cycles += LOOP_SETUP_OVERHEAD + trips * (inner.cycles + LOOP_ITER_OVERHEAD);
                agg.mem_busy += trips * inner.mem_busy;
                agg.comp_busy += trips * inner.comp_busy;
                agg.bits += trips * inner.bits;
                agg.merge_static(&inner);
                agg.loops += 1;
            }
            other => segment.push(other),
        }
    }
    flush(&mut segment, &mut agg);
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;
    use defacto_xform::{transform, TransformOptions, UnrollVector};

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    fn fir_design(factors: Vec<i64>) -> TransformedDesign {
        let k = parse_kernel(FIR).unwrap();
        transform(&k, &UnrollVector(factors), &TransformOptions::default()).unwrap()
    }

    #[test]
    fn baseline_fir_pipelined() {
        let d = fir_design(vec![1, 1]);
        let e = estimate(
            &d,
            &MemoryModel::wildstar_pipelined(),
            &FpgaDevice::virtex1000(),
        );
        // Sanity: thousands of cycles for 2048 MACs, well within device.
        assert!(e.cycles > 2048, "cycles {}", e.cycles);
        assert!(e.cycles < 60_000, "cycles {}", e.cycles);
        assert!(e.fits);
        assert!(e.slices > 100);
        // Pipelined accesses + registers for C: compute bound.
        assert!(e.compute_bound(), "balance {}", e.balance);
    }

    #[test]
    fn baseline_fir_non_pipelined_is_memory_bound() {
        let d = fir_design(vec![1, 1]);
        let e = estimate(
            &d,
            &MemoryModel::wildstar_non_pipelined(),
            &FpgaDevice::virtex1000(),
        );
        assert!(e.memory_bound(), "balance {}", e.balance);
    }

    #[test]
    fn unrolling_reduces_cycles_and_grows_area() {
        let mem = MemoryModel::wildstar_pipelined();
        let dev = FpgaDevice::virtex1000();
        let e1 = estimate(&fir_design(vec![1, 1]), &mem, &dev);
        let e2 = estimate(&fir_design(vec![2, 2]), &mem, &dev);
        let e4 = estimate(&fir_design(vec![4, 4]), &mem, &dev);
        assert!(e2.cycles < e1.cycles, "{} vs {}", e2.cycles, e1.cycles);
        assert!(e4.cycles < e2.cycles, "{} vs {}", e4.cycles, e2.cycles);
        assert!(e2.slices > e1.slices);
        assert!(e4.slices > e2.slices);
    }

    #[test]
    fn huge_unroll_exceeds_capacity() {
        let mem = MemoryModel::wildstar_pipelined();
        let dev = FpgaDevice::virtex1000();
        let e = estimate(&fir_design(vec![64, 32]), &mem, &dev);
        assert!(!e.fits, "slices {}", e.slices);
    }

    #[test]
    fn scalar_replacement_cuts_memory_traffic() {
        let k = parse_kernel(FIR).unwrap();
        let mem = MemoryModel::wildstar_pipelined();
        let dev = FpgaDevice::virtex1000();
        let with = transform(&k, &UnrollVector(vec![2, 2]), &TransformOptions::default()).unwrap();
        let without = transform(
            &k,
            &UnrollVector(vec![2, 2]),
            &TransformOptions {
                scalar_replacement: false,
                ..TransformOptions::default()
            },
        )
        .unwrap();
        let ew = estimate(&with, &mem, &dev);
        let eo = estimate(&without, &mem, &dev);
        assert!(ew.bits_from_memory < eo.bits_from_memory / 2);
        assert!(ew.cycles < eo.cycles);
    }

    #[test]
    fn custom_layout_beats_single_memory() {
        let k = parse_kernel(FIR).unwrap();
        let mem = MemoryModel::wildstar_pipelined();
        let dev = FpgaDevice::virtex1000();
        let multi = transform(&k, &UnrollVector(vec![8, 4]), &TransformOptions::default()).unwrap();
        let single = transform(
            &k,
            &UnrollVector(vec![8, 4]),
            &TransformOptions {
                custom_layout: false,
                ..TransformOptions::default()
            },
        )
        .unwrap();
        let em = estimate(&multi, &mem, &dev);
        let es = estimate(&single, &mem, &dev);
        assert!(em.cycles < es.cycles, "{} vs {}", em.cycles, es.cycles);
        assert!(em.memory_busy_cycles < es.memory_busy_cycles);
    }

    #[test]
    fn exec_time_uses_clock() {
        let d = fir_design(vec![1, 1]);
        let e = estimate(
            &d,
            &MemoryModel::wildstar_pipelined(),
            &FpgaDevice::virtex1000(),
        );
        let us = e.exec_time_us();
        assert!((us - e.cycles as f64 * 0.04).abs() < 1e-9);
    }

    #[test]
    fn operator_constraints_trade_cycles_for_area() {
        use crate::constraints::ResourceConstraints;
        use crate::oplib::HwOp;
        let d = fir_design(vec![4, 4]);
        let mem = MemoryModel::wildstar_pipelined();
        let dev = FpgaDevice::virtex1000();
        let free = estimate(&d, &mem, &dev);
        let capped = estimate_constrained(
            &d,
            &mem,
            &dev,
            &ResourceConstraints::new().with_limit(HwOp::Mul, 2),
        );
        assert!(
            capped.cycles > free.cycles,
            "{} vs {}",
            capped.cycles,
            free.cycles
        );
        assert!(
            capped.slices < free.slices,
            "{} vs {}",
            capped.slices,
            free.slices
        );
        // Fewer parallel consumers: the design shifts toward compute
        // bound.
        assert!(capped.balance >= free.balance * 0.9);
    }

    #[test]
    fn bitwidth_narrowing_shrinks_annotated_designs() {
        use defacto_xform::{transform, TransformOptions, UnrollVector};
        // 10-bit signal data and 7-bit coefficients declared as C ints.
        let k = parse_kernel(
            "kernel fir {
               in S: i32[96] range -512..511;
               in C: i32[32] range -64..63;
               inout D: i32[64];
               for j in 0..64 { for i in 0..32 {
                 D[j] = D[j] + S[i + j] * C[i]; } } }",
        )
        .unwrap();
        let design =
            transform(&k, &UnrollVector(vec![4, 4]), &TransformOptions::default()).unwrap();
        let mem = MemoryModel::wildstar_pipelined();
        let dev = FpgaDevice::virtex1000();
        let wide = estimate(&design, &mem, &dev);
        let narrow = estimate_opts(
            &design,
            &mem,
            &dev,
            &SynthesisOptions {
                bitwidth_narrowing: true,
                ..SynthesisOptions::default()
            },
        );
        // The 10×7-bit products need ~17-bit multipliers instead of
        // 32-bit ones: a large area cut at equal or better speed.
        assert!(
            (narrow.slices as f64) < wide.slices as f64 * 0.75,
            "narrow {} vs wide {}",
            narrow.slices,
            wide.slices
        );
        assert!(narrow.cycles <= wide.cycles);
    }

    #[test]
    fn narrowing_without_annotations_changes_little() {
        let d = fir_design(vec![4, 4]);
        let mem = MemoryModel::wildstar_pipelined();
        let dev = FpgaDevice::virtex1000();
        let wide = estimate(&d, &mem, &dev);
        let narrow = estimate_opts(
            &d,
            &mem,
            &dev,
            &SynthesisOptions {
                bitwidth_narrowing: true,
                ..SynthesisOptions::default()
            },
        );
        // i32 arrays without annotations keep i32 datapaths; only loop
        // counters and flags narrow.
        assert!(narrow.slices <= wide.slices);
        assert!(narrow.slices as f64 > wide.slices as f64 * 0.80);
    }

    #[test]
    fn packing_cuts_memory_time_for_small_types() {
        use defacto_xform::{transform, TransformOptions, UnrollVector};
        // PAT: u8 string data on 32-bit memories — four characters per
        // word.
        let k = defacto_ir::parse_kernel(
            "kernel pat { in S: u8[64]; in P: u8[16]; inout M: i16[48];
               for j in 0..48 { for i in 0..16 {
                 M[j] = M[j] + (S[i + j] == P[i]); } } }",
        )
        .unwrap();
        let design =
            transform(&k, &UnrollVector(vec![4, 4]), &TransformOptions::default()).unwrap();
        let mem = MemoryModel::wildstar_pipelined();
        let dev = FpgaDevice::virtex1000();
        let unpacked = estimate(&design, &mem, &dev);
        let packed = estimate_opts(
            &design,
            &mem,
            &dev,
            &SynthesisOptions {
                pack_small_types: true,
                ..SynthesisOptions::default()
            },
        );
        assert!(
            packed.memory_busy_cycles < unpacked.memory_busy_cycles,
            "packed {} vs unpacked {}",
            packed.memory_busy_cycles,
            unpacked.memory_busy_cycles
        );
        assert!(packed.cycles <= unpacked.cycles);
        // Fewer fetches, same computation: the design leans more compute
        // bound.
        assert!(packed.balance >= unpacked.balance);
    }

    #[test]
    fn packing_is_inert_for_full_width_types() {
        let d = fir_design(vec![4, 4]); // i32 arrays on 32-bit memories
        let mem = MemoryModel::wildstar_pipelined();
        let dev = FpgaDevice::virtex1000();
        let a = estimate(&d, &mem, &dev);
        let b = estimate_opts(
            &d,
            &mem,
            &dev,
            &SynthesisOptions {
                pack_small_types: true,
                ..SynthesisOptions::default()
            },
        );
        // Provenance records the configuration (packed on/off), so
        // compare everything else.
        let b_with_a_provenance = Estimate {
            provenance: a.provenance,
            ..b
        };
        assert_eq!(a, b_with_a_provenance);
    }

    #[test]
    fn provenance_records_configuration_and_work() {
        let d = fir_design(vec![2, 2]);
        let mem = MemoryModel::wildstar_pipelined();
        let dev = FpgaDevice::virtex1000();
        let plain = estimate(&d, &mem, &dev);
        // FIR's nest has one scheduled segment (the innermost body).
        assert!(plain.provenance.segments >= 1);
        assert!(!plain.provenance.constrained);
        assert!(!plain.provenance.bitwidth_narrowed);
        assert!(!plain.provenance.packed);
        let tuned = estimate_opts(
            &d,
            &mem,
            &dev,
            &SynthesisOptions {
                bitwidth_narrowing: true,
                pack_small_types: true,
                ..SynthesisOptions::default()
            },
        );
        assert!(tuned.provenance.bitwidth_narrowed);
        assert!(tuned.provenance.packed);
        assert!(!tuned.provenance.constrained);
        use crate::constraints::ResourceConstraints;
        use crate::oplib::HwOp;
        let capped = estimate_constrained(
            &d,
            &mem,
            &dev,
            &ResourceConstraints::new().with_limit(HwOp::Mul, 2),
        );
        assert!(capped.provenance.constrained);
    }

    #[test]
    fn estimates_are_deterministic() {
        let d = fir_design(vec![4, 2]);
        let mem = MemoryModel::wildstar_pipelined();
        let dev = FpgaDevice::virtex1000();
        assert_eq!(estimate(&d, &mem, &dev), estimate(&d, &mem, &dev));
    }
}
