//! The operator library: hardware cost of each datapath operation.
//!
//! Behavioral synthesis *binds* source operations to library operators
//! with known latency (in cycles at the fixed 40 ns clock) and area (in
//! Virtex slices). The numbers below follow the usual Virtex-era costs:
//! ripple-carry adders fit a 40 ns cycle at any width we support and take
//! one slice per two bits; LUT-built multipliers are quadratic in width
//! and need two cycles beyond 8 bits; constant shifts are wiring.

use defacto_ir::{BinOp, UnOp};
use std::fmt;

/// The hardware operator classes the library prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HwOp {
    /// Addition or subtraction (ripple-carry).
    AddSub,
    /// Multiplication.
    Mul,
    /// Division or remainder by a non-constant (iterative).
    Div,
    /// Shift by a constant amount: pure wiring.
    ConstShift,
    /// Shift by a variable amount (barrel shifter).
    VarShift,
    /// Bitwise logic (and/or/xor/not).
    Logic,
    /// Comparison producing a 1-bit flag.
    Cmp,
    /// 2:1 selection (multiplexer).
    Mux,
    /// Absolute value / negation (an adder-class unit).
    AbsNeg,
}

impl HwOp {
    /// Classify a binary IR operator (the right operand's constancy
    /// decides between constant and variable shifts, and strength-reduces
    /// multiplication/division by powers of two to wiring).
    pub fn of_binop(op: BinOp, rhs_is_const: bool, rhs_pow2: bool) -> HwOp {
        match op {
            BinOp::Add | BinOp::Sub => HwOp::AddSub,
            BinOp::Mul if rhs_is_const && rhs_pow2 => HwOp::ConstShift,
            BinOp::Mul => HwOp::Mul,
            BinOp::Div | BinOp::Rem if rhs_is_const && rhs_pow2 => HwOp::ConstShift,
            BinOp::Div | BinOp::Rem => HwOp::Div,
            BinOp::Shl | BinOp::Shr if rhs_is_const => HwOp::ConstShift,
            BinOp::Shl | BinOp::Shr => HwOp::VarShift,
            BinOp::And | BinOp::Or | BinOp::Xor => HwOp::Logic,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => HwOp::Cmp,
        }
    }

    /// Classify a unary IR operator.
    pub fn of_unop(op: UnOp) -> HwOp {
        match op {
            UnOp::Neg | UnOp::Abs => HwOp::AbsNeg,
            UnOp::Not => HwOp::Logic,
        }
    }
}

impl fmt::Display for HwOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HwOp::AddSub => "add/sub",
            HwOp::Mul => "mul",
            HwOp::Div => "div",
            HwOp::ConstShift => "cshift",
            HwOp::VarShift => "vshift",
            HwOp::Logic => "logic",
            HwOp::Cmp => "cmp",
            HwOp::Mux => "mux",
            HwOp::AbsNeg => "abs/neg",
        };
        f.write_str(s)
    }
}

/// Latency/area of one operator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpec {
    /// Cycles at the 40 ns clock (0 = combinational wiring, chains freely).
    pub latency: u32,
    /// Slices consumed by one instance.
    pub area_slices: u32,
}

/// Look up the cost of `op` at `bits` width.
pub fn op_spec(op: HwOp, bits: u32) -> OpSpec {
    let b = bits.max(1);
    match op {
        HwOp::AddSub | HwOp::AbsNeg => OpSpec {
            latency: 1,
            area_slices: b.div_ceil(2),
        },
        HwOp::Mul => OpSpec {
            latency: if b <= 8 { 1 } else { 2 },
            area_slices: (b * b) / 8 + b,
        },
        HwOp::Div => OpSpec {
            latency: b.div_ceil(4).max(2),
            area_slices: (b * b) / 4 + b,
        },
        HwOp::ConstShift => OpSpec {
            latency: 0,
            area_slices: 0,
        },
        HwOp::VarShift => OpSpec {
            latency: 1,
            area_slices: b,
        },
        HwOp::Logic => OpSpec {
            latency: 0,
            area_slices: b.div_ceil(2),
        },
        HwOp::Cmp => OpSpec {
            latency: 1,
            area_slices: b.div_ceil(2),
        },
        HwOp::Mux => OpSpec {
            latency: 0,
            area_slices: b.div_ceil(2),
        },
    }
}

/// Slices needed to hold an on-chip register of `bits` (two flip-flops
/// per slice).
pub fn register_slices(bits: u32) -> u32 {
    bits.div_ceil(2)
}

/// Fixed slice cost of one external-memory interface (address generation,
/// data steering and handshake).
pub const MEMORY_INTERFACE_SLICES: u32 = 60;

/// Base slice cost of the control FSM (state register, next-state logic).
pub const FSM_BASE_SLICES: u32 = 80;

/// Incremental control cost per FSM state (one-hot bit plus decode).
pub const FSM_SLICES_PER_STATE: f64 = 0.75;

/// Controller area in slices for `states` sequencer states:
/// `states × 0.75` ([`FSM_SLICES_PER_STATE`]) in exact integer
/// arithmetic, rounded to nearest and saturating — the f64 round-trip it
/// replaces truncated the fraction and clipped silently at `u32::MAX`.
pub fn fsm_state_slices(states: u64) -> u64 {
    states.saturating_mul(3).saturating_add(2) / 4
}

/// Round-up variant of [`fsm_state_slices`], for tier-0 area *upper*
/// bounds: for any `hi >= states`, `fsm_state_slices_ceil(hi)` dominates
/// `fsm_state_slices(states)`, keeping band containment sound.
pub fn fsm_state_slices_ceil(states: u64) -> u64 {
    states.saturating_mul(3).saturating_add(3) / 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsm_state_slices_rounds_to_nearest_and_saturates() {
        // Boundary values of the 0.75-per-state controller cost. The old
        // f64 round-trip truncated: 2 states cost 1.5 slices and came
        // back as 1; nearest-rounding gives 2.
        assert_eq!(fsm_state_slices(0), 0);
        assert_eq!(fsm_state_slices(1), 1); // 0.75 -> 1
        assert_eq!(fsm_state_slices(2), 2); // 1.50 -> 2
        assert_eq!(fsm_state_slices(3), 2); // 2.25 -> 2
        assert_eq!(fsm_state_slices(4), 3); // 3.00 -> 3
                                            // Saturates instead of wrapping at the top of the range.
        assert_eq!(fsm_state_slices(u64::MAX), u64::MAX / 4);
    }

    #[test]
    fn fsm_ceil_dominates_nearest_for_any_state_count() {
        for s in 0..1000u64 {
            for hi in s..s + 8 {
                assert!(fsm_state_slices_ceil(hi) >= fsm_state_slices(s), "{s} {hi}");
            }
        }
        assert_eq!(fsm_state_slices_ceil(1), 1);
        assert_eq!(fsm_state_slices_ceil(2), 2);
        assert_eq!(fsm_state_slices_ceil(3), 3); // 2.25 rounds *up* to 3
    }

    #[test]
    fn adders_are_linear_multipliers_quadratic() {
        assert_eq!(op_spec(HwOp::AddSub, 32).area_slices, 16);
        assert_eq!(op_spec(HwOp::AddSub, 8).area_slices, 4);
        let m8 = op_spec(HwOp::Mul, 8).area_slices;
        let m16 = op_spec(HwOp::Mul, 16).area_slices;
        let m32 = op_spec(HwOp::Mul, 32).area_slices;
        assert!(m8 < m16 && m16 < m32);
        assert!(m32 > 3 * m16 / 2);
    }

    #[test]
    fn latencies() {
        assert_eq!(op_spec(HwOp::Mul, 8).latency, 1);
        assert_eq!(op_spec(HwOp::Mul, 32).latency, 2);
        assert_eq!(op_spec(HwOp::ConstShift, 32).latency, 0);
        assert_eq!(op_spec(HwOp::ConstShift, 32).area_slices, 0);
        assert!(op_spec(HwOp::Div, 32).latency >= op_spec(HwOp::Mul, 32).latency);
    }

    #[test]
    fn binop_classification_and_strength_reduction() {
        assert_eq!(HwOp::of_binop(BinOp::Add, false, false), HwOp::AddSub);
        assert_eq!(HwOp::of_binop(BinOp::Mul, true, true), HwOp::ConstShift);
        assert_eq!(HwOp::of_binop(BinOp::Mul, true, false), HwOp::Mul);
        assert_eq!(HwOp::of_binop(BinOp::Div, true, true), HwOp::ConstShift);
        assert_eq!(HwOp::of_binop(BinOp::Shl, true, false), HwOp::ConstShift);
        assert_eq!(HwOp::of_binop(BinOp::Shl, false, false), HwOp::VarShift);
        assert_eq!(HwOp::of_binop(BinOp::Lt, false, false), HwOp::Cmp);
        assert_eq!(HwOp::of_unop(UnOp::Abs), HwOp::AbsNeg);
        assert_eq!(HwOp::of_unop(UnOp::Not), HwOp::Logic);
    }

    #[test]
    fn register_cost() {
        assert_eq!(register_slices(32), 16);
        assert_eq!(register_slices(8), 4);
        assert_eq!(register_slices(1), 1);
    }
}
