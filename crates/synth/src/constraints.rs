//! Designer resource constraints (paper §2.3).
//!
//! Behavioral synthesis lets the designer bound the number of operator
//! instances: "the designer might request a design that uses two
//! multipliers and takes at most 10 clock cycles". Monet then serializes
//! operations onto the limited units. [`ResourceConstraints`] carries
//! those bounds into the scheduler; a constrained schedule is longer but
//! the allocation (and hence area) respects the limits.

use crate::oplib::HwOp;
use std::collections::HashMap;

/// Upper bounds on operator instances per class.
///
/// Classes without an entry are unbounded (the scheduler allocates from
/// observed concurrency, as plain ASAP synthesis does).
///
/// ```
/// use defacto_synth::{HwOp, ResourceConstraints};
///
/// let c = ResourceConstraints::new().with_limit(HwOp::Mul, 2);
/// assert_eq!(c.limit(HwOp::Mul), Some(2));
/// assert_eq!(c.limit(HwOp::AddSub), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceConstraints {
    limits: HashMap<HwOp, u32>,
}

// Hash over sorted entries so logically equal constraint sets hash
// equally regardless of `HashMap` iteration order (needed by the
// evaluation engine's memo-cache key).
impl std::hash::Hash for ResourceConstraints {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let mut entries: Vec<(HwOp, u32)> = self.iter().collect();
        entries.sort_unstable();
        entries.hash(state);
    }
}

impl ResourceConstraints {
    /// No limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound `op` to at most `units` instances (0 is clamped to 1 — a
    /// datapath that needs an operator class cannot have none of it).
    pub fn with_limit(mut self, op: HwOp, units: u32) -> Self {
        self.limits.insert(op, units.max(1));
        self
    }

    /// The bound for `op`, if any.
    pub fn limit(&self, op: HwOp) -> Option<u32> {
        self.limits.get(&op).copied()
    }

    /// True when no class is bounded.
    pub fn is_unbounded(&self) -> bool {
        self.limits.is_empty()
    }

    /// Iterate over `(class, bound)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (HwOp, u32)> + '_ {
        self.limits.iter().map(|(op, u)| (*op, *u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clamps_to_one() {
        let c = ResourceConstraints::new().with_limit(HwOp::Mul, 0);
        assert_eq!(c.limit(HwOp::Mul), Some(1));
    }

    #[test]
    fn unbounded_by_default() {
        let c = ResourceConstraints::new();
        assert!(c.is_unbounded());
        assert_eq!(c.limit(HwOp::Div), None);
    }

    #[test]
    fn iteration() {
        let c = ResourceConstraints::new()
            .with_limit(HwOp::Mul, 2)
            .with_limit(HwOp::AddSub, 4);
        let m: HashMap<HwOp, u32> = c.iter().collect();
        assert_eq!(m.len(), 2);
        assert_eq!(m[&HwOp::Mul], 2);
    }
}
