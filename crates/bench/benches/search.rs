//! Criterion benchmark: end-to-end design-space-exploration time per
//! kernel — the reproduction's analog of the paper's "the algorithm
//! executed in less than 5 minutes for each application".

use criterion::{criterion_group, criterion_main, Criterion};
use defacto::prelude::*;

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore");
    group.sample_size(10);
    for (name, kernel) in defacto_kernels::paper_kernels() {
        for (label, mem) in [
            ("pipelined", MemoryModel::wildstar_pipelined()),
            ("non_pipelined", MemoryModel::wildstar_non_pipelined()),
        ] {
            let id = format!("{name}/{label}");
            let kernel = kernel.clone();
            group.bench_function(&id, |b| {
                b.iter(|| {
                    let ex = Explorer::new(&kernel).memory(mem.clone());
                    std::hint::black_box(ex.explore().expect("search succeeds"))
                })
            });
        }
    }
    group.finish();
}

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_sweep");
    group.sample_size(10);
    // One representative kernel: the MM space has 18 points.
    let (_, kernel) = defacto_kernels::paper_kernels().remove(1);
    group.bench_function("MM/pipelined", |b| {
        b.iter(|| {
            let ex = Explorer::new(&kernel);
            std::hint::black_box(ex.sweep().expect("sweep succeeds"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search, bench_exhaustive);
criterion_main!(benches);
