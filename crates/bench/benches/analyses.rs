//! Criterion benchmark: the compiler analyses — dependence analysis,
//! uniformly generated sets, and the interpreter used as the semantics
//! oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use defacto_analysis::{analyze_dependences_with_bounds, uniform_sets, AccessTable};
use defacto_ir::{Interpreter, Workspace};

fn bench_dependence(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependence_analysis");
    for (name, kernel) in defacto_kernels::paper_kernels() {
        let nest = kernel.perfect_nest().expect("perfect nest");
        let table = AccessTable::from_stmts(nest.innermost_body());
        let vars = nest.vars();
        let bounds: Vec<(i64, i64)> = nest
            .loops()
            .iter()
            .map(|l| (l.lower, l.upper - 1))
            .collect();
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(analyze_dependences_with_bounds(&table, &vars, &bounds)))
        });
        let _ = uniform_sets(&table, &vars);
    }
    group.finish();
}

fn bench_uniform_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniform_sets");
    // Unrolled FIR: a larger body stresses set partitioning.
    let (_, fir) = defacto_kernels::paper_kernels().remove(0);
    let unrolled = defacto_xform::unroll_and_jam(&fir, &[8, 8]).expect("unrolls");
    let nest = unrolled.perfect_nest().expect("perfect nest");
    let table = AccessTable::from_stmts(nest.innermost_body());
    let vars = nest.vars();
    group.bench_function("FIR_8x8", |b| {
        b.iter(|| std::hint::black_box(uniform_sets(&table, &vars)))
    });
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(20);
    let (_, fir) = defacto_kernels::paper_kernels().remove(0);
    let s = defacto_kernels::workload::signal(96, 1);
    let cc = defacto_kernels::workload::signal(32, 2);
    group.bench_function("FIR", |b| {
        b.iter(|| {
            let mut ws = Workspace::for_kernel(&fir);
            ws.set_array("S", &s).expect("set S");
            ws.set_array("C", &cc).expect("set C");
            std::hint::black_box(Interpreter::new(&fir).run(&mut ws).expect("runs"))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dependence,
    bench_uniform_sets,
    bench_interpreter
);
criterion_main!(benches);
