//! Criterion benchmark: behavioral-synthesis estimation throughput —
//! one transform+estimate evaluation per iteration, across unroll sizes.
//!
//! The paper contrasts estimation (seconds) with full synthesis (hours);
//! the estimator's speed is what makes exploring the space feasible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defacto::prelude::*;

fn bench_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate");
    let (_, fir) = defacto_kernels::paper_kernels().remove(0);
    let ex = Explorer::new(&fir);
    for factors in [vec![1i64, 1], vec![4, 4], vec![16, 8], vec![64, 32]] {
        let u = UnrollVector(factors.clone());
        group.bench_with_input(BenchmarkId::new("FIR", format!("{u}")), &u, |b, u| {
            b.iter(|| std::hint::black_box(ex.evaluate(u).expect("evaluates")))
        });
    }
    group.finish();
}

fn bench_transform_only(c: &mut Criterion) {
    use defacto_xform::{transform, TransformOptions};
    let mut group = c.benchmark_group("transform");
    let (_, sobel) = defacto_kernels::paper_kernels().remove(4);
    let opts = TransformOptions::default();
    for factors in [vec![1i64, 1], vec![4, 4]] {
        let u = UnrollVector(factors.clone());
        group.bench_with_input(BenchmarkId::new("SOBEL", format!("{u}")), &u, |b, u| {
            b.iter(|| std::hint::black_box(transform(&sobel, u, &opts).expect("transforms")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimate, bench_transform_only);
criterion_main!(benches);
