//! Criterion benchmark: exhaustive-sweep throughput of the parallel
//! evaluation engine versus the serial baseline.
//!
//! Each iteration builds a fresh `Explorer` so the memo cache starts
//! cold and every design point is really evaluated — the measurement is
//! the engine's fan-out, not cache residency. A separate warm-cache case
//! shows what memoization alone buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defacto::prelude::*;

fn bench_parallel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_sweep");
    group.sample_size(10);
    let (_, kernel) = defacto_kernels::paper_kernels().remove(1); // MM
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("MM/cold", workers), |b| {
            b.iter(|| {
                let ex = Explorer::new(&kernel).threads(workers);
                std::hint::black_box(ex.sweep().expect("sweep succeeds"))
            })
        });
    }
    // Warm cache: the explorer (and hence its engine cache) persists
    // across iterations, so after the first iteration every point hits.
    let ex = Explorer::new(&kernel).threads(8);
    group.bench_function(BenchmarkId::new("MM/warm", 8), |b| {
        b.iter(|| std::hint::black_box(ex.sweep().expect("sweep succeeds")))
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_sweep);
criterion_main!(benches);
