//! Minimal plain-text table rendering for the bench binaries.

/// Render rows as a fixed-width table with a header and a rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a float with fixed precision, rendering infinities readably.
pub fn fnum(v: f64, prec: usize) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "inf".into()
        } else {
            "-inf".into()
        }
    } else {
        format!("{v:.prec$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbbb"));
        assert!(lines[2].ends_with("   2"));
    }

    #[test]
    fn fnum_handles_inf() {
        assert_eq!(fnum(f64::INFINITY, 2), "inf");
        assert_eq!(fnum(1.234, 2), "1.23");
    }
}
