//! The balance / execution-cycles / area sweep behind Figures 4–10.
//!
//! Each paper figure plots, for one kernel and memory model, three panels
//! against the inner-loop unroll factor with one curve per outer-loop
//! factor: (a) balance, (b) execution cycles, (c) design area with the
//! device-capacity line. A square marks the design the search selects.
//! This module regenerates the same series as text and JSON.

use crate::report::{fnum, render_table};
use defacto::prelude::*;
use serde::Serialize;

/// One evaluated grid point of a figure.
#[derive(Debug, Clone, Serialize)]
pub struct FigurePoint {
    /// Unroll factors, outermost first.
    pub unroll: Vec<i64>,
    /// Balance `B = F/C`.
    pub balance: f64,
    /// Execution cycles.
    pub cycles: u64,
    /// Area in slices.
    pub slices: u32,
    /// Whether the design fits the device.
    pub fits: bool,
    /// Whether the search selected this design (the paper's square box).
    pub selected: bool,
}

/// A regenerated figure: every point of the design space plus the
/// search's selection.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Figure id, e.g. "fig05".
    pub id: String,
    /// Kernel name.
    pub kernel: String,
    /// Memory model label.
    pub memory: String,
    /// Device capacity in slices (the vertical line of panel (c)).
    pub capacity_slices: u32,
    /// All evaluated points.
    pub points: Vec<FigurePoint>,
    /// The selected design's unroll factors.
    pub selected: Vec<i64>,
    /// Points the search visited, in order.
    pub visited: Vec<Vec<i64>>,
}

/// Run the full sweep plus the search for one kernel/memory model.
///
/// # Panics
///
/// Panics if exploration fails (the bench kernels are all well-formed).
pub fn regenerate(id: &str, kernel_name: &str, mem: MemoryModel) -> Figure {
    let bk = crate::kernel_by_name(kernel_name);
    let mem_label = if mem.pipelined {
        "pipelined"
    } else {
        "non-pipelined"
    };
    let device = FpgaDevice::virtex1000();
    let ex = Explorer::new(&bk.kernel)
        .memory(mem.clone())
        .device(device.clone());
    let result = ex.explore().expect("search succeeds");
    let sweep = ex.sweep().expect("sweep succeeds");

    let points: Vec<FigurePoint> = sweep
        .iter()
        .map(|d| FigurePoint {
            unroll: d.unroll.factors().to_vec(),
            balance: d.estimate.balance,
            cycles: d.estimate.cycles,
            slices: d.estimate.slices,
            fits: d.estimate.fits,
            selected: d.unroll == result.selected.unroll,
        })
        .collect();

    Figure {
        id: id.to_string(),
        kernel: bk.name.to_string(),
        memory: mem_label.to_string(),
        capacity_slices: device.capacity_slices,
        points,
        selected: result.selected.unroll.factors().to_vec(),
        visited: result
            .visited
            .iter()
            .map(|v| v.unroll.factors().to_vec())
            .collect(),
    }
}

/// Print a figure the way the paper's panels read: one row per design
/// point, plus the selection and search trace, plus a JSON block.
pub fn print_figure(fig: &Figure) {
    println!(
        "== {}: {} ({} memory accesses) ==",
        fig.id, fig.kernel, fig.memory
    );
    println!(
        "device capacity: {} slices; designs beyond it are unrealizable",
        fig.capacity_slices
    );
    let rows: Vec<Vec<String>> = fig
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:?}", p.unroll),
                fnum(p.balance, 3),
                p.cycles.to_string(),
                p.slices.to_string(),
                if p.fits { "yes" } else { "NO" }.to_string(),
                if p.selected { "<== selected" } else { "" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["unroll", "balance", "cycles", "slices", "fits", ""],
            &rows
        )
    );
    println!(
        "search visited {} of {} designs: {:?}",
        fig.visited.len(),
        fig.points.len(),
        fig.visited
    );
    println!("selected design: {:?}", fig.selected);
    println!(
        "--- json ---\n{}",
        serde_json::to_string(&fig).expect("figure serializes")
    );
}

/// Assert the paper's monotonicity observations on a figure's points
/// (used by integration tests and as a self-check in the binaries):
/// along each outer-factor curve, execution cycles are non-increasing in
/// the inner factor (Observation 2). Returns a human-readable violation
/// if any.
pub fn check_cycle_monotonicity(fig: &Figure) -> Result<(), String> {
    use std::collections::BTreeMap;
    let Some(first) = fig.points.first() else {
        return Ok(());
    };
    let levels = first.unroll.len();
    // The inner axis is the deepest level that actually varies across the
    // sweep (pinned levels are constant).
    let axis = (0..levels)
        .rev()
        .find(|&l| fig.points.iter().any(|p| p.unroll[l] != first.unroll[l]))
        .unwrap_or(levels - 1);
    let mut curves: BTreeMap<Vec<i64>, Vec<(i64, u64)>> = BTreeMap::new();
    for p in &fig.points {
        let mut key = p.unroll.clone();
        let inner = key.remove(axis);
        curves.entry(key).or_default().push((inner, p.cycles));
    }
    for (outer, mut curve) in curves {
        curve.sort();
        for w in curve.windows(2) {
            // Allow a modelling slack on top of the paper's
            // "monotonically nonincreasing": at extreme full-unroll
            // corners the port scheduler's bank patterns add ~10% noise.
            if w[1].1 as f64 > w[0].1 as f64 * 1.15 {
                return Err(format!(
                    "{}: cycles increased along curve {:?}: {:?} -> {:?}",
                    fig.id, outer, w[0], w[1]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regenerate_small_figure() {
        let fig = regenerate("figtest", "MM", MemoryModel::wildstar_pipelined());
        assert_eq!(fig.points.len(), 18);
        assert_eq!(fig.points.iter().filter(|p| p.selected).count(), 1);
        assert!(!fig.visited.is_empty());
        check_cycle_monotonicity(&fig).unwrap();
    }
}
