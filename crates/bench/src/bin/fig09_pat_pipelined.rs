//! Regenerates paper Figure 9: balance, execution cycles and area for
//! PAT (pipelined memory accesses).

fn main() {
    let fig = defacto_bench::figures::regenerate(
        "fig09_pat_pipelined",
        "PAT",
        defacto::prelude::MemoryModel::wildstar_pipelined(),
    );
    defacto_bench::figures::print_figure(&fig);
    if let Err(e) = defacto_bench::figures::check_cycle_monotonicity(&fig) {
        eprintln!("monotonicity warning: {e}");
    }
}
