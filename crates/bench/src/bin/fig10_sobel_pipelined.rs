//! Regenerates paper Figure 10: balance, execution cycles and area for
//! SOBEL (pipelined memory accesses).

fn main() {
    let fig = defacto_bench::figures::regenerate(
        "fig10_sobel_pipelined",
        "SOBEL",
        defacto::prelude::MemoryModel::wildstar_pipelined(),
    );
    defacto_bench::figures::print_figure(&fig);
    if let Err(e) = defacto_bench::figures::check_cycle_monotonicity(&fig) {
        eprintln!("monotonicity warning: {e}");
    }
}
