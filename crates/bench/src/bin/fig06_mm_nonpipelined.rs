//! Regenerates paper Figure 6: balance, execution cycles and area for
//! MM (non-pipelined memory accesses).

fn main() {
    let fig = defacto_bench::figures::regenerate(
        "fig06_mm_nonpipelined",
        "MM",
        defacto::prelude::MemoryModel::wildstar_non_pipelined(),
    );
    defacto_bench::figures::print_figure(&fig);
    if let Err(e) = defacto_bench::figures::check_cycle_monotonicity(&fig) {
        eprintln!("monotonicity warning: {e}");
    }
}
