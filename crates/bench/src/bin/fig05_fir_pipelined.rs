//! Regenerates paper Figure 5: balance, execution cycles and area for
//! FIR (pipelined memory accesses).

fn main() {
    let fig = defacto_bench::figures::regenerate(
        "fig05_fir_pipelined",
        "FIR",
        defacto::prelude::MemoryModel::wildstar_pipelined(),
    );
    defacto_bench::figures::print_figure(&fig);
    if let Err(e) = defacto_bench::figures::check_cycle_monotonicity(&fig) {
        eprintln!("monotonicity warning: {e}");
    }
}
