//! Ablation: value of custom data layout (array renaming + memory
//! mapping). Without it every array contends for a single memory.

use defacto::prelude::*;
use defacto_bench::report::{fnum, render_table};

fn main() {
    let mut rows = Vec::new();
    for bk in defacto_bench::kernels() {
        let multi = Explorer::new(&bk.kernel);
        let r = multi.explore().expect("search succeeds");
        let u = r.selected.unroll.clone();
        let single = Explorer::new(&bk.kernel).options(TransformOptions {
            custom_layout: false,
            ..TransformOptions::default()
        });
        let em = multi.evaluate(&u).expect("evaluates").estimate;
        let es = single.evaluate(&u).expect("evaluates").estimate;
        rows.push(vec![
            bk.name.to_string(),
            format!("{u}"),
            em.cycles.to_string(),
            es.cycles.to_string(),
            fnum(es.cycles as f64 / em.cycles as f64, 2),
            fnum(em.balance, 3),
            fnum(es.balance, 3),
        ]);
    }
    println!("== Ablation: custom data layout vs single memory ==");
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "unroll",
                "cycles (layout)",
                "cycles (single)",
                "slowdown",
                "B (layout)",
                "B (single)"
            ],
            &rows
        )
    );
}
