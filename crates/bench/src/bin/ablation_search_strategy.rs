//! Ablation: the balance-guided search against three baselines —
//! exhaustive enumeration, budget-matched random search, and divisor
//! hill climbing.
//!
//! Reports, per kernel and memory model, evaluations spent and how far
//! each strategy's pick is from the true best-performing design.

use defacto::exhaustive::best_performance;
use defacto::prelude::*;
use defacto::strategies::{hill_climb, random_search};
use defacto_bench::report::{fnum, render_table};

fn main() {
    let mut rows = Vec::new();
    for bk in defacto_bench::kernels() {
        for (label, mem) in defacto_bench::memory_models() {
            let ex = Explorer::new(&bk.kernel).memory(mem);
            let (_, space) = ex.analyze().expect("analysis succeeds");
            let guided = ex.explore().expect("search succeeds");
            let sweep = ex.sweep().expect("sweep succeeds");
            let best = best_performance(&sweep).expect("space has fitting designs");

            // Random search gets the same evaluation budget the guided
            // search used; the hill climb starts at the baseline.
            let budget = guided.visited.len().max(1);
            let rand = random_search(&space, 2002, budget, |u| Ok(ex.evaluate(u)?.estimate))
                .expect("random search succeeds");
            let climb = hill_climb(&space, &space.base_vector(), 64, |u| {
                Ok(ex.evaluate(u)?.estimate)
            })
            .expect("hill climb succeeds");

            for (strategy, unroll, cycles, evals) in [
                (
                    "balance-guided",
                    guided.selected.unroll.to_string(),
                    guided.selected.estimate.cycles,
                    guided.visited.len(),
                ),
                (
                    "random (same budget)",
                    rand.selected.unroll.to_string(),
                    rand.selected.estimate.cycles,
                    rand.evaluated.len(),
                ),
                (
                    "hill climb",
                    climb.selected.unroll.to_string(),
                    climb.selected.estimate.cycles,
                    climb.evaluated.len(),
                ),
                (
                    "exhaustive",
                    best.unroll.to_string(),
                    best.estimate.cycles,
                    sweep.len(),
                ),
            ] {
                rows.push(vec![
                    bk.name.to_string(),
                    label.to_string(),
                    strategy.to_string(),
                    unroll,
                    cycles.to_string(),
                    evals.to_string(),
                    fnum(cycles as f64 / best.estimate.cycles as f64, 2),
                ]);
            }
        }
    }
    println!("== Ablation: search strategies ==");
    println!(
        "{}",
        render_table(
            &["kernel", "memory", "strategy", "selected", "cycles", "evals", "vs best"],
            &rows
        )
    );
    println!(
        "The balance-guided search needs no tuning and no luck: it lands within a\n\
         small factor of the exhaustive best with the fewest evaluations, while\n\
         random search at the same budget is seed-dependent and hill climbing\n\
         spends many more evaluations walking the divisor lattice."
    );
}
