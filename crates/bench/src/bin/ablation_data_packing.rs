//! Ablation: small-type packing (paper §4 — "more customized data layouts
//! arise from packing small data types").
//!
//! The u8/i16 kernels (PAT, SOBEL, JAC, DILATE) move narrow elements over
//! 32-bit memories; packing four `u8` (or two `i16`) per word multiplies
//! effective fetch bandwidth.

use defacto::prelude::*;
use defacto_bench::report::{fnum, render_table};
use defacto_synth::SynthesisOptions;

fn main() {
    let mut rows = Vec::new();
    for name in ["PAT", "JAC", "SOBEL", "DILATE", "FIR"] {
        let kernel = defacto_kernels::extended_kernels()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, k)| k)
            .expect("kernel exists");
        let ex = Explorer::new(&kernel);
        let r = ex.explore().expect("search succeeds");
        let u = r.selected.unroll.clone();
        let plain = ex.evaluate(&u).expect("evaluates").estimate;
        let packed = Explorer::new(&kernel)
            .synthesis(SynthesisOptions {
                pack_small_types: true,
                ..SynthesisOptions::default()
            })
            .evaluate(&u)
            .expect("evaluates")
            .estimate;
        rows.push(vec![
            name.to_string(),
            format!("{u}"),
            plain.memory_busy_cycles.to_string(),
            packed.memory_busy_cycles.to_string(),
            plain.cycles.to_string(),
            packed.cycles.to_string(),
            fnum(plain.balance, 3),
            fnum(packed.balance, 3),
        ]);
    }
    println!("== Ablation: small-type packing (4×u8 / 2×i16 per 32-bit word) ==");
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "unroll",
                "mem busy",
                "mem busy (packed)",
                "cycles",
                "cycles (packed)",
                "balance",
                "balance (packed)",
            ],
            &rows
        )
    );
    println!(
        "Packing shares word fetches between neighbouring small elements when they\n\
         occur in the same loop body (PAT's 19-wide string window, SOBEL/DILATE's\n\
         3x3 windows). JAC regresses: its same-word pairs recur across iterations\n\
         (not modeled as shared) while packing forgoes the phase-balanced layout.\n\
         FIR's full-width i32 data is unaffected (a no-op sanity check)."
    );
}
