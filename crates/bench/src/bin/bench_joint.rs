//! Joint multi-axis design-space benchmark.
//!
//! For each of the five paper kernels this harness runs two sweeps per
//! kernel, each through a fresh explorer (cold caches):
//!
//! 1. **classic** — the legacy unroll-only sweep, plus a joint sweep
//!    restricted to the unroll axis. The two must agree bit for bit
//!    (points, order, estimates, winner): the typed multi-axis space is
//!    a strict generalization of the legacy `DesignSpace`;
//! 2. **joint** — the full unroll × interchange × tile × narrowing ×
//!    packing product space. Membership is proven statically from the
//!    kernel's `LegalitySummary`, so the sweep must see **zero**
//!    transform-time legality rejections; the counts of candidates the
//!    summary excluded (`pruned_*`) are what keep the joint sweep
//!    tractable. The sweep is traced and the trace audited against the
//!    space (`audit_joint_trace`): every enumerated point visited
//!    exactly once, nothing outside the space.
//!
//! A third, **guided** pass then searches the same all-axes space with
//! the branch-and-bound and coordinate-descent strategies (fresh
//! explorers, cold caches) and compares them against the exhaustive
//! ground truth: branch-and-bound must select the bit-identical design
//! at a fraction of the tier-1 evaluations; coordinate descent must
//! land within its own reported optimality gap.
//!
//! Output: a human-readable table on stdout and a JSON report (schema
//! `defacto-bench-joint/v2`) written to `--out` (default
//! `BENCH_joint.json`).
//!
//! Flags:
//!
//! - `--smoke` — reduced unroll spaces (outermost loop only) for CI;
//! - `--check` — exit 2 unless, on every kernel, the unroll-only joint
//!   sweep is bit-identical to the classic sweep, the all-axes sweep
//!   had zero transform-time legality rejections, its trace audit is
//!   clean, branch-and-bound selected the exhaustive winner, and
//!   coordinate descent landed within its reported gap; in full mode
//!   the paper-suite aggregate evaluation reduction must also clear the
//!   ≥5× headline;
//! - `--fidelity full|multi|analytic` — evaluation fidelity (default
//!   full);
//! - `--workers N` — evaluation worker threads (default 1);
//! - `--out PATH` — where to write the JSON report.

use defacto::exhaustive::{best_joint_performance, best_performance};
use defacto::prelude::*;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const SCHEMA: &str = "defacto-bench-joint/v2";

/// The ≥5× tier-1 evaluation-reduction headline, gated by `--check` on
/// the paper-suite aggregate of full-space runs.
const REDUCTION_GATE: f64 = 5.0;

#[derive(Serialize)]
struct KernelRow {
    name: String,
    classic_points: u64,
    joint_points: u64,
    pruned_permutations: u64,
    pruned_unroll_perm: u64,
    pruned_tiles: u64,
    pruned_total: u64,
    pruned_fraction: f64,
    classic_ms: f64,
    joint_ms: f64,
    joint_pts_per_sec: f64,
    unroll_only_identical: bool,
    transform_rejections: u64,
    audit_clean: bool,
    classic_best_cycles: u64,
    joint_best_cycles: u64,
    joint_gain_x: f64,
    joint_best_unroll: Vec<i64>,
    joint_best_permutation: Vec<usize>,
    joint_best_tile: Option<(usize, i64)>,
    joint_best_narrow: bool,
    joint_best_pack: bool,
    exhaustive_evaluations: u64,
    guided_evaluations: u64,
    guided_pruned: u64,
    guided_ms: f64,
    guided_identical: bool,
    eval_reduction_x: f64,
    cd_evaluations: u64,
    cd_gap_cycles: Option<u64>,
    cd_within_gap: bool,
}

#[derive(Serialize)]
struct JointReport {
    schema: String,
    mode: String,
    fidelity: String,
    workers: usize,
    kernels: Vec<KernelRow>,
    total_joint_points: u64,
    total_pruned: u64,
    total_transform_rejections: u64,
    all_unroll_only_identical: bool,
    all_audits_clean: bool,
    all_guided_identical: bool,
    all_cd_within_gap: bool,
    paper_exhaustive_evaluations: u64,
    paper_guided_evaluations: u64,
    evaluation_reduction_x: f64,
}

struct Args {
    smoke: bool,
    check: bool,
    fidelity: Fidelity,
    workers: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        check: false,
        fidelity: Fidelity::Full,
        workers: 1,
        out: "BENCH_joint.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--check" => args.check = true,
            "--fidelity" => {
                let v = it.next().expect("--fidelity needs a value");
                args.fidelity = v.parse().expect("--fidelity needs full|multi|analytic");
            }
            "--workers" => {
                let v = it.next().expect("--workers needs a value");
                args.workers = v.parse().expect("--workers needs an integer");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!(
                    "usage: bench_joint [--smoke] [--check] \
                     [--fidelity full|multi|analytic] [--workers N] [--out PATH]"
                );
                std::process::exit(1);
            }
        }
    }
    args
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args = parse_args();
    let mut rows: Vec<KernelRow> = Vec::new();
    let mut failures = 0usize;

    // The five paper kernels are fully permutable and tilable, so a
    // sixth, dependence-constrained wavefront rides along to exercise
    // the legality pruning the joint space exists to prove: its (1, -1)
    // distance pins the nest to the identity permutation and forbids
    // hoisting an inner tile loop.
    let wavefront = parse_kernel(
        "kernel wf { inout A: i32[17][16];
           for i in 0..16 { for j in 0..16 {
             A[i + 1][j] = A[i][j + 1] + 1; } } }",
    )
    .expect("wavefront parses");
    // The wavefront's (1, -1) distance also makes the *outer* jam
    // illegal, so its unroll axis is pinned to the innermost loop in
    // every mode; the interchange and tile axes are what it is here to
    // constrain.
    let cases: Vec<(String, Kernel, Option<Vec<bool>>)> = defacto_bench::kernels()
        .into_iter()
        .map(|b| (b.name.to_string(), b.kernel, None))
        .chain(std::iter::once((
            "WF".to_string(),
            wavefront,
            Some(vec![false, true]),
        )))
        .collect();

    for (name, kernel, levels_override) in &cases {
        let depth = kernel
            .perfect_nest()
            .unwrap_or_else(|| panic!("{name} is not a perfect nest"))
            .depth();
        let smoke_levels = {
            let mut levels = vec![false; depth];
            levels[0] = true;
            levels
        };
        let explorer = || {
            let mut ex = Explorer::new(kernel)
                .threads(args.workers)
                .fidelity(args.fidelity);
            if let Some(levels) = levels_override {
                ex = ex.explore_levels(levels);
            } else if args.smoke {
                ex = ex.explore_levels(&smoke_levels);
            }
            ex
        };

        // Pass 1: the legacy sweep and its degenerate joint twin must be
        // bit-identical — same points, same order, same estimates, same
        // winner.
        let t0 = Instant::now();
        let classic = explorer().sweep().expect("classic sweep");
        let classic_wall = t0.elapsed();
        let unroll_only = explorer()
            .axes(&[Axis::Unroll])
            .joint_sweep()
            .expect("unroll-only joint sweep");
        // Estimate bit-identity is a full-fidelity contract. Under
        // `multi` the classic sweep substitutes synthetic tier-0
        // estimates for the points it prunes (the winner is still the
        // full-fidelity one), so only the coordinates are comparable;
        // under `analytic` every estimate is a model midpoint and only
        // the enumeration itself is checked.
        let mut identical = classic.len() == unroll_only.len();
        if identical {
            for (j, c) in unroll_only.iter().zip(&classic) {
                if !j.point.is_unroll_only()
                    || j.point.unroll_vector() != c.unroll
                    || (args.fidelity == Fidelity::Full && j.estimate != c.estimate)
                {
                    identical = false;
                    break;
                }
            }
        }
        let classic_best = best_performance(&classic).expect("classic winner");
        if identical && args.fidelity != Fidelity::Analytic {
            let uo_best = best_joint_performance(&unroll_only).expect("unroll-only winner");
            identical = uo_best.point.unroll_vector() == classic_best.unroll
                && (args.fidelity != Fidelity::Full || uo_best.estimate == classic_best.estimate);
        }
        if !identical {
            eprintln!(
                "{}: unroll-only joint sweep diverged from the classic sweep",
                name
            );
            failures += 1;
        }

        // Pass 2: the full product space. Membership must imply transform
        // success (joint_sweep errors instead of skipping), and the trace
        // must audit clean against the space.
        let sink = Arc::new(MemorySink::new());
        let joint_ex = explorer().axes(&Axis::ALL).trace(sink.clone());
        let space = joint_ex.joint_space().expect("joint space");
        let pruned = space.pruned_counts().unwrap_or_default();
        let t1 = Instant::now();
        let (joint, rejections) = match joint_ex.joint_sweep() {
            Ok(sweep) => (sweep, 0u64),
            Err(e) => {
                eprintln!("{}: transform-time legality rejection: {e}", name);
                failures += 1;
                (Vec::new(), 1)
            }
        };
        let joint_wall = t1.elapsed();
        let audit = defacto::audit::audit_joint_trace(&sink.events(), &space);
        if !audit.is_clean() {
            eprintln!("{}: joint trace audit failed:\n{audit}", name);
            failures += 1;
        }

        let joint_best = best_joint_performance(&joint);
        let (best_cycles, best_point) = match joint_best {
            Some(b) => (b.estimate.cycles, b.point.clone()),
            None => (0, defacto::JointPoint::baseline(depth)),
        };
        let pruned_total = pruned.permutations + pruned.unroll_perm + pruned.tiles;
        let universe = space.joint_size() + pruned_total;

        // Pass 3: the guided strategies against the exhaustive ground
        // truth, each through a fresh cold explorer so the wall clocks
        // are comparable.
        let t2 = Instant::now();
        let bnb = explorer()
            .axes(&Axis::ALL)
            .joint_explore(StrategyKind::BranchAndBound)
            .expect("branch-and-bound explore");
        let guided_wall = t2.elapsed();
        let guided_identical = match (joint_best, &bnb.selected) {
            (Some(e), Some(g)) => e.point == g.point && e.estimate == g.estimate,
            (None, None) => true,
            _ => false,
        };
        if !guided_identical {
            eprintln!(
                "{}: branch-and-bound selection diverged from the exhaustive winner",
                name
            );
            failures += 1;
        }
        let cd = explorer()
            .axes(&Axis::ALL)
            .joint_explore(StrategyKind::CoordinateDescent)
            .expect("coordinate-descent explore");
        let cd_within_gap = match (joint_best, &cd.selected, cd.gap_cycles) {
            (Some(e), Some(g), Some(gap)) => {
                g.estimate.cycles.saturating_sub(e.estimate.cycles) <= gap
            }
            (None, None, _) => true,
            _ => false,
        };
        if !cd_within_gap {
            eprintln!(
                "{}: coordinate descent landed outside its reported optimality gap",
                name
            );
            failures += 1;
        }
        rows.push(KernelRow {
            name: name.to_string(),
            classic_points: classic.len() as u64,
            joint_points: space.joint_size(),
            pruned_permutations: pruned.permutations,
            pruned_unroll_perm: pruned.unroll_perm,
            pruned_tiles: pruned.tiles,
            pruned_total,
            pruned_fraction: pruned_total as f64 / (universe as f64).max(1.0),
            classic_ms: ms(classic_wall),
            joint_ms: ms(joint_wall),
            joint_pts_per_sec: joint.len() as f64 / joint_wall.as_secs_f64().max(1e-12),
            unroll_only_identical: identical,
            transform_rejections: rejections,
            audit_clean: audit.is_clean(),
            classic_best_cycles: classic_best.estimate.cycles,
            joint_best_cycles: best_cycles,
            joint_gain_x: classic_best.estimate.cycles as f64 / (best_cycles as f64).max(1.0),
            joint_best_unroll: best_point.unroll.clone(),
            joint_best_permutation: best_point.permutation.clone(),
            joint_best_tile: best_point.tile,
            joint_best_narrow: best_point.narrow,
            joint_best_pack: best_point.pack,
            exhaustive_evaluations: joint.len() as u64,
            guided_evaluations: bnb.stats.strategy_visited,
            guided_pruned: bnb.pruned,
            guided_ms: ms(guided_wall),
            guided_identical,
            eval_reduction_x: joint.len() as f64 / (bnb.stats.strategy_visited as f64).max(1.0),
            cd_evaluations: cd.stats.strategy_visited,
            cd_gap_cycles: cd.gap_cycles,
            cd_within_gap,
        });
    }

    // The headline aggregate is over the five paper kernels; the
    // constrained wavefront rides along for the legality axes but is
    // not part of the paper suite.
    let paper = |r: &&KernelRow| r.name != "WF";
    let paper_exhaustive: u64 = rows
        .iter()
        .filter(paper)
        .map(|r| r.exhaustive_evaluations)
        .sum();
    let paper_guided: u64 = rows
        .iter()
        .filter(paper)
        .map(|r| r.guided_evaluations)
        .sum();
    let report = JointReport {
        schema: SCHEMA.to_string(),
        mode: if args.smoke { "smoke" } else { "full" }.to_string(),
        fidelity: args.fidelity.label().to_string(),
        workers: args.workers,
        total_joint_points: rows.iter().map(|r| r.joint_points).sum(),
        total_pruned: rows.iter().map(|r| r.pruned_total).sum(),
        total_transform_rejections: rows.iter().map(|r| r.transform_rejections).sum(),
        all_unroll_only_identical: rows.iter().all(|r| r.unroll_only_identical),
        all_audits_clean: rows.iter().all(|r| r.audit_clean),
        all_guided_identical: rows.iter().all(|r| r.guided_identical),
        all_cd_within_gap: rows.iter().all(|r| r.cd_within_gap),
        paper_exhaustive_evaluations: paper_exhaustive,
        paper_guided_evaluations: paper_guided,
        evaluation_reduction_x: paper_exhaustive as f64 / (paper_guided as f64).max(1.0),
        kernels: rows,
    };

    let table_rows: Vec<Vec<String>> = report
        .kernels
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.classic_points.to_string(),
                r.joint_points.to_string(),
                format!(
                    "{}p+{}u+{}t",
                    r.pruned_permutations, r.pruned_unroll_perm, r.pruned_tiles
                ),
                defacto_bench::report::fnum(r.joint_ms, 1),
                defacto_bench::report::fnum(r.joint_pts_per_sec, 0),
                defacto_bench::report::fnum(r.joint_gain_x, 2),
                format!("{}/{}", r.guided_evaluations, r.exhaustive_evaluations),
                defacto_bench::report::fnum(r.eval_reduction_x, 2),
                defacto_bench::report::fnum(r.guided_ms, 1),
                if r.unroll_only_identical && r.guided_identical {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
                if r.audit_clean { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        defacto_bench::report::render_table(
            &[
                "kernel",
                "classic",
                "joint",
                "pruned",
                "joint ms",
                "pts/s",
                "gain x",
                "bnb/exh",
                "red. x",
                "bnb ms",
                "identical",
                "audit",
            ],
            &table_rows
        )
    );
    println!(
        "{} joint points enumerated, {} candidates statically pruned, {} transform rejections ({} mode, {} fidelity, {} workers)",
        report.total_joint_points,
        report.total_pruned,
        report.total_transform_rejections,
        report.mode,
        report.fidelity,
        report.workers
    );
    println!(
        "guided branch-and-bound: {} of {} paper-suite tier-1 evaluations ({:.2}x reduction), identical {}",
        report.paper_guided_evaluations,
        report.paper_exhaustive_evaluations,
        report.evaluation_reduction_x,
        report.all_guided_identical
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json + "\n").expect("write report");
    println!("wrote {}", args.out);

    // The ≥5× headline only makes sense over the full spaces: smoke
    // mode shrinks the unroll axis until there is little left to prune.
    let mut check_failures = failures;
    if !args.smoke && report.evaluation_reduction_x < REDUCTION_GATE {
        eprintln!(
            "paper-suite evaluation reduction {:.2}x is below the {REDUCTION_GATE}x headline",
            report.evaluation_reduction_x
        );
        check_failures += 1;
    }
    if args.check && check_failures > 0 {
        eprintln!("--check failed: {check_failures} invariant violation(s)");
        std::process::exit(2);
    }
}
