//! Wall-clock benchmark of incremental re-exploration against a warm
//! persistent cache — the edit-to-answer latency a `defacto watch`
//! session delivers.
//!
//! Per paper kernel:
//!
//! 1. a fresh [`IncrementalSession`] explores the kernel cold against an
//!    empty cache directory (the baseline every editor session pays
//!    once);
//! 2. a sequence of *localized, semantics-preserving edits* is replayed
//!    through the warm session — an alpha-rename of every variable and
//!    a declaration reorder, the edits content addressing must see
//!    straight through;
//! 3. each edited revision is also explored cold (a fresh explorer, no
//!    cache) — the edit-to-answer time of a from-scratch toolchain.
//!
//! The headline is the geometric-mean speedup of warm incremental
//! re-exploration over the cold re-run, across kernels, edits and
//! worker counts. Selections must be bit-identical warm vs. cold at
//! every worker count — the cache may never change an answer, only its
//! latency.
//!
//! Output: a table on stdout and a JSON report (schema
//! `defacto-bench-incremental/v1`) written to `--out` (default
//! `BENCH_incremental.json`).
//!
//! Flags:
//!
//! - `--smoke` — first edit only, for CI;
//! - `--check` — exit 2 unless every warm selection and estimate is
//!   bit-identical to its cold counterpart at every worker count, and
//!   the geomean speedup clears 5x;
//! - `--workers LIST` — comma-separated worker counts (default `1,8`);
//! - `--out PATH` — where to write the JSON report.

use defacto::cache::PersistentCache;
use defacto::prelude::*;
use defacto_ir::{canonicalize, Kernel};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const SCHEMA: &str = "defacto-bench-incremental/v1";

#[derive(Serialize)]
struct EditRow {
    edit: String,
    workers: usize,
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
    evaluated: u64,
    persist_hits: u64,
    persist_misses: u64,
    preloaded: u64,
    changed_subtrees: Vec<String>,
    selected_unroll: Vec<i64>,
    selected_cycles: u64,
    selected_slices: u32,
    identical_to_cold: bool,
}

#[derive(Serialize)]
struct KernelReport {
    name: String,
    space: u64,
    first_explore_ms: f64,
    edits: Vec<EditRow>,
}

#[derive(Serialize)]
struct IncrementalReport {
    schema: String,
    mode: String,
    workers: Vec<usize>,
    kernels: Vec<KernelReport>,
    geomean_speedup: f64,
    all_identical: bool,
}

struct Args {
    smoke: bool,
    check: bool,
    workers: Vec<usize>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        check: false,
        workers: vec![1, 8],
        out: "BENCH_incremental.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--check" => args.check = true,
            "--workers" => {
                let v = it.next().expect("--workers needs a value");
                args.workers = v
                    .split(',')
                    .map(|t| t.trim().parse().expect("--workers needs integers"))
                    .collect();
                assert!(
                    !args.workers.is_empty() && args.workers.iter().all(|&w| w >= 1),
                    "--workers needs positive integers"
                );
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!(
                    "usage: bench_incremental [--smoke] [--check] [--workers LIST] [--out PATH]"
                );
                std::process::exit(1);
            }
        }
    }
    args
}

/// The localized edit sequence: each produces a structurally identical
/// kernel under different surface syntax.
fn edits(kernel: &Kernel) -> Vec<(String, Kernel)> {
    let renamed = canonicalize(kernel).kernel;
    let mut arrays = kernel.arrays().to_vec();
    arrays.reverse();
    let reordered = Kernel::new(
        kernel.name(),
        arrays,
        kernel.scalars().to_vec(),
        kernel.body().to_vec(),
    )
    .expect("declaration reorder stays valid");
    vec![
        ("alpha-rename".to_string(), renamed),
        ("reorder-decls".to_string(), reordered),
    ]
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args = parse_args();
    let scratch =
        std::env::temp_dir().join(format!("defacto-bench-incremental-{}", std::process::id()));
    let mut kernels: Vec<KernelReport> = Vec::new();
    let mut mismatches = 0usize;

    for bk in defacto_bench::kernels() {
        let mut report = KernelReport {
            name: bk.name.to_string(),
            space: 0,
            first_explore_ms: 0.0,
            edits: Vec::new(),
        };
        for &w in &args.workers {
            let dir = scratch.join(format!("{}-{w}", bk.name));
            let store = Arc::new(PersistentCache::open(&dir).expect("open cache dir"));
            let mut session = IncrementalSession::new(store).engine(Arc::new(EvalEngine::new(w)));

            let t0 = Instant::now();
            let first = session.explore(&bk.kernel).expect("first explore");
            let first_wall = t0.elapsed();
            if w == args.workers[0] {
                report.space = first.result.space_size;
                report.first_explore_ms = ms(first_wall);
            }

            let mut revisions = edits(&bk.kernel);
            if args.smoke {
                revisions.truncate(1);
            }
            for (label, edited) in revisions {
                // Cold: a fresh toolchain run on the edited revision,
                // no cache anywhere.
                let t1 = Instant::now();
                let cold = Explorer::new(&edited)
                    .threads(w)
                    .explore()
                    .expect("cold explore");
                let cold_wall = t1.elapsed();

                // Warm: the same revision through the live session.
                let t2 = Instant::now();
                let warm = session.explore(&edited).expect("warm explore");
                let warm_wall = t2.elapsed();

                let identical = warm.result.selected.unroll == cold.selected.unroll
                    && warm.result.selected.estimate == cold.selected.estimate;
                if !identical {
                    eprintln!(
                        "{} [{label}] @{w}: warm selects {} ({} cycles) but cold selects {} ({} cycles)",
                        bk.name,
                        warm.result.selected.unroll,
                        warm.result.selected.estimate.cycles,
                        cold.selected.unroll,
                        cold.selected.estimate.cycles,
                    );
                    mismatches += 1;
                }
                report.edits.push(EditRow {
                    edit: label,
                    workers: w,
                    cold_ms: ms(cold_wall),
                    warm_ms: ms(warm_wall),
                    speedup: cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-12),
                    evaluated: warm.result.stats.evaluated,
                    persist_hits: warm.result.stats.persist_hits,
                    persist_misses: warm.result.stats.persist_misses,
                    preloaded: warm.preloaded,
                    changed_subtrees: warm.changed.clone(),
                    selected_unroll: warm.result.selected.unroll.factors().to_vec(),
                    selected_cycles: warm.result.selected.estimate.cycles,
                    selected_slices: warm.result.selected.estimate.slices,
                    identical_to_cold: identical,
                });
            }
            std::fs::remove_dir_all(&dir).ok();
        }
        kernels.push(report);
    }
    std::fs::remove_dir_all(&scratch).ok();

    let headline: Vec<f64> = kernels
        .iter()
        .flat_map(|k| k.edits.iter())
        .map(|e| e.speedup)
        .collect();
    let geomean = if headline.is_empty() {
        0.0
    } else {
        (headline.iter().map(|s| s.max(1e-12).ln()).sum::<f64>() / headline.len() as f64).exp()
    };
    let report = IncrementalReport {
        schema: SCHEMA.to_string(),
        mode: if args.smoke { "smoke" } else { "full" }.to_string(),
        workers: args.workers.clone(),
        geomean_speedup: geomean,
        all_identical: mismatches == 0,
        kernels,
    };

    let table_rows: Vec<Vec<String>> = report
        .kernels
        .iter()
        .flat_map(|k| {
            k.edits.iter().map(|e| {
                vec![
                    k.name.clone(),
                    e.edit.clone(),
                    e.workers.to_string(),
                    defacto_bench::report::fnum(e.cold_ms, 1),
                    defacto_bench::report::fnum(e.warm_ms, 2),
                    defacto_bench::report::fnum(e.speedup, 1),
                    e.evaluated.to_string(),
                    format!("{}/{}", e.persist_hits, e.persist_hits + e.persist_misses),
                    if e.identical_to_cold { "yes" } else { "NO" }.to_string(),
                ]
            })
        })
        .collect();
    println!(
        "{}",
        defacto_bench::report::render_table(
            &["kernel", "edit", "w", "cold ms", "warm ms", "speedup", "eval", "persist", "same",],
            &table_rows
        )
    );
    println!(
        "geomean edit-to-answer speedup: {}x across workers {:?} ({} mode)",
        defacto_bench::report::fnum(report.geomean_speedup, 1),
        report.workers,
        report.mode
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json + "\n").expect("write report");
    println!("wrote {}", args.out);

    if args.check {
        if mismatches > 0 {
            eprintln!("--check failed: {mismatches} warm selection(s) diverged from cold");
            std::process::exit(2);
        }
        if report.geomean_speedup < 5.0 {
            eprintln!(
                "--check failed: geomean speedup {:.2}x is below the 5x bar",
                report.geomean_speedup
            );
            std::process::exit(2);
        }
    }
}
