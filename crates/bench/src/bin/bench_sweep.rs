//! Wall-clock benchmark of incremental design-point evaluation.
//!
//! Sweeps the five paper kernels' design spaces twice per kernel:
//!
//! 1. **from scratch** — every point runs the full transformation
//!    pipeline ([`defacto_xform::transform`]) plus the behavioral
//!    estimator, with no shared state between points;
//! 2. **prepared** — the [`Explorer`] path, where a `PreparedKernel`
//!    hoists point-invariant analysis and the doubling-chain copy cache
//!    reuses unrolled bodies across points.
//!
//! Both paths see the identical point list (the space's iteration
//! order) and the identical platform model, so the wall-clock ratio is
//! the cost of re-deriving point-invariant work per point — the quantity
//! the incremental evaluation path exists to eliminate.
//!
//! A third, *memoized* pass re-runs the prepared sweep on the same
//! explorer: every point answers from the engine's memo cache, which is
//! where `eval_cache_hit_rate` comes from (a cold exhaustive sweep
//! legitimately reports 0 — every point is distinct — so the cold rate
//! said nothing about the cache).
//!
//! Output: a human-readable table on stdout and a JSON report
//! (schema `defacto-bench-sweep/v2`) written to `--out` (default
//! `BENCH_sweep.json`).
//!
//! Flags:
//!
//! - `--smoke`  — reduced spaces (outermost loop only) for CI;
//! - `--check`  — assert the prepared sweep reproduces the from-scratch
//!   estimates bit for bit (exit 2 on any divergence);
//! - `--workers N` — evaluation worker threads for the prepared sweep
//!   (the from-scratch baseline is always serial, matching the
//!   pre-incremental evaluator);
//! - `--out PATH` — where to write the JSON report.

use defacto::prelude::*;
use defacto_synth::{estimate_opts, SynthesisOptions};
use defacto_xform::transform;
use serde::Serialize;
use std::time::Instant;

const SCHEMA: &str = "defacto-bench-sweep/v2";

#[derive(Serialize)]
struct KernelRow {
    name: String,
    points: u64,
    from_scratch_ms: f64,
    prepared_ms: f64,
    memoized_ms: f64,
    points_per_sec: f64,
    eval_cache_hit_rate: f64,
    unroll_reuse_rate: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SweepReport {
    schema: String,
    mode: String,
    workers: usize,
    kernels: Vec<KernelRow>,
    geomean_speedup: f64,
}

struct Args {
    smoke: bool,
    check: bool,
    workers: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        check: false,
        workers: 1,
        out: "BENCH_sweep.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--check" => args.check = true,
            "--workers" => {
                let v = it.next().expect("--workers needs a value");
                args.workers = v.parse().expect("--workers needs an integer");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("usage: bench_sweep [--smoke] [--check] [--workers N] [--out PATH]");
                std::process::exit(1);
            }
        }
    }
    args
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args = parse_args();
    let mem = MemoryModel::wildstar_pipelined();
    let device = FpgaDevice::virtex1000();
    let opts = TransformOptions::default();
    let synthesis = SynthesisOptions::default();

    let mut rows: Vec<KernelRow> = Vec::new();
    let mut mismatches = 0usize;

    for bk in defacto_bench::kernels() {
        let depth = bk
            .kernel
            .perfect_nest()
            .unwrap_or_else(|| panic!("{} is not a perfect nest", bk.name))
            .depth();
        let mut ex = Explorer::new(&bk.kernel).threads(args.workers);
        if args.smoke {
            // Reduced space: explore the outermost loop only.
            let mut levels = vec![false; depth];
            levels[0] = true;
            ex = ex.explore_levels(&levels);
        }
        let (_, space) = ex.analyze().expect("design space");
        let points: Vec<UnrollVector> = space.iter().collect();

        // From-scratch baseline: full pipeline + estimate per point,
        // serial, nothing shared between points.
        let t0 = Instant::now();
        let scratch: Vec<Estimate> = points
            .iter()
            .map(|u| {
                let design = transform(&bk.kernel, u, &opts).expect("scratch transform");
                estimate_opts(&design, &mem, &device, &synthesis)
            })
            .collect();
        let scratch_wall = t0.elapsed();

        // Prepared path: the Explorer's exhaustive sweep.
        let t1 = Instant::now();
        let (sweep, _cold_stats) = ex.sweep_with_stats().expect("prepared sweep");
        let prepared_wall = t1.elapsed();

        // Memoized pass: the same sweep again through the same explorer;
        // every point is a memo-cache hit, so the measured hit rate is
        // the cache's, not an artifact of a duplicate-free point list.
        let t2 = Instant::now();
        let (_, warm_stats) = ex.sweep_with_stats().expect("memoized sweep");
        let memoized_wall = t2.elapsed();

        if args.check {
            assert_eq!(sweep.len(), points.len(), "{}: point count", bk.name);
            for (i, d) in sweep.iter().enumerate() {
                if d.unroll != points[i] || d.estimate != scratch[i] {
                    eprintln!(
                        "{}: divergence at {:?}: prepared {:?} vs from-scratch {:?}",
                        bk.name, points[i], d.estimate, scratch[i]
                    );
                    mismatches += 1;
                }
            }
        }

        let (hits, misses) = ex.prepared_stats().unwrap_or((0, 0));
        let reuse = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        let speedup = scratch_wall.as_secs_f64() / prepared_wall.as_secs_f64().max(1e-12);
        rows.push(KernelRow {
            name: bk.name.to_string(),
            points: points.len() as u64,
            from_scratch_ms: ms(scratch_wall),
            prepared_ms: ms(prepared_wall),
            memoized_ms: ms(memoized_wall),
            points_per_sec: points.len() as f64 / prepared_wall.as_secs_f64().max(1e-12),
            eval_cache_hit_rate: warm_stats.cache_hit_rate(),
            unroll_reuse_rate: reuse,
            speedup,
        });
    }

    let geomean = rows
        .iter()
        .map(|r| r.speedup.ln())
        .sum::<f64>()
        .exp_div(rows.len());

    let report = SweepReport {
        schema: SCHEMA.to_string(),
        mode: if args.smoke { "smoke" } else { "full" }.to_string(),
        workers: args.workers,
        kernels: rows,
        geomean_speedup: geomean,
    };

    let table_rows: Vec<Vec<String>> = report
        .kernels
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.points.to_string(),
                defacto_bench::report::fnum(r.from_scratch_ms, 1),
                defacto_bench::report::fnum(r.prepared_ms, 1),
                defacto_bench::report::fnum(r.memoized_ms, 2),
                defacto_bench::report::fnum(r.points_per_sec, 1),
                defacto_bench::report::fnum(r.eval_cache_hit_rate, 3),
                defacto_bench::report::fnum(r.unroll_reuse_rate, 3),
                defacto_bench::report::fnum(r.speedup, 2),
            ]
        })
        .collect();
    println!(
        "{}",
        defacto_bench::report::render_table(
            &[
                "kernel",
                "points",
                "scratch ms",
                "prepared ms",
                "memo ms",
                "pts/s",
                "eval hit",
                "reuse",
                "speedup",
            ],
            &table_rows
        )
    );
    println!(
        "geomean speedup: {} ({} mode, {} workers)",
        defacto_bench::report::fnum(report.geomean_speedup, 2),
        report.mode,
        report.workers
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json + "\n").expect("write report");
    println!("wrote {}", args.out);

    if mismatches > 0 {
        eprintln!("--check failed: {mismatches} divergent point(s)");
        std::process::exit(2);
    }
}

/// Geometric-mean helper: `exp(sum_of_lns / n)`.
trait ExpDiv {
    fn exp_div(self, n: usize) -> f64;
}
impl ExpDiv for f64 {
    fn exp_div(self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            (self / n as f64).exp()
        }
    }
}
