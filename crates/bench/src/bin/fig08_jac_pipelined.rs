//! Regenerates paper Figure 8: balance, execution cycles and area for
//! JAC (pipelined memory accesses).

fn main() {
    let fig = defacto_bench::figures::regenerate(
        "fig08_jac_pipelined",
        "JAC",
        defacto::prelude::MemoryModel::wildstar_pipelined(),
    );
    defacto_bench::figures::print_figure(&fig);
    if let Err(e) = defacto_bench::figures::check_cycle_monotonicity(&fig) {
        eprintln!("monotonicity warning: {e}");
    }
}
