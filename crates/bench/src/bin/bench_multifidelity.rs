//! Wall-clock benchmark of multi-fidelity design-space exploration.
//!
//! Sweeps the five paper kernels' design spaces three times per kernel,
//! each through a fresh explorer (cold caches):
//!
//! 1. **full** — every point pays the tier-1 transform + behavioral
//!    estimate pipeline (the exhaustive baseline);
//! 2. **multi** — the whole space is ranked by the tier-0 analytic band
//!    first; only points the band cannot rule out are promoted to
//!    tier 1. The selected design must be bit-identical to the full
//!    sweep's (the band provably brackets the full estimate);
//! 3. **analytic** — tier 0 only: the throughput ceiling of the
//!    closed-form model, which is what "effective full-space points/sec
//!    at tier 0" measures.
//!
//! Output: a human-readable table on stdout and a JSON report (schema
//! `defacto-bench-multifidelity/v1`) written to `--out` (default
//! `BENCH_multifidelity.json`).
//!
//! Flags:
//!
//! - `--smoke` — reduced spaces (outermost loop only) for CI;
//! - `--check` — exit 2 unless the multi-fidelity selection matches the
//!   full selection bit for bit on every kernel;
//! - `--workers N` — evaluation worker threads (default 1);
//! - `--out PATH` — where to write the JSON report.

use defacto::exhaustive::best_performance;
use defacto::prelude::*;
use defacto::Fidelity;
use serde::Serialize;
use std::time::Instant;

const SCHEMA: &str = "defacto-bench-multifidelity/v1";

#[derive(Serialize)]
struct KernelRow {
    name: String,
    points: u64,
    full_ms: f64,
    multi_ms: f64,
    analytic_ms: f64,
    full_pts_per_sec: f64,
    tier0_pts_per_sec: f64,
    tier0_throughput_x: f64,
    multi_speedup: f64,
    tier0_evaluated: u64,
    tier0_promoted: u64,
    tier0_pruned: u64,
    pruned_fraction: f64,
    selected_unroll: Vec<i64>,
    selected_cycles: u64,
    selected_slices: u32,
    selected_agree: bool,
}

#[derive(Serialize)]
struct MultiFidelityReport {
    schema: String,
    mode: String,
    workers: usize,
    kernels: Vec<KernelRow>,
    geomean_tier0_throughput_x: f64,
    geomean_multi_speedup: f64,
    all_selected_agree: bool,
}

struct Args {
    smoke: bool,
    check: bool,
    workers: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        check: false,
        workers: 1,
        out: "BENCH_multifidelity.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--check" => args.check = true,
            "--workers" => {
                let v = it.next().expect("--workers needs a value");
                args.workers = v.parse().expect("--workers needs an integer");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!(
                    "usage: bench_multifidelity [--smoke] [--check] [--workers N] [--out PATH]"
                );
                std::process::exit(1);
            }
        }
    }
    args
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args = parse_args();
    let mut rows: Vec<KernelRow> = Vec::new();
    let mut disagreements = 0usize;

    for bk in defacto_bench::kernels() {
        let depth = bk
            .kernel
            .perfect_nest()
            .unwrap_or_else(|| panic!("{} is not a perfect nest", bk.name))
            .depth();
        let smoke_levels = {
            let mut levels = vec![false; depth];
            levels[0] = true;
            levels
        };
        // A fresh explorer per fidelity: every pass starts cold, so the
        // timings compare pipelines, not cache states.
        let explorer = |fidelity: Fidelity| {
            let mut ex = Explorer::new(&bk.kernel)
                .threads(args.workers)
                .fidelity(fidelity);
            if args.smoke {
                ex = ex.explore_levels(&smoke_levels);
            }
            ex
        };

        let t0 = Instant::now();
        let (full, _) = explorer(Fidelity::Full)
            .sweep_with_stats()
            .expect("full sweep");
        let full_wall = t0.elapsed();

        let t1 = Instant::now();
        let (multi, multi_stats) = explorer(Fidelity::Multi)
            .sweep_with_stats()
            .expect("multi sweep");
        let multi_wall = t1.elapsed();

        let t2 = Instant::now();
        let (analytic, analytic_stats) = explorer(Fidelity::Analytic)
            .sweep_with_stats()
            .expect("analytic sweep");
        let analytic_wall = t2.elapsed();

        let points = full.len();
        assert_eq!(points, multi.len(), "{}: multi point count", bk.name);
        assert_eq!(points, analytic.len(), "{}: analytic point count", bk.name);

        let full_best = best_performance(&full).expect("full winner");
        let multi_best = best_performance(&multi).expect("multi winner");
        let agree =
            full_best.unroll == multi_best.unroll && full_best.estimate == multi_best.estimate;
        if !agree {
            eprintln!(
                "{}: selection diverged: full {} ({} cycles) vs multi {} ({} cycles)",
                bk.name,
                full_best.unroll,
                full_best.estimate.cycles,
                multi_best.unroll,
                multi_best.estimate.cycles
            );
            disagreements += 1;
        }

        let full_pts = points as f64 / full_wall.as_secs_f64().max(1e-12);
        let tier0_pts = points as f64 / analytic_wall.as_secs_f64().max(1e-12);
        rows.push(KernelRow {
            name: bk.name.to_string(),
            points: points as u64,
            full_ms: ms(full_wall),
            multi_ms: ms(multi_wall),
            analytic_ms: ms(analytic_wall),
            full_pts_per_sec: full_pts,
            tier0_pts_per_sec: tier0_pts,
            tier0_throughput_x: tier0_pts / full_pts.max(1e-12),
            multi_speedup: full_wall.as_secs_f64() / multi_wall.as_secs_f64().max(1e-12),
            tier0_evaluated: analytic_stats
                .tier0_evaluated
                .max(multi_stats.tier0_evaluated),
            tier0_promoted: multi_stats.tier0_promoted,
            tier0_pruned: multi_stats.tier0_pruned,
            pruned_fraction: multi_stats.tier0_pruned as f64 / (points as f64).max(1.0),
            selected_unroll: full_best.unroll.factors().to_vec(),
            selected_cycles: full_best.estimate.cycles,
            selected_slices: full_best.estimate.slices,
            selected_agree: agree,
        });
    }

    let geomean = |f: &dyn Fn(&KernelRow) -> f64| {
        let n = rows.len();
        if n == 0 {
            return 0.0;
        }
        (rows.iter().map(|r| f(r).max(1e-12).ln()).sum::<f64>() / n as f64).exp()
    };
    let report = MultiFidelityReport {
        schema: SCHEMA.to_string(),
        mode: if args.smoke { "smoke" } else { "full" }.to_string(),
        workers: args.workers,
        geomean_tier0_throughput_x: geomean(&|r| r.tier0_throughput_x),
        geomean_multi_speedup: geomean(&|r| r.multi_speedup),
        all_selected_agree: disagreements == 0,
        kernels: rows,
    };

    let table_rows: Vec<Vec<String>> = report
        .kernels
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.points.to_string(),
                defacto_bench::report::fnum(r.full_ms, 1),
                defacto_bench::report::fnum(r.multi_ms, 1),
                defacto_bench::report::fnum(r.analytic_ms, 2),
                defacto_bench::report::fnum(r.tier0_pts_per_sec, 0),
                defacto_bench::report::fnum(r.tier0_throughput_x, 1),
                format!("{}/{}", r.tier0_pruned, r.points),
                if r.selected_agree { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        defacto_bench::report::render_table(
            &[
                "kernel",
                "points",
                "full ms",
                "multi ms",
                "tier0 ms",
                "tier0 pts/s",
                "tier0 x",
                "pruned",
                "agree",
            ],
            &table_rows
        )
    );
    println!(
        "geomean tier-0 throughput: {}x, multi-fidelity sweep speedup: {}x ({} mode, {} workers)",
        defacto_bench::report::fnum(report.geomean_tier0_throughput_x, 1),
        defacto_bench::report::fnum(report.geomean_multi_speedup, 2),
        report.mode,
        report.workers
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json + "\n").expect("write report");
    println!("wrote {}", args.out);

    if args.check && disagreements > 0 {
        eprintln!("--check failed: {disagreements} kernel(s) selected a different design");
        std::process::exit(2);
    }
}
