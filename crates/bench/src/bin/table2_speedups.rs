//! Regenerates paper Table 2: speedup of the selected design over the
//! no-unrolling baseline, per kernel and memory model.

fn main() {
    let rows = defacto_bench::tables::table2_speedups();
    defacto_bench::tables::print_table2(&rows);
}
