//! Regenerates the paper's search-efficiency claim (§6.3): the search
//! visits only a fraction of a percent of the full design space.

fn main() {
    let rows = defacto_bench::tables::search_stats();
    defacto_bench::tables::print_search_stats(&rows);
}
