//! Regenerates the paper's §6.4 estimate-accuracy study through the
//! place-and-route simulator: cycle counts never change; clocks degrade
//! and area inflates with design size.

fn main() {
    let rows = defacto_bench::tables::estimate_accuracy();
    defacto_bench::tables::print_estimate_accuracy(&rows);
}
