//! Ablation: designer operator bounds (paper §2.3 — "the designer might
//! request a design that uses two multipliers").
//!
//! Sweeps the multiplier budget for the FIR selected design and shows
//! the cycles/area trade-off the bounded schedules realize.

use defacto::prelude::*;
use defacto_bench::report::{fnum, render_table};
use defacto_synth::{estimate_constrained, HwOp, ResourceConstraints};

fn main() {
    let bk = defacto_bench::kernel_by_name("FIR");
    let ex = Explorer::new(&bk.kernel);
    let u = UnrollVector(vec![4, 4]);
    let design = ex.design(&u).expect("transforms");
    let mem = MemoryModel::wildstar_pipelined();
    let dev = FpgaDevice::virtex1000();

    let mut rows = Vec::new();
    for muls in [None, Some(8), Some(4), Some(2), Some(1)] {
        let constraints = match muls {
            None => ResourceConstraints::new(),
            Some(n) => ResourceConstraints::new().with_limit(HwOp::Mul, n),
        };
        let e = estimate_constrained(&design, &mem, &dev, &constraints);
        rows.push(vec![
            muls.map(|n| n.to_string()).unwrap_or_else(|| "free".into()),
            e.cycles.to_string(),
            e.slices.to_string(),
            fnum(e.balance, 3),
            fnum(e.exec_time_us(), 1),
        ]);
    }
    println!("== Ablation: multiplier budget, FIR at unroll {u} ==");
    println!(
        "{}",
        render_table(
            &["multipliers", "cycles", "slices", "balance", "time (µs)"],
            &rows
        )
    );
    println!(
        "Bounding the multipliers serializes the unrolled MACs: fewer slices, more\n\
         cycles — the §2.3 constraint mode a designer uses to hit an area target."
    );
}
