//! Ablation: how much of the win comes from scalar replacement and
//! redundant-write elimination (DESIGN.md §5).
//!
//! For each kernel (pipelined memories), evaluates the search's selected
//! design with (a) everything on, (b) redundant-write elimination off,
//! (c) scalar replacement off entirely.

use defacto::prelude::*;
use defacto_bench::report::{fnum, render_table};

fn main() {
    let mut rows = Vec::new();
    for bk in defacto_bench::kernels() {
        let full = Explorer::new(&bk.kernel);
        let r = full.explore().expect("search succeeds");
        let u = r.selected.unroll.clone();

        let no_rwe = Explorer::new(&bk.kernel).options(TransformOptions {
            redundant_write_elim: false,
            ..TransformOptions::default()
        });
        let no_sr = Explorer::new(&bk.kernel).options(TransformOptions {
            scalar_replacement: false,
            ..TransformOptions::default()
        });
        let e_full = full.evaluate(&u).expect("evaluates").estimate;
        let e_norwe = no_rwe.evaluate(&u).expect("evaluates").estimate;
        let e_nosr = no_sr.evaluate(&u).expect("evaluates").estimate;
        for (tag, e) in [("full", &e_full), ("no-RWE", &e_norwe), ("no-SR", &e_nosr)] {
            rows.push(vec![
                bk.name.to_string(),
                format!("{u}"),
                tag.to_string(),
                e.cycles.to_string(),
                e.bits_from_memory.to_string(),
                e.slices.to_string(),
                fnum(e.balance, 3),
            ]);
        }
    }
    println!("== Ablation: scalar replacement / redundant-write elimination ==");
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "unroll",
                "config",
                "cycles",
                "bits from memory",
                "slices",
                "balance"
            ],
            &rows
        )
    );
}
