//! Ablation: bit-width narrowing (paper §2.4 — FPGAs "benefit from
//! non-standard numeric formats (reduced data widths)").
//!
//! The FIR kernel with value-range annotations on its input arrays is
//! estimated with and without narrowing, across data widths. Narrower
//! data buys smaller multipliers and registers — and sometimes faster
//! designs (1-cycle multipliers below 8 bits).

use defacto::prelude::*;
use defacto_bench::report::{fnum, render_table};

fn annotated_fir(signal_bits: u32, coeff_bits: u32) -> Kernel {
    let s_hi = (1i64 << (signal_bits - 1)) - 1;
    let c_hi = (1i64 << (coeff_bits - 1)) - 1;
    parse_kernel(&format!(
        "kernel fir {{
           in S: i32[96] range {}..{s_hi};
           in C: i32[32] range {}..{c_hi};
           inout D: i32[64];
           for j in 0..64 {{ for i in 0..32 {{
             D[j] = D[j] + S[i + j] * C[i]; }} }}
         }}",
        -s_hi - 1,
        -c_hi - 1,
    ))
    .expect("annotated FIR parses")
}

fn main() {
    let u = UnrollVector(vec![4, 4]);
    let mut rows = Vec::new();
    for (label, sbits, cbits) in [
        ("declared i32", 32, 32),
        ("16-bit data", 16, 16),
        ("12/8-bit data", 12, 8),
        ("10/7-bit data", 10, 7),
        ("8-bit data", 8, 8),
    ] {
        let k = annotated_fir(sbits, cbits);
        let wide = Explorer::new(&k).evaluate(&u).expect("evaluates").estimate;
        let narrow = Explorer::new(&k)
            .bitwidth_narrowing(true)
            .evaluate(&u)
            .expect("evaluates")
            .estimate;
        rows.push(vec![
            label.to_string(),
            wide.slices.to_string(),
            narrow.slices.to_string(),
            fnum(wide.slices as f64 / narrow.slices as f64, 2),
            wide.cycles.to_string(),
            narrow.cycles.to_string(),
        ]);
    }
    println!("== Ablation: bit-width narrowing, FIR at unroll (4,4) ==");
    println!(
        "{}",
        render_table(
            &[
                "data range",
                "slices (declared)",
                "slices (narrowed)",
                "area ratio",
                "cycles (decl)",
                "cycles (narrow)",
            ],
            &rows
        )
    );
    println!(
        "Range annotations let the estimator bind multipliers at the data's true\n\
         width instead of the declared C int — the §2.4 \"reduced data widths\"\n\
         advantage of FPGAs over fixed-width processors."
    );
}
