//! Ablation: §5.4 register-pressure control — scalar-replacement
//! register budgets and tiling of the reuse loop.

use defacto::prelude::*;
use defacto_bench::report::{fnum, render_table};
use defacto_xform::tiling::tile_for_registers;

fn main() {
    let bk = defacto_bench::kernel_by_name("FIR");
    let u = UnrollVector(vec![4, 2]);
    let mut rows = Vec::new();
    for budget in [None, Some(64), Some(32), Some(16), Some(8)] {
        let ex = Explorer::new(&bk.kernel).options(TransformOptions {
            register_budget: budget,
            ..TransformOptions::default()
        });
        let e = ex.evaluate(&u).expect("evaluates").estimate;
        rows.push(vec![
            budget
                .map(|b| b.to_string())
                .unwrap_or_else(|| "none".into()),
            "budget".into(),
            e.registers.to_string(),
            e.cycles.to_string(),
            e.slices.to_string(),
            fnum(e.balance, 3),
        ]);
    }
    // Tiling alternative: strip-mine the tap loop and hoist the tile
    // loop outermost; the C chain shrinks to one tile's footprint.
    for tile in [16, 8, 4] {
        let tiled = tile_for_registers(&bk.kernel, 1, tile).expect("tiling is legal");
        let ex = Explorer::new(&tiled);
        let e = ex
            .evaluate(&UnrollVector(vec![1, 4, 2]))
            .expect("evaluates")
            .estimate;
        rows.push(vec![
            format!("tile={tile}"),
            "tiling".into(),
            e.registers.to_string(),
            e.cycles.to_string(),
            e.slices.to_string(),
            fnum(e.balance, 3),
        ]);
    }
    println!("== Ablation: register-pressure control (§5.4), FIR ==");
    println!(
        "{}",
        render_table(
            &[
                "limit",
                "mechanism",
                "registers",
                "cycles",
                "slices",
                "balance"
            ],
            &rows
        )
    );
}
