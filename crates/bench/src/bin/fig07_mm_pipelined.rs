//! Regenerates paper Figure 7: balance, execution cycles and area for
//! MM (pipelined memory accesses).

fn main() {
    let fig = defacto_bench::figures::regenerate(
        "fig07_mm_pipelined",
        "MM",
        defacto::prelude::MemoryModel::wildstar_pipelined(),
    );
    defacto_bench::figures::print_figure(&fig);
    if let Err(e) = defacto_bench::figures::check_cycle_monotonicity(&fig) {
        eprintln!("monotonicity warning: {e}");
    }
}
