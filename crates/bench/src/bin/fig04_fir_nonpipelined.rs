//! Regenerates paper Figure 4: balance, execution cycles and area for
//! FIR (non-pipelined memory accesses).

fn main() {
    let fig = defacto_bench::figures::regenerate(
        "fig04_fir_nonpipelined",
        "FIR",
        defacto::prelude::MemoryModel::wildstar_non_pipelined(),
    );
    defacto_bench::figures::print_figure(&fig);
    if let Err(e) = defacto_bench::figures::check_cycle_monotonicity(&fig) {
        eprintln!("monotonicity warning: {e}");
    }
}
