//! Beyond the paper's Table 2: the extended kernel suite — the paper's
//! five benchmarks plus the other application classes its introduction
//! names (image correlation, erosion, dilation) — explored end to end
//! with pipelined memories.

use defacto::prelude::*;
use defacto_bench::report::{fnum, render_table};

fn main() {
    let mut rows = Vec::new();
    for (name, kernel) in defacto_kernels::extended_kernels() {
        let ex = Explorer::new(&kernel);
        let (sat, space) = ex.analyze().expect("analysis succeeds");
        let r = ex.explore().expect("search succeeds");
        let depth = r.selected.unroll.factors().len();
        let base = ex
            .evaluate(&UnrollVector::ones(depth))
            .expect("baseline evaluates");
        rows.push(vec![
            name.to_string(),
            format!("{}", sat.u_init),
            space.size().to_string(),
            r.visited.len().to_string(),
            format!("{}", r.selected.unroll),
            r.selected.estimate.cycles.to_string(),
            r.selected.estimate.slices.to_string(),
            fnum(r.selected.estimate.balance, 3),
            fnum(
                base.estimate.cycles as f64 / r.selected.estimate.cycles as f64,
                2,
            ),
        ]);
    }
    println!("== Extended suite (pipelined memories, Virtex-1000) ==");
    println!(
        "{}",
        render_table(
            &[
                "kernel", "U_init", "space", "visited", "selected", "cycles", "slices", "balance",
                "speedup",
            ],
            &rows
        )
    );
}
