//! Regeneration of the paper's tables: speedups (Table 2), search
//! statistics (§6 text: "we search on average only 0.3% of the design
//! space"), and the §6.4 estimate-accuracy study.

use crate::report::{fnum, render_table};
use defacto::prelude::*;
use defacto_synth::place_and_route;
use serde::Serialize;
use std::sync::Arc;

/// One row of the speedup table.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupRow {
    /// Kernel name.
    pub kernel: String,
    /// Selected unroll factors and speedup, non-pipelined memory.
    pub non_pipelined: (Vec<i64>, f64),
    /// Selected unroll factors and speedup, pipelined memory.
    pub pipelined: (Vec<i64>, f64),
}

/// Compute Table 2: speedup of the selected design over the unroll-free
/// baseline (all other transformations applied), for both memory models.
///
/// # Panics
///
/// Panics if exploration fails for a suite kernel.
pub fn table2_speedups() -> Vec<SpeedupRow> {
    crate::kernels()
        .iter()
        .map(|bk| {
            let mut per_model = Vec::new();
            for (_, mem) in crate::memory_models() {
                let ex = Explorer::new(&bk.kernel).memory(mem);
                let r = ex.explore().expect("search succeeds");
                let depth = r.selected.unroll.factors().len();
                let base = ex
                    .evaluate(&UnrollVector::ones(depth))
                    .expect("baseline evaluates");
                let speedup = base.estimate.cycles as f64 / r.selected.estimate.cycles as f64;
                per_model.push((r.selected.unroll.factors().to_vec(), speedup));
            }
            SpeedupRow {
                kernel: bk.name.to_string(),
                pipelined: per_model[0].clone(),
                non_pipelined: per_model[1].clone(),
            }
        })
        .collect()
}

/// Print Table 2 with the paper's published numbers alongside.
pub fn print_table2(rows: &[SpeedupRow]) {
    // Paper Table 2 values for reference.
    let paper: &[(&str, f64, f64)] = &[
        ("FIR", 7.67, 17.26),
        ("MM", 4.55, 13.36),
        ("JAC", 3.87, 5.56),
        ("PAT", 7.53, 34.61),
        ("SOBEL", 4.01, 3.90),
    ];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let p = paper.iter().find(|(n, _, _)| *n == r.kernel);
            vec![
                r.kernel.clone(),
                format!("{:?}", r.non_pipelined.0),
                fnum(r.non_pipelined.1, 2),
                p.map(|(_, np, _)| fnum(*np, 2)).unwrap_or_default(),
                format!("{:?}", r.pipelined.0),
                fnum(r.pipelined.1, 2),
                p.map(|(_, _, pp)| fnum(*pp, 2)).unwrap_or_default(),
            ]
        })
        .collect();
    println!("== Table 2: Speedup on a single FPGA ==");
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "sel (non-pipe)",
                "speedup",
                "paper",
                "sel (pipe)",
                "speedup",
                "paper",
            ],
            &table_rows
        )
    );
    println!(
        "--- json ---\n{}",
        serde_json::to_string(rows).expect("rows serialize")
    );
}

/// One row of the search-statistics table.
#[derive(Debug, Clone, Serialize)]
pub struct SearchStatsRow {
    /// Kernel name.
    pub kernel: String,
    /// Memory model label.
    pub memory: String,
    /// Designs the search evaluated.
    pub visited: usize,
    /// Size of the divisor design space actually synthesizable.
    pub divisor_space: u64,
    /// Size of the paper's nominal space (all integer factors up to each
    /// trip count).
    pub full_space: u64,
    /// `visited / full_space` — comparable to the paper's 0.3% claim.
    pub fraction_full: f64,
    /// Design points the evaluation engine actually evaluated.
    pub evaluated: u64,
    /// Evaluations answered from the memo cache.
    pub cache_hits: u64,
    /// `cache_hits / (evaluated + cache_hits)`.
    pub cache_hit_rate: f64,
    /// Events in the search trace.
    pub trace_events: usize,
    /// Invariant violations the auditor found in the trace (expected 0).
    pub audit_violations: usize,
    /// Lint diagnostics per `DF0xx` code, sorted (front-end rules plus
    /// the platform capacity rule). The paper suite is expected to be
    /// clean.
    pub lint_hits: Vec<(String, usize)>,
}

/// Compute the search statistics across the suite.
///
/// # Panics
///
/// Panics if exploration fails for a suite kernel.
pub fn search_stats() -> Vec<SearchStatsRow> {
    let mut out = Vec::new();
    for bk in crate::kernels() {
        for (label, mem) in crate::memory_models() {
            let sink = Arc::new(MemorySink::new());
            let ex = Explorer::new(&bk.kernel).memory(mem).trace(sink.clone());
            let (sat, space) = ex.analyze().expect("analysis succeeds");
            let r = ex.explore().expect("search succeeds");
            let events = sink.events();
            let audit = audit_search_trace(&events, &space, &sat);
            // The paper counts "all possible unroll factors for each
            // loop": the full integer grid over the explored loops. Fall
            // back to the divisor space if the kernel ever stops
            // normalizing to a perfect nest rather than panicking mid
            // report.
            let full_space: u64 = defacto_xform::normalize_loops(&bk.kernel)
                .ok()
                .and_then(|norm| {
                    let nest = norm.perfect_nest()?;
                    Some(
                        nest.trip_counts()
                            .iter()
                            .zip(&sat.unrollable)
                            .map(|(&t, &on)| if on { t as u64 } else { 1 })
                            .product(),
                    )
                })
                .unwrap_or_else(|| space.size());
            let lint = ex.lint();
            out.push(SearchStatsRow {
                kernel: bk.name.to_string(),
                memory: label.to_string(),
                visited: r.visited.len(),
                divisor_space: space.size(),
                full_space,
                fraction_full: r.visited.len() as f64 / full_space as f64,
                evaluated: r.stats.evaluated,
                cache_hits: r.stats.cache_hits,
                cache_hit_rate: r.stats.cache_hit_rate(),
                trace_events: events.len(),
                audit_violations: audit.violations.len(),
                lint_hits: lint.rule_hits.into_iter().collect(),
            });
        }
    }
    out
}

/// Print the search-statistics table.
pub fn print_search_stats(rows: &[SearchStatsRow]) {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.memory.clone(),
                r.visited.to_string(),
                r.divisor_space.to_string(),
                r.full_space.to_string(),
                format!("{:.2}%", 100.0 * r.fraction_full),
                r.evaluated.to_string(),
                r.cache_hits.to_string(),
                format!("{:.0}%", 100.0 * r.cache_hit_rate),
                r.trace_events.to_string(),
                r.audit_violations.to_string(),
                if r.lint_hits.is_empty() {
                    "clean".to_string()
                } else {
                    r.lint_hits
                        .iter()
                        .map(|(code, n)| format!("{code}:{n}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                },
            ]
        })
        .collect();
    println!("== Search statistics (paper: ~0.3% of the space on average) ==");
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "memory",
                "visited",
                "divisor space",
                "full space",
                "fraction",
                "evaluated",
                "cache hits",
                "hit rate",
                "events",
                "audit",
                "lint",
            ],
            &table_rows
        )
    );
    let avg: f64 = rows.iter().map(|r| r.fraction_full).sum::<f64>() / rows.len() as f64;
    println!("average fraction of the full space: {:.2}%", 100.0 * avg);
    println!(
        "--- json ---\n{}",
        serde_json::to_string(rows).expect("rows serialize")
    );
}

/// One row of the §6.4 estimate-accuracy study.
#[derive(Debug, Clone, Serialize)]
pub struct AccuracyRow {
    /// Kernel name.
    pub kernel: String,
    /// Memory model label.
    pub memory: String,
    /// Which design: "baseline", "selected", or "beyond".
    pub design: String,
    /// Unroll factors.
    pub unroll: Vec<i64>,
    /// Estimated cycles (identical post-P&R, as the paper observed).
    pub cycles: u64,
    /// Estimated slices.
    pub est_slices: u32,
    /// Post-P&R slices.
    pub par_slices: u32,
    /// Achieved clock in ns (target 40).
    pub achieved_clock_ns: f64,
    /// Clock degradation relative to the 40 ns target.
    pub clock_degradation: f64,
}

/// Run the estimate-accuracy study: synthesize baseline, selected, and a
/// larger-than-selected design through the P&R simulator.
///
/// # Panics
///
/// Panics if exploration fails for a suite kernel.
pub fn estimate_accuracy() -> Vec<AccuracyRow> {
    let mut out = Vec::new();
    let dev = FpgaDevice::virtex1000();
    for bk in crate::kernels() {
        for (label, mem) in crate::memory_models() {
            let ex = Explorer::new(&bk.kernel).memory(mem);
            let r = ex.explore().expect("search succeeds");
            let depth = r.selected.unroll.factors().len();
            let base = UnrollVector::ones(depth);
            // A design beyond the selected one: double a factor where the
            // space allows.
            let (_, space) = ex.analyze().expect("analysis succeeds");
            let beyond = space
                .iter()
                .filter(|u| u.product() > r.selected.unroll.product())
                .min_by_key(|u| u.product())
                .unwrap_or_else(|| r.selected.unroll.clone());
            for (tag, u) in [
                ("baseline", base),
                ("selected", r.selected.unroll.clone()),
                ("beyond", beyond),
            ] {
                let est = ex.evaluate(&u).expect("evaluates").estimate;
                let par = place_and_route(&est, &dev, 2002);
                out.push(AccuracyRow {
                    kernel: bk.name.to_string(),
                    memory: label.to_string(),
                    design: tag.to_string(),
                    unroll: u.factors().to_vec(),
                    cycles: est.cycles,
                    est_slices: est.slices,
                    par_slices: par.slices,
                    achieved_clock_ns: par.achieved_clock_ns,
                    clock_degradation: (par.achieved_clock_ns - 40.0) / 40.0,
                });
                assert_eq!(
                    par.cycles, est.cycles,
                    "cycle counts must survive P&R unchanged"
                );
            }
        }
    }
    out
}

/// Print the estimate-accuracy table.
pub fn print_estimate_accuracy(rows: &[AccuracyRow]) {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.memory.clone(),
                r.design.clone(),
                format!("{:?}", r.unroll),
                r.cycles.to_string(),
                r.est_slices.to_string(),
                r.par_slices.to_string(),
                fnum(r.achieved_clock_ns, 1),
                format!("{:+.1}%", 100.0 * r.clock_degradation),
            ]
        })
        .collect();
    println!("== §6.4 estimate accuracy: behavioral estimate vs place-and-route ==");
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "memory",
                "design",
                "unroll",
                "cycles",
                "est slices",
                "P&R slices",
                "clock ns",
                "degradation",
            ],
            &table_rows
        )
    );
    println!(
        "--- json ---\n{}",
        serde_json::to_string(rows).expect("rows serialize")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_rows_have_positive_speedups() {
        let rows = table2_speedups();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.pipelined.1 >= 1.0, "{}: {:?}", r.kernel, r.pipelined);
            assert!(
                r.non_pipelined.1 >= 1.0,
                "{}: {:?}",
                r.kernel,
                r.non_pipelined
            );
        }
    }

    #[test]
    fn search_fraction_is_small() {
        let rows = search_stats();
        let avg: f64 = rows.iter().map(|r| r.fraction_full).sum::<f64>() / rows.len() as f64;
        // The paper reports 0.3%; we stay within the same order.
        assert!(avg < 0.02, "average fraction {avg}");
    }

    #[test]
    fn paper_suite_is_lint_clean() {
        for row in search_stats() {
            assert!(
                row.lint_hits.is_empty(),
                "{} ({}): {:?}",
                row.kernel,
                row.memory,
                row.lint_hits
            );
        }
    }
}
