//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each `fig*`/`table*` binary prints the rows/series the paper reports
//! (plus a machine-readable JSON block), using the helpers here:
//!
//! - [`kernels`] — the five paper kernels with their evaluation
//!   configurations;
//! - [`figures`] — the balance/cycles/area sweep behind Figures 4–10;
//! - [`tables`] — Table 2 (speedups), the search-statistics table and the
//!   §6.4 estimate-accuracy table;
//! - [`report`] — plain-text table printing.

pub mod figures;
pub mod report;
pub mod tables;

use defacto::prelude::*;

/// A kernel in the evaluation suite.
pub struct BenchKernel {
    /// Paper name (FIR, MM, PAT, JAC, SOBEL).
    pub name: &'static str,
    /// The kernel at the paper's size.
    pub kernel: Kernel,
}

/// The five paper kernels.
pub fn kernels() -> Vec<BenchKernel> {
    defacto_kernels::paper_kernels()
        .into_iter()
        .map(|(name, kernel)| BenchKernel { name, kernel })
        .collect()
}

/// Look up one kernel by its paper name.
///
/// # Panics
///
/// Panics when the name is unknown — bench binaries hard-code valid
/// names.
pub fn kernel_by_name(name: &str) -> BenchKernel {
    kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("unknown kernel `{name}`"))
}

/// The two memory models of the paper's evaluation.
pub fn memory_models() -> [(&'static str, MemoryModel); 2] {
    [
        ("pipelined", MemoryModel::wildstar_pipelined()),
        ("non-pipelined", MemoryModel::wildstar_non_pipelined()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_five_kernels() {
        assert_eq!(kernels().len(), 5);
    }

    #[test]
    #[should_panic(expected = "unknown kernel")]
    fn unknown_kernel_panics() {
        kernel_by_name("NOPE");
    }
}
