//! Constant folding and branch simplification.
//!
//! Peeling substitutes constant iteration values into loop bodies; this
//! pass folds the resulting constant arithmetic and resolves
//! `if (0 == 0)`-style guards so the peeled code is as clean as what a
//! human designer (or the paper's code generator) would write.

use crate::error::Result;
use defacto_ir::{BinOp, Expr, Kernel, Loop, Stmt, UnOp};

/// Fold constants and resolve constant branches throughout the kernel.
///
/// # Errors
///
/// Propagates IR validation failures when rebuilding the kernel.
pub fn simplify_kernel(kernel: &Kernel) -> Result<Kernel> {
    Ok(kernel.with_body(simplify_stmts(kernel.body()))?)
}

/// Simplify a statement list, dropping branches with constant-false
/// conditions and loops with zero trip counts.
pub fn simplify_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => out.push(Stmt::Assign {
                lhs: lhs.clone(),
                rhs: simplify_expr(rhs),
            }),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond = simplify_expr(cond);
                match cond {
                    Expr::Int(0) => out.extend(simplify_stmts(else_body)),
                    Expr::Int(_) => out.extend(simplify_stmts(then_body)),
                    cond => out.push(Stmt::If {
                        cond,
                        then_body: simplify_stmts(then_body),
                        else_body: simplify_stmts(else_body),
                    }),
                }
            }
            Stmt::For(l) => {
                if l.trip_count() > 0 {
                    out.push(Stmt::For(Loop {
                        var: l.var.clone(),
                        lower: l.lower,
                        upper: l.upper,
                        step: l.step,
                        body: simplify_stmts(&l.body),
                    }));
                }
            }
            Stmt::Rotate(r) => out.push(Stmt::Rotate(r.clone())),
        }
    }
    out
}

/// Fold constant sub-expressions. Affine subscripts are already canonical
/// and are left untouched.
pub fn simplify_expr(e: &Expr) -> Expr {
    match e {
        Expr::Int(_) | Expr::Scalar(_) | Expr::Load(_) => e.clone(),
        Expr::Unary(op, inner) => fold_unary(*op, simplify_expr(inner)),
        Expr::Binary(op, a, b) => fold_binary(*op, simplify_expr(a), simplify_expr(b)),
        Expr::Select(c, t, f) => {
            let c = simplify_expr(c);
            match c {
                Expr::Int(0) => simplify_expr(f),
                Expr::Int(_) => simplify_expr(t),
                c => Expr::Select(
                    Box::new(c),
                    Box::new(simplify_expr(t)),
                    Box::new(simplify_expr(f)),
                ),
            }
        }
    }
}

/// Rebuild a unary node over an already-simplified operand, folding
/// constants. Shared with the fused peel walks so both paths apply the
/// identical rewrite rules.
pub(crate) fn fold_unary(op: UnOp, inner: Expr) -> Expr {
    match inner {
        Expr::Int(v) => Expr::Int(op.apply(v)),
        inner => Expr::Unary(op, Box::new(inner)),
    }
}

/// Rebuild a binary node over already-simplified operands, folding
/// constants and algebraic identities. Shared with the fused peel walks.
pub(crate) fn fold_binary(op: BinOp, a: Expr, b: Expr) -> Expr {
    match (&a, &b) {
        (Expr::Int(x), Expr::Int(y)) => Expr::Int(op.apply(*x, *y)),
        // Additive/multiplicative identities.
        (Expr::Int(0), _) if op == BinOp::Add => b,
        (_, Expr::Int(0)) if matches!(op, BinOp::Add | BinOp::Sub) => a,
        (Expr::Int(1), _) if op == BinOp::Mul => b,
        (_, Expr::Int(1)) if op == BinOp::Mul => a,
        (Expr::Int(0), _) | (_, Expr::Int(0)) if op == BinOp::Mul => Expr::Int(0),
        // Bitwise-and with a constant zero kills the expression —
        // this is how dead first-iteration guards disappear.
        (Expr::Int(0), _) | (_, Expr::Int(0)) if op == BinOp::And => Expr::Int(0),
        (Expr::Int(0), _) if op == BinOp::Or => b,
        (_, Expr::Int(0)) if op == BinOp::Or => a,
        _ => Expr::bin(op, a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::UnOp as U;

    #[test]
    fn folds_constants() {
        let e = Expr::add(Expr::Int(2), Expr::mul(Expr::Int(3), Expr::Int(4)));
        assert_eq!(simplify_expr(&e), Expr::Int(14));
        let n = Expr::Unary(U::Neg, Box::new(Expr::Int(5)));
        assert_eq!(simplify_expr(&n), Expr::Int(-5));
    }

    #[test]
    fn identities() {
        let x = Expr::scalar("x");
        assert_eq!(simplify_expr(&Expr::add(Expr::Int(0), x.clone())), x);
        assert_eq!(simplify_expr(&Expr::mul(x.clone(), Expr::Int(1))), x);
        assert_eq!(
            simplify_expr(&Expr::mul(x.clone(), Expr::Int(0))),
            Expr::Int(0)
        );
        assert_eq!(
            simplify_expr(&Expr::bin(BinOp::Sub, x.clone(), Expr::Int(0))),
            x
        );
    }

    #[test]
    fn resolves_constant_branches() {
        let taken = Stmt::If {
            cond: Expr::bin(BinOp::Eq, Expr::Int(0), Expr::Int(0)),
            then_body: vec![Stmt::assign(defacto_ir::LValue::scalar("x"), Expr::Int(1))],
            else_body: vec![Stmt::assign(defacto_ir::LValue::scalar("x"), Expr::Int(2))],
        };
        let out = simplify_stmts(std::slice::from_ref(&taken));
        assert_eq!(out.len(), 1);
        match &out[0] {
            Stmt::Assign { rhs, .. } => assert_eq!(*rhs, Expr::Int(1)),
            _ => panic!(),
        }
    }

    #[test]
    fn drops_zero_trip_loops() {
        let l = Stmt::For(Loop::new("i", 4, 4, vec![]));
        assert!(simplify_stmts(std::slice::from_ref(&l)).is_empty());
    }

    #[test]
    fn select_with_constant_condition() {
        let e = Expr::Select(
            Box::new(Expr::Int(1)),
            Box::new(Expr::scalar("a")),
            Box::new(Expr::scalar("b")),
        );
        assert_eq!(simplify_expr(&e), Expr::scalar("a"));
    }
}
