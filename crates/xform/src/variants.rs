//! Prepared kernel variants for joint-space exploration.
//!
//! A joint design point pairs an unroll vector with the non-unroll loop
//! axes — a nest permutation and an optional register tile. The
//! permutation/tile pair selects a *kernel variant*; the unroll vector
//! is then a classic design point of that variant. Exploring the joint
//! space from scratch re-derives the variant (normalize → interchange →
//! tile) and all of its point-invariant analyses for every point, even
//! though a space of thousands of points touches only a handful of
//! variants.
//!
//! [`VariantCache`] hoists that work: each `(permutation, tile)` key is
//! materialized once into a [`PreparedVariant`] — the transformed kernel
//! plus its [`PreparedKernel`] when it prepares — and shared across
//! evaluation workers. [`VariantCache::census`] then prices any joint
//! point's structural counts ([`PointCensus`]) without copying a body or
//! building a DFG: this is the joint-point census the tier-0 joint
//! analytic bands are built on (see `defacto-synth`).

use crate::census::PointCensus;
use crate::error::Result;
use crate::interchange::interchange;
use crate::normalize::normalize_loops;
use crate::pipeline::{TransformOptions, UnrollVector};
use crate::prepared::PreparedKernel;
use crate::tiling::tile_for_registers;
use defacto_ir::Kernel;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The non-unroll loop coordinates selecting one kernel variant: the
/// nest permutation and the optional `(level, tile-size)` register tile.
pub type VariantKey = (Vec<usize>, Option<(usize, i64)>);

/// One materialized kernel variant.
#[derive(Debug)]
pub struct PreparedVariant {
    /// The interchanged/tiled kernel the variant's unroll pipeline runs
    /// on.
    pub kernel: Kernel,
    /// Its point-invariant preparation, when the variant prepares
    /// (a variant that does not — e.g. an imperfect nest after a
    /// transform — falls back to the scratch pipeline per point).
    pub prepared: Option<Arc<PreparedKernel>>,
}

/// A cache of [`PreparedVariant`]s over one source kernel, keyed by
/// `(permutation, tile)`. Internally synchronized; share behind an
/// `Arc` across workers.
#[derive(Debug)]
pub struct VariantCache {
    normalized: Kernel,
    depth: usize,
    variants: Mutex<HashMap<VariantKey, Arc<PreparedVariant>>>,
}

impl VariantCache {
    /// Normalize `kernel` once; variants are derived from the normalized
    /// form exactly like the per-point pipeline derives them.
    ///
    /// # Errors
    ///
    /// Fails when the kernel does not normalize or is not a perfect
    /// nest.
    pub fn new(kernel: &Kernel) -> Result<VariantCache> {
        let normalized = normalize_loops(kernel)?;
        let depth = normalized
            .perfect_nest()
            .ok_or(crate::error::XformError::NotPerfectNest)?
            .depth();
        Ok(VariantCache {
            normalized,
            depth,
            variants: Mutex::new(HashMap::new()),
        })
    }

    /// Nest depth of the normalized source kernel (a tiled variant is
    /// one deeper).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The variant selected by `permutation`/`tile`, materializing (and
    /// caching) it on first use. The identity permutation with no tile
    /// returns the normalized source kernel itself.
    ///
    /// # Errors
    ///
    /// Propagates interchange/tiling failures (illegal order, bad tile).
    pub fn get(
        &self,
        permutation: &[usize],
        tile: Option<(usize, i64)>,
    ) -> Result<Arc<PreparedVariant>> {
        let key: VariantKey = (permutation.to_vec(), tile);
        if let Some(v) = self
            .variants
            .lock()
            .expect("variant cache poisoned")
            .get(&key)
        {
            return Ok(Arc::clone(v));
        }
        // Build outside the lock: variants are pure functions of the
        // key, so a racing duplicate build is wasted work, not a
        // correctness problem — first insert wins.
        let identity = permutation.iter().enumerate().all(|(k, &l)| k == l);
        let mut kernel = self.normalized.clone();
        if !identity {
            kernel = interchange(&kernel, permutation)?;
        }
        if let Some((level, size)) = tile {
            kernel = tile_for_registers(&kernel, level, size)?;
        }
        let prepared = PreparedKernel::prepare(&kernel).ok().map(Arc::new);
        let variant = Arc::new(PreparedVariant { kernel, prepared });
        let mut cache = self.variants.lock().expect("variant cache poisoned");
        Ok(Arc::clone(
            cache.entry(key).or_insert_with(|| Arc::clone(&variant)),
        ))
    }

    /// The joint-point census: exact structural counts of the
    /// interchanged/tiled nest at `unroll`, without materializing any
    /// body copy. Bit-compatible with preparing the variant and calling
    /// [`PreparedKernel::census`] directly.
    ///
    /// # Errors
    ///
    /// Propagates variant construction failures, the preparation error
    /// when the variant does not prepare, and the census' own per-point
    /// errors (illegal factors, broken jam).
    pub fn census(
        &self,
        permutation: &[usize],
        tile: Option<(usize, i64)>,
        unroll: &UnrollVector,
        opts: &TransformOptions,
    ) -> Result<PointCensus> {
        let variant = self.get(permutation, tile)?;
        match &variant.prepared {
            Some(p) => p.census(unroll, opts),
            // Preparation fails deterministically; reproduce its error.
            None => match PreparedKernel::prepare(&variant.kernel) {
                Err(e) => Err(e),
                Ok(p) => p.census(unroll, opts),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn identity_variant_is_the_normalized_kernel() {
        let k = parse_kernel(FIR).unwrap();
        let cache = VariantCache::new(&k).unwrap();
        assert_eq!(cache.depth(), 2);
        let v = cache.get(&[0, 1], None).unwrap();
        assert_eq!(v.kernel, normalize_loops(&k).unwrap());
        assert!(v.prepared.is_some());
    }

    #[test]
    fn variants_are_cached_and_shared() {
        let k = parse_kernel(FIR).unwrap();
        let cache = VariantCache::new(&k).unwrap();
        let a = cache.get(&[1, 0], None).unwrap();
        let b = cache.get(&[1, 0], None).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            a.kernel,
            interchange(&normalize_loops(&k).unwrap(), &[1, 0]).unwrap()
        );
    }

    #[test]
    fn census_matches_direct_preparation() {
        let k = parse_kernel(FIR).unwrap();
        let cache = VariantCache::new(&k).unwrap();
        let opts = TransformOptions::default();
        // Interchanged variant at a real unroll point.
        let u = UnrollVector(vec![4, 2]);
        let via_cache = cache.census(&[1, 0], None, &u, &opts).unwrap();
        let direct_kernel = interchange(&normalize_loops(&k).unwrap(), &[1, 0]).unwrap();
        let direct = PreparedKernel::prepare(&direct_kernel)
            .unwrap()
            .census(&u, &opts)
            .unwrap();
        assert_eq!(via_cache, direct);
        // Tiled variant is one level deeper; census at all-ones unroll.
        let ones = UnrollVector::ones(3);
        let tiled = cache.census(&[0, 1], Some((1, 8)), &ones, &opts).unwrap();
        assert_eq!(tiled.trips.len(), 3);
    }

    #[test]
    fn illegal_interchange_propagates() {
        let k = parse_kernel(
            "kernel wf { inout A: i32[9][10];
               for i in 1..9 { for j in 0..8 {
                 A[i][j] = A[i - 1][j + 1] + 1; } } }",
        )
        .unwrap();
        let cache = VariantCache::new(&k).unwrap();
        assert!(cache.get(&[1, 0], None).is_err());
    }
}
