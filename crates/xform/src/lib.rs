//! Loop and data transformations for DEFACTO-style design space
//! exploration.
//!
//! This crate implements the code transformations of So, Hall & Diniz
//! (PLDI 2002), §4:
//!
//! - [`normalize`] — loop normalization (zero lower bound, unit step);
//! - [`unroll`] — unroll-and-jam with a dependence-based legality check;
//! - [`scalar`] — scalar replacement with redundant-write elimination and
//!   reuse exploited across *all* loops of the nest (register chains with
//!   `rotate`, rolling stencil windows, hoisted/sunk accumulators), plus
//!   loop-invariant code motion;
//! - [`interchange`] — loop interchange with a dependence-order
//!   legality check;
//! - [`peel`] — loop peeling, turning the conditional first-iteration
//!   register loads emitted by scalar replacement into genuinely peeled
//!   iterations (the form the paper synthesizes);
//! - [`simplify`] — constant folding used by peeling;
//! - [`tiling`] — strip-mining/tiling for register-pressure control
//!   (paper §5.4);
//! - [`layout`] — custom data layout: array renaming onto virtual
//!   memories and virtual→physical memory binding;
//! - [`pipeline`] — the driver that applies the whole sequence for a given
//!   unroll-factor vector and packages the result for behavioral-synthesis
//!   estimation.
//!
//! Every transformation preserves kernel semantics; the test suites verify
//! this by executing original and transformed kernels on identical inputs
//! through the `defacto-ir` reference interpreter.

pub mod census;
pub mod error;
pub mod interchange;
pub mod layout;
pub mod normalize;
pub mod peel;
pub mod pipeline;
pub mod prepared;
pub mod scalar;
pub mod simplify;
pub mod tiling;
pub mod unroll;
pub mod variants;

pub use census::{AccumulatorCensus, PointCensus, RegisterClass, Traffic, TrafficKind};
pub use error::{JamViolation, Result, TileError, VectorError, XformError};
pub use interchange::{interchange, interchange_is_legal};
pub use layout::{assign_memories, MemoryBinding};
pub use normalize::normalize_loops;
pub use peel::peel_first_iterations;
pub use pipeline::{transform, TransformOptions, TransformedDesign, UnrollVector};
pub use prepared::PreparedKernel;
pub use scalar::{scalar_replace, ScalarReplacementInfo};
pub use simplify::simplify_kernel;
pub use tiling::strip_mine;
pub use unroll::{carried_scalars, unroll_and_jam, unroll_is_legal};
pub use variants::{PreparedVariant, VariantCache, VariantKey};
