//! Loop interchange / nest permutation.
//!
//! Permuting the loops of a perfect nest changes which reuse is carried
//! by which level — the enabling step for register-pressure tiling
//! (paper §5.4) and a classic lever in the paper's transformation domain.
//!
//! **Legality.** The dependence analysis normalizes every dependence so
//! its realizable distance instances are lexicographically positive in
//! the original loop order. Permuting components of an instance preserves
//! its lexicographic sign as long as the *relative order of the
//! components that can be non-zero* is unchanged — each instance's first
//! non-zero component stays first. [`interchange`] therefore permits a
//! permutation iff, for every ordering-constraining dependence, the
//! may-be-nonzero positions of its distance vector appear in the same
//! relative order before and after. (`Exact(0)` components may move
//! freely; `Any`/`Unknown` components are handled soundly because their
//! instance sets were lex-positive to begin with.)

use crate::error::{JamViolation, Result, VectorError, XformError};
use defacto_analysis::legality;
use defacto_analysis::{analyze_dependences_with_bounds, AccessTable, DependenceGraph};
use defacto_ir::{Kernel, Loop, Stmt};

/// Check interchange legality against a dependence graph and the body's
/// carried-scalar set.
///
/// `order[k]` is the original level placed at position `k`. A delegating
/// assertion over `defacto_analysis::legality::permutation_violation` —
/// the same predicate that enumerates `LegalitySummary`'s legal
/// permutations, so space membership and this gate can never disagree.
/// A non-empty carried set pins the nest to the identity order: the
/// scalar chain threads the iterations in sequence order, and any
/// permutation re-threads it through different values.
pub fn interchange_is_legal(
    deps: &DependenceGraph,
    carried: &[String],
    order: &[usize],
) -> std::result::Result<(), JamViolation> {
    match legality::permutation_violation(deps, carried, order) {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

/// Permute the loops of a normalized perfect nest: `order[k]` names the
/// original level that becomes position `k` (outermost = 0).
///
/// # Errors
///
/// Fails when the body is not a perfect nest, `order` is not a
/// permutation of the levels, or a dependence would be reordered.
///
/// # Example
///
/// ```
/// use defacto_xform::interchange;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = defacto_ir::parse_kernel(
///     "kernel t { in A: i32[8][8]; out B: i32[8][8];
///        for i in 0..8 { for j in 0..8 { B[i][j] = A[i][j]; } } }",
/// )?;
/// let swapped = interchange(&k, &[1, 0])?;
/// assert_eq!(swapped.perfect_nest().unwrap().vars(), vec!["j", "i"]);
/// # Ok(())
/// # }
/// ```
pub fn interchange(kernel: &Kernel, order: &[usize]) -> Result<Kernel> {
    let nest = kernel.perfect_nest().ok_or(XformError::NotPerfectNest)?;
    let depth = nest.depth();
    let mut seen = vec![false; depth];
    if order.len() != depth
        || order.iter().any(|&l| {
            if l >= depth || seen[l] {
                true
            } else {
                seen[l] = true;
                false
            }
        })
    {
        return Err(XformError::BadUnrollVector(VectorError::NotAPermutation {
            order: order.to_vec(),
            depth,
        }));
    }

    let table = AccessTable::from_stmts(nest.innermost_body());
    let vars = nest.vars();
    let bounds: Vec<(i64, i64)> = nest
        .loops()
        .iter()
        .map(|l| (l.lower, l.upper - 1))
        .collect();
    let deps = analyze_dependences_with_bounds(&table, &vars, &bounds);
    let carried = legality::carried_scalars(nest.innermost_body(), &vars);
    interchange_is_legal(&deps, &carried, order).map_err(XformError::IllegalJam)?;

    let mut stmts = nest.innermost_body().to_vec();
    for &orig_level in order.iter().rev() {
        let l = nest.loop_at(orig_level);
        stmts = vec![Stmt::For(Loop {
            var: l.var.clone(),
            lower: l.lower,
            upper: l.upper,
            step: l.step,
            body: stmts,
        })];
    }
    Ok(kernel.with_body(stmts)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::{parse_kernel, run_with_inputs};

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn fir_interchange_is_legal_and_preserves_semantics() {
        let k = parse_kernel(FIR).unwrap();
        let x = interchange(&k, &[1, 0]).unwrap();
        assert_eq!(x.perfect_nest().unwrap().vars(), vec!["i", "j"]);
        let s: Vec<i64> = (0..96).map(|v| v % 17 - 8).collect();
        let c: Vec<i64> = (0..32).map(|v| v % 5 - 2).collect();
        let (w0, _) = run_with_inputs(&k, &[("S", s.clone()), ("C", c.clone())]).unwrap();
        let (w1, _) = run_with_inputs(&x, &[("S", s), ("C", c)]).unwrap();
        assert_eq!(w0.array("D"), w1.array("D"));
    }

    #[test]
    fn matmul_full_permutation_group() {
        let mm = parse_kernel(
            "kernel mm { in A: i32[8][8]; in B: i32[8][8]; inout C: i32[8][8];
               for i in 0..8 { for j in 0..8 { for k in 0..8 {
                 C[i][j] = C[i][j] + A[i][k] * B[k][j]; } } } }",
        )
        .unwrap();
        let a: Vec<i64> = (0..64).map(|v| v % 7).collect();
        let b: Vec<i64> = (0..64).map(|v| v % 9 - 4).collect();
        let (w0, _) = run_with_inputs(&mm, &[("A", a.clone()), ("B", b.clone())]).unwrap();
        // All six orders of a matrix multiply are legal (the only
        // constraining dependence is the C accumulator, carried by k
        // alone).
        for order in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let x = interchange(&mm, &order).unwrap();
            let (w1, _) = run_with_inputs(&x, &[("A", a.clone()), ("B", b.clone())]).unwrap();
            assert_eq!(w0.array("C"), w1.array("C"), "order {order:?}");
        }
    }

    #[test]
    fn wavefront_interchange_rejected() {
        // (1, -1) dependence: interchange would reverse it.
        let k = parse_kernel(
            "kernel wf { inout A: i32[9][10];
               for i in 0..8 { for j in 1..9 {
                 A[i + 1][j - 1] = A[i][j] + 1; } } }",
        )
        .unwrap();
        let k = crate::normalize_loops(&k).unwrap();
        let err = interchange(&k, &[1, 0]).unwrap_err();
        assert!(matches!(err, XformError::IllegalJam(_)), "{err:?}");
    }

    #[test]
    fn carried_scalar_chain_pins_the_order() {
        // No array dependence constrains the nest, but the rotate chain
        // threads every iteration in sequence order; interchanging it
        // diverged semantically before the fuzzer's legality oracle
        // forced the scalar check into permutation legality.
        let k = parse_kernel(
            "kernel rc { in A: i32[4][8]; out B: i32[4][8]; var r0: i32; var r1: i32;
               for i in 0..4 { for j in 0..8 {
                 r0 = A[i][j]; rotate(r0, r1); B[i][j] = r0; } } }",
        )
        .unwrap();
        let err = interchange(&k, &[1, 0]).unwrap_err();
        assert!(
            matches!(
                err,
                XformError::IllegalJam(JamViolation::ScalarOrder { .. })
            ),
            "{err:?}"
        );
        // The identity order stays fine.
        assert!(interchange(&k, &[0, 1]).is_ok());
    }

    #[test]
    fn invalid_orders_rejected() {
        let k = parse_kernel(FIR).unwrap();
        assert!(interchange(&k, &[0, 0]).is_err());
        assert!(interchange(&k, &[0]).is_err());
        assert!(interchange(&k, &[0, 2]).is_err());
    }

    #[test]
    fn identity_permutation_is_noop() {
        let k = parse_kernel(FIR).unwrap();
        assert_eq!(interchange(&k, &[0, 1]).unwrap(), k);
    }

    #[test]
    fn interchanged_kernel_explores_differently() {
        // After interchange, the reuse structure flips: C's chain follows
        // the now-inner j loop. Both orders must still transform and
        // preserve semantics through the full pipeline.
        use crate::{transform, TransformOptions, UnrollVector};
        let k = parse_kernel(FIR).unwrap();
        let x = interchange(&k, &[1, 0]).unwrap();
        let s: Vec<i64> = (0..96).map(|v| v % 11).collect();
        let c: Vec<i64> = (0..32).map(|v| v % 3).collect();
        let (w0, _) = run_with_inputs(&k, &[("S", s.clone()), ("C", c.clone())]).unwrap();
        let d = transform(&x, &UnrollVector(vec![2, 2]), &TransformOptions::default()).unwrap();
        let (w1, _) = run_with_inputs(&d.kernel, &[("S", s), ("C", c)]).unwrap();
        assert_eq!(w0.array("D"), w1.array("D"));
    }
}
