//! The transformation pipeline: one call takes a source kernel and an
//! unroll-factor vector to a synthesis-ready design.
//!
//! Order of application (paper Figure 3):
//!
//! 1. loop normalization;
//! 2. unroll-and-jam with the candidate factors;
//! 3. scalar replacement + loop-invariant code motion + redundant-write
//!    elimination (with the §5.4 register budget);
//! 4. custom data layout (array renaming + memory mapping) — computed
//!    before peeling, while every access still carries its full
//!    signature;
//! 5. loop peeling + constant folding, producing the uniform steady-state
//!    bodies behavioral synthesis schedules.

use crate::error::{Result, XformError};
use crate::layout::{assign_memories, MemoryBinding};
use crate::normalize::normalize_loops;
use crate::peel::peel_first_iterations;
use crate::scalar::{scalar_replace, ScalarOptions, ScalarReplacementInfo};
use crate::simplify::simplify_kernel;
use crate::unroll::unroll_and_jam;
use defacto_ir::Kernel;
use std::fmt;

/// A vector of unroll factors, outermost loop first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UnrollVector(pub Vec<i64>);

impl UnrollVector {
    /// The all-ones vector (no unrolling) for an `n`-deep nest.
    pub fn ones(n: usize) -> Self {
        UnrollVector(vec![1; n])
    }

    /// Product of all factors — `P(U)` in the paper.
    pub fn product(&self) -> i64 {
        self.0.iter().product()
    }

    /// Factors as a slice.
    pub fn factors(&self) -> &[i64] {
        &self.0
    }

    /// Component-wise `self ≤ other`.
    pub fn le(&self, other: &UnrollVector) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

impl fmt::Display for UnrollVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Options controlling the transformation pipeline; the defaults enable
/// everything the paper's system applies, targeting 4 external memories.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransformOptions {
    /// Apply scalar replacement (step 3). Disabled for the ablation.
    pub scalar_replacement: bool,
    /// Eliminate redundant writes on output dependences.
    pub redundant_write_elim: bool,
    /// Apply custom data layout; when false, all arrays share memory 0.
    pub custom_layout: bool,
    /// Register budget for carried reuse (§5.4).
    pub register_budget: Option<usize>,
    /// Peel first iterations instead of leaving conditional loads.
    pub peel: bool,
    /// Number of external memories of the target board.
    pub num_memories: usize,
    /// Run the IR verifier ([`defacto_ir::verify`]) on the output of every
    /// pipeline stage, failing with [`XformError::Verify`] on the first
    /// stage that emits structurally invalid IR. Off by default: passes
    /// are trusted in production runs and the sweep is hot.
    pub verify_each_pass: bool,
}

impl Default for TransformOptions {
    fn default() -> Self {
        TransformOptions {
            scalar_replacement: true,
            redundant_write_elim: true,
            custom_layout: true,
            register_budget: None,
            peel: true,
            num_memories: 4,
            verify_each_pass: false,
        }
    }
}

/// A synthesis-ready transformed design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformedDesign {
    /// The transformed kernel (interpretable, semantics-equal to the
    /// source).
    pub kernel: Kernel,
    /// The unroll factors that produced it.
    pub unroll: UnrollVector,
    /// Scalar-replacement statistics (register counts etc.).
    pub info: ScalarReplacementInfo,
    /// The memory binding used by the scheduler.
    pub binding: MemoryBinding,
}

/// Run the full transformation pipeline.
///
/// # Errors
///
/// Propagates failures from any stage (imperfect nest, bad unroll vector,
/// illegal jam, IR validation).
///
/// # Example
///
/// ```
/// use defacto_xform::{transform, TransformOptions, UnrollVector};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fir = defacto_ir::parse_kernel(
///     "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
///        for j in 0..64 { for i in 0..32 {
///          D[j] = D[j] + S[i + j] * C[i]; } } }",
/// )?;
/// let design = transform(&fir, &UnrollVector(vec![2, 2]), &TransformOptions::default())?;
/// assert!(design.info.total_registers() > 0);
/// # Ok(())
/// # }
/// ```
pub fn transform(
    kernel: &Kernel,
    unroll: &UnrollVector,
    opts: &TransformOptions,
) -> Result<TransformedDesign> {
    let checkpoint = |stage: &'static str, k: &Kernel| -> Result<()> {
        if !opts.verify_each_pass {
            return Ok(());
        }
        let diagnostics = defacto_ir::verify(k);
        if diagnostics.is_empty() {
            Ok(())
        } else {
            Err(XformError::Verify { stage, diagnostics })
        }
    };

    let normalized = normalize_loops(kernel)?;
    checkpoint("loop normalization", &normalized)?;
    let unrolled = unroll_and_jam(&normalized, unroll.factors())?;
    checkpoint("unroll-and-jam", &unrolled)?;

    let (replaced, info) = if opts.scalar_replacement {
        scalar_replace(
            &unrolled,
            &ScalarOptions {
                redundant_write_elim: opts.redundant_write_elim,
                register_budget: opts.register_budget,
            },
        )?
    } else {
        (unrolled, ScalarReplacementInfo::default())
    };
    checkpoint("scalar replacement", &replaced)?;

    // Layout before peeling (see module docs).
    let binding = if opts.custom_layout {
        assign_memories(&replaced, opts.num_memories)
    } else {
        assign_memories(&replaced, 1)
    };

    let final_kernel = if opts.peel {
        peel_first_iterations(&replaced)?
    } else {
        simplify_kernel(&replaced)?
    };
    checkpoint(
        if opts.peel {
            "loop peeling"
        } else {
            "simplify"
        },
        &final_kernel,
    )?;

    Ok(TransformedDesign {
        kernel: final_kernel,
        unroll: unroll.clone(),
        info,
        binding,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::{parse_kernel, run_with_inputs, Stmt};

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    fn fir_inputs() -> Vec<(&'static str, Vec<i64>)> {
        vec![
            ("S", (0..96).map(|x| (x * 7 % 23) - 11).collect()),
            ("C", (0..32).map(|x| (x * 5 % 17) - 8).collect()),
        ]
    }

    #[test]
    fn full_pipeline_preserves_semantics() {
        let k = parse_kernel(FIR).unwrap();
        let inputs = fir_inputs();
        let (w0, _) = run_with_inputs(&k, &inputs).unwrap();
        for factors in [vec![1, 1], vec![2, 2], vec![8, 4], vec![4, 16]] {
            let d = transform(
                &k,
                &UnrollVector(factors.clone()),
                &TransformOptions::default(),
            )
            .unwrap();
            let (w1, _) = run_with_inputs(&d.kernel, &inputs).unwrap();
            assert_eq!(w0.array("D"), w1.array("D"), "factors {factors:?}");
        }
    }

    #[test]
    fn peeled_design_has_no_branches() {
        let k = parse_kernel(FIR).unwrap();
        let d = transform(&k, &UnrollVector(vec![2, 2]), &TransformOptions::default()).unwrap();
        fn has_if(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::If { .. } => true,
                Stmt::For(l) => has_if(&l.body),
                _ => false,
            })
        }
        assert!(!has_if(d.kernel.body()), "{}", d.kernel);
    }

    #[test]
    fn options_toggle_stages() {
        let k = parse_kernel(FIR).unwrap();
        let inputs = fir_inputs();
        let (w0, s0) = run_with_inputs(&k, &inputs).unwrap();
        let no_sr = TransformOptions {
            scalar_replacement: false,
            ..TransformOptions::default()
        };
        let d = transform(&k, &UnrollVector(vec![2, 2]), &no_sr).unwrap();
        let (w1, s1) = run_with_inputs(&d.kernel, &inputs).unwrap();
        assert_eq!(w0.array("D"), w1.array("D"));
        // Without scalar replacement the memory traffic is unchanged.
        assert_eq!(s0.memory_accesses(), s1.memory_accesses());
        assert_eq!(d.info.total_registers(), 0);
    }

    #[test]
    fn verify_each_pass_is_clean_on_the_default_pipeline() {
        let k = parse_kernel(FIR).unwrap();
        let opts = TransformOptions {
            verify_each_pass: true,
            ..TransformOptions::default()
        };
        for factors in [vec![1, 1], vec![2, 2], vec![8, 4]] {
            transform(&k, &UnrollVector(factors), &opts).unwrap();
        }
    }

    #[test]
    fn unroll_vector_helpers() {
        let u = UnrollVector(vec![2, 4]);
        assert_eq!(u.product(), 8);
        assert_eq!(u.to_string(), "(2,4)");
        assert!(UnrollVector::ones(2).le(&u));
        assert!(!u.le(&UnrollVector::ones(2)));
        assert!(!u.le(&UnrollVector(vec![4])));
    }
}
