//! Tier-0 design-point census: exact structural counts for an unroll
//! vector, computed without materializing any body copy.
//!
//! [`PreparedKernel::census`] replays the *planning* half of scalar
//! replacement — grouping, reuse classification, the §5.4 register
//! budget — against the analytically jammed uniform sets, and records
//! what the full pipeline *would* build: how many registers of which
//! width, which memory-traffic classes remain (and when each executes),
//! which guard/rotate statements the body carries, and which loop levels
//! peeling will split. It never copies the body, never rewrites a
//! statement and never builds a DFG, so it costs microseconds per point
//! instead of milliseconds.
//!
//! The counts are **exact mirrors** of the decisions in
//! [`crate::scalar`], not approximations: the tier-0 analytic estimator
//! (`defacto_synth::analytic`) prices them into a cost band whose
//! soundness rests on this census matching the real planner decision for
//! decision. `PointCensus::reuse_registers`/`temp_registers`/`chains`
//! must equal the [`crate::ScalarReplacementInfo`] of the materialized
//! design bit for bit; tests enforce this across the paper kernels'
//! design spaces.

use crate::error::Result;
use crate::pipeline::{TransformOptions, UnrollVector};
use crate::prepared::PreparedKernel;
use crate::unroll::offset_tuples;
use defacto_analysis::{classify_set_bounded, jammed_uniform_sets, ReuseStrategy, UniformSet};
use defacto_ir::{ArrayAccess, BinOp, Expr, Stmt};
use std::collections::{HashMap, HashSet};

/// When one memory-traffic class executes, relative to the steady nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrafficKind {
    /// Once per innermost (jammed) body.
    Body,
    /// Once per iteration of the loop at `level` (hoisted load / sunk
    /// store headers).
    AtLevel(usize),
    /// Once before the whole nest (fully invariant loads).
    Top,
    /// In the innermost body but guarded by `var == 0` at each listed
    /// level (chain/window first-iteration fills). Executes once per
    /// combination of the *unlisted* levels' iterations; peeling moves
    /// these into peeled copies without changing the total.
    Guarded(Vec<usize>),
}

/// One class of memory accesses of the design point with its exact
/// per-execution address list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traffic {
    /// Accessed array.
    pub array: String,
    /// Store (true) or load (false).
    pub is_write: bool,
    /// Declared element width of the array.
    pub elem_bits: u32,
    /// When the class executes.
    pub kind: TrafficKind,
    /// Row-major flattened constant offsets touched per execution.
    /// Duplicates are real duplicate accesses.
    pub flat_offsets: Vec<i64>,
    /// Does the class execute under a user `if`? Peeling substitutes
    /// trip-1 loop variables into the body and constant folding may then
    /// remove the guarded access from the materialized design entirely,
    /// so the analytic *lower* bound must not rely on conditional
    /// traffic (the upper bound still counts it).
    pub conditional: bool,
}

impl Traffic {
    /// Exact number of times this class executes over the whole nest,
    /// given the jammed per-level trip counts.
    pub fn executions(&self, trips: &[i64]) -> i64 {
        match &self.kind {
            TrafficKind::Body => trips.iter().product(),
            TrafficKind::Top => 1,
            TrafficKind::AtLevel(l) => trips[..=*l].iter().product(),
            TrafficKind::Guarded(g) => trips
                .iter()
                .enumerate()
                .filter(|(l, _)| !g.contains(l))
                .map(|(_, &t)| t)
                .product(),
        }
    }

    /// Total access events of this class over the whole nest.
    pub fn events(&self, trips: &[i64]) -> i64 {
        self.executions(trips) * self.flat_offsets.len() as i64
    }
}

/// A class of compiler-introduced registers sharing one width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterClass {
    /// Declared element width of the source array.
    pub bits: u32,
    /// Registers in the class.
    pub count: usize,
    /// Whether every register in the class is (transitively) filled from
    /// a memory load of its array — in that case bitwidth narrowing
    /// cannot shrink it below the declared width, so the synthesized
    /// register is priced at exactly `bits`.
    pub load_valued: bool,
}

/// Serialization facts of one accumulator group (for the compute floor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccumulatorCensus {
    /// Accumulated array.
    pub array: String,
    /// Maximum jammed write members sharing one offset: the length of
    /// the serialized register-update chain per body.
    pub max_writes_per_offset: i64,
    /// `Some(tops)` iff *every* base write statement of the group reads
    /// its own target access (a true recurrence); each entry is the
    /// statement's top-level operator plus whether one operand is an
    /// integer constant (strength reduction may then null its latency).
    pub serial_ops: Option<Vec<(BinOp, bool)>>,
}

/// Exact structural counts of one design point. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointCensus {
    /// The unroll factors, outermost first.
    pub factors: Vec<i64>,
    /// Jammed trip count per level (`T_l / U_l`).
    pub trips: Vec<i64>,
    /// `P(U)`: product of the factors (base-body copies per jammed body).
    pub product: i64,
    /// Total jammed bodies (`Π trips`).
    pub bodies: i64,
    /// Mirror of [`crate::ScalarReplacementInfo::reuse_registers`].
    pub reuse_registers: usize,
    /// Mirror of [`crate::ScalarReplacementInfo::temp_registers`].
    pub temp_registers: usize,
    /// Mirror of [`crate::ScalarReplacementInfo::chains`].
    pub chains: usize,
    /// Mirror of [`crate::ScalarReplacementInfo::dropped_by_budget`].
    pub dropped_by_budget: usize,
    /// Introduced registers bucketed by width/provenance.
    pub registers: Vec<RegisterClass>,
    /// Every memory-traffic class of the point, with exact counts.
    pub traffic: Vec<Traffic>,
    /// Rotate statements executed per jammed body.
    pub rotates_per_body: i64,
    /// Guard `==` comparisons per jammed body (chain/window guards).
    pub guard_eqs_per_body: i64,
    /// Guard `&&` conjunctions per jammed body.
    pub guard_ands_per_body: i64,
    /// Accumulator groups with their serialization facts.
    pub accumulators: Vec<AccumulatorCensus>,
    /// Per level: will peeling split off the first iteration? True for
    /// every level some `if (var == 0)` guard tests (chain/window fills
    /// and user guards alike); false everywhere when peeling is off.
    pub peelable: Vec<bool>,
}

impl PointCensus {
    /// Registers of the materialized design introduced by scalar
    /// replacement (reuse + temps).
    pub fn total_registers(&self) -> usize {
        self.reuse_registers + self.temp_registers
    }
}

/// One planned-but-not-yet-applied carried-reuse arm (budget candidate),
/// mirroring `CarriedPlan` of [`crate::scalar`].
enum CarriedCensus {
    Chain {
        set: usize,
        lanes: Vec<Vec<i64>>,
        length: usize,
        guard_levels: Vec<usize>,
    },
    Window {
        set: usize,
        window_dim: usize,
        deepest_varying: usize,
        lanes: Vec<(Vec<i64>, i64, i64)>,
        step: i64,
    },
}

struct GroupIdx {
    read: Option<usize>,
    write: Option<usize>,
}

impl PreparedKernel {
    /// Compute the exact structural census of one design point. Performs
    /// the same validation as [`Self::transform`] (same errors), then
    /// replays the scalar-replacement planning analytically.
    ///
    /// # Errors
    ///
    /// The same per-point errors as [`Self::transform`].
    pub fn census(&self, unroll: &UnrollVector, opts: &TransformOptions) -> Result<PointCensus> {
        let factors = unroll.factors();
        self.validate_factors(factors)?;
        let depth = self.loops().len();
        let trips: Vec<i64> = self
            .loops()
            .iter()
            .zip(factors)
            .map(|(l, &u)| l.trip_count() / u)
            .collect();
        let tuples = offset_tuples(factors);
        let sets = jammed_uniform_sets(self.base_sets(), self.base_table_len(), &tuples);
        let var_refs: Vec<&str> = self.var_names().iter().map(String::as_str).collect();

        // Row-major strides per array, as the memory binding computes
        // them.
        let mut strides: HashMap<&str, Vec<i64>> = HashMap::new();
        for a in self.normalized().arrays() {
            let mut s = vec![1i64; a.dims.len()];
            for d in (0..a.dims.len().saturating_sub(1)).rev() {
                s[d] = s[d + 1] * a.dims[d + 1] as i64;
            }
            strides.insert(a.name.as_str(), s);
        }
        let elem_bits = |array: &str| {
            self.normalized()
                .array(array)
                .map(|a| a.ty.bits())
                .unwrap_or(32)
        };
        let flat = |array: &str, off: &[i64]| -> i64 {
            match strides.get(array) {
                Some(s) => off.iter().zip(s).map(|(&o, &st)| o * st).sum(),
                None => 0,
            }
        };

        let mut c = PointCensus {
            factors: factors.to_vec(),
            trips: trips.clone(),
            product: factors.iter().product(),
            bodies: trips.iter().product(),
            reuse_registers: 0,
            temp_registers: 0,
            chains: 0,
            dropped_by_budget: 0,
            registers: Vec::new(),
            traffic: Vec::new(),
            rotates_per_body: 0,
            guard_eqs_per_body: 0,
            guard_ands_per_body: 0,
            accumulators: Vec::new(),
            peelable: vec![false; depth],
        };
        // Register classes keyed by (bits, load_valued).
        let mut reg_classes: HashMap<(u32, bool), usize> = HashMap::new();
        let mut add_regs =
            |classes: &mut HashMap<(u32, bool), usize>, bits: u32, load_valued: bool, n: usize| {
                *classes.entry((bits, load_valued)).or_insert(0) += n;
            };
        // Per read-set index: the constant-offset vectors whose loads are
        // rewritten to register reads. Absent key = fully raw set.
        let mut replaced_loads: HashMap<usize, HashSet<Vec<i64>>> = HashMap::new();
        // Write-set indices whose stores are rewritten (accumulators).
        let mut replaced_stores: HashSet<usize> = HashSet::new();

        if opts.scalar_replacement {
            // --- Mirror of `scalar_replace_core` planning. ---

            // Group read/write sets by (array, signature), in set order.
            let mut groups: Vec<GroupIdx> = Vec::new();
            for (i, set) in sets.iter().enumerate() {
                let found = groups.iter_mut().find(|g| {
                    let j = g.read.or(g.write).expect("group has a set");
                    sets[j].array == set.array && sets[j].signature == set.signature
                });
                match found {
                    Some(g) => {
                        if set.is_write {
                            g.write = Some(i);
                        } else {
                            g.read = Some(i);
                        }
                    }
                    None => groups.push(GroupIdx {
                        read: (!set.is_write).then_some(i),
                        write: set.is_write.then_some(i),
                    }),
                }
            }
            let write_sigs: HashMap<&str, Vec<&Vec<Vec<i64>>>> = {
                let mut m: HashMap<&str, Vec<&Vec<Vec<i64>>>> = HashMap::new();
                for s in sets.iter().filter(|s| s.is_write) {
                    m.entry(s.array.as_str()).or_default().push(&s.signature);
                }
                m
            };

            let conditional = |i: usize| -> bool { self.cond_flag(sets[i].members[0]) };

            let mut carried: Vec<(usize, CarriedCensus)> = Vec::new(); // (cost, plan)

            for g in &groups {
                let probe_idx = g.read.or(g.write).expect("group has a set");
                let array = sets[probe_idx].array.as_str();
                let signature = &sets[probe_idx].signature;
                let any_conditional = g.read.map(conditional).unwrap_or(false)
                    || g.write.map(conditional).unwrap_or(false);
                let foreign_writes = write_sigs
                    .get(array)
                    .map(|sigs| sigs.iter().any(|s| **s != *signature))
                    .unwrap_or(false);
                if any_conditional || foreign_writes {
                    continue;
                }
                let strategy = classify_set_bounded(&sets[probe_idx], &trips);
                match (&strategy, g.read, g.write) {
                    (
                        ReuseStrategy::Consistent {
                            deepest_varying,
                            hoist_inner,
                            ..
                        },
                        read,
                        Some(write),
                    ) if *hoist_inner >= 1 => {
                        if !opts.redundant_write_elim {
                            continue;
                        }
                        self.census_accumulator(
                            &mut c,
                            &mut reg_classes,
                            &mut add_regs,
                            &sets,
                            read,
                            write,
                            *deepest_varying,
                            &flat,
                            &elem_bits,
                            &mut replaced_loads,
                            &mut replaced_stores,
                            &var_refs,
                        );
                    }
                    (ReuseStrategy::FullyInvariant, Some(read), None) => {
                        let offs = sets[read].distinct_offsets();
                        let bits = elem_bits(array);
                        add_regs(&mut reg_classes, bits, true, offs.len());
                        c.reuse_registers += offs.len();
                        c.traffic.push(Traffic {
                            array: array.to_string(),
                            is_write: false,
                            elem_bits: bits,
                            kind: TrafficKind::Top,
                            flat_offsets: offs.iter().map(|o| flat(array, o)).collect(),
                            conditional: false,
                        });
                        replaced_loads.insert(read, offs.into_iter().collect());
                    }
                    (
                        ReuseStrategy::Consistent {
                            deepest_varying,
                            hoist_inner,
                            ..
                        },
                        Some(read),
                        None,
                    ) if *hoist_inner >= 1 => {
                        let offs = sets[read].distinct_offsets();
                        let bits = elem_bits(array);
                        add_regs(&mut reg_classes, bits, true, offs.len());
                        c.reuse_registers += offs.len();
                        c.traffic.push(Traffic {
                            array: array.to_string(),
                            is_write: false,
                            elem_bits: bits,
                            kind: TrafficKind::AtLevel(*deepest_varying),
                            flat_offsets: offs.iter().map(|o| flat(array, o)).collect(),
                            conditional: false,
                        });
                        replaced_loads.insert(read, offs.into_iter().collect());
                    }
                    (
                        ReuseStrategy::Consistent {
                            deepest_varying,
                            outer_reuse: Some(or),
                            ..
                        },
                        Some(read),
                        None,
                    ) => {
                        // Mirror of `plan_chain`.
                        let varying = sets[read].varying_levels();
                        let mut length: i64 = 1;
                        for &v in varying.iter().filter(|&&v| v > *or) {
                            length *= trips[v];
                        }
                        if length <= 0 || length > 4096 {
                            continue;
                        }
                        let lanes = sets[read].distinct_offsets();
                        let mut guard_levels = vec![*or];
                        guard_levels
                            .extend((*or + 1..*deepest_varying).filter(|l| !varying.contains(l)));
                        let cost = lanes.len() * length as usize;
                        carried.push((
                            cost,
                            CarriedCensus::Chain {
                                set: read,
                                lanes,
                                length: length as usize,
                                guard_levels,
                            },
                        ));
                    }
                    (
                        ReuseStrategy::Consistent {
                            deepest_varying,
                            outer_reuse: None,
                            hoist_inner: 0,
                        },
                        Some(read),
                        None,
                    ) => {
                        // Mirror of `plan_window`.
                        let dims: Vec<usize> = signature
                            .iter()
                            .enumerate()
                            .filter(|(_, row)| row[*deepest_varying] != 0)
                            .map(|(d, _)| d)
                            .collect();
                        let [window_dim] = dims.as_slice() else {
                            continue;
                        };
                        let window_dim = *window_dim;
                        if signature[window_dim][*deepest_varying] != 1 {
                            continue;
                        }
                        let step = factors[*deepest_varying];
                        let mut lanes: Vec<(Vec<i64>, i64, i64)> = Vec::new();
                        let mut lane_index: HashMap<Vec<i64>, usize> = HashMap::new();
                        for off in sets[read].distinct_offsets() {
                            let key: Vec<i64> = off
                                .iter()
                                .enumerate()
                                .filter(|(d, _)| *d != window_dim)
                                .map(|(_, &v)| v)
                                .collect();
                            let w = off[window_dim];
                            match lane_index.get(&key) {
                                Some(&i) => {
                                    let (_, lo, hi) = &mut lanes[i];
                                    *lo = (*lo).min(w);
                                    *hi = (*hi).max(w);
                                }
                                None => {
                                    lane_index.insert(key.clone(), lanes.len());
                                    lanes.push((key, w, w));
                                }
                            }
                        }
                        lanes.retain(|(_, lo, hi)| hi - lo + 1 > step);
                        if lanes.is_empty() {
                            continue;
                        }
                        let cost: i64 = lanes.iter().map(|(_, lo, hi)| hi - lo + 1).sum();
                        carried.push((
                            cost as usize,
                            CarriedCensus::Window {
                                set: read,
                                window_dim,
                                deepest_varying: *deepest_varying,
                                lanes,
                                step,
                            },
                        ));
                    }
                    (
                        ReuseStrategy::Consistent {
                            deepest_varying,
                            hoist_inner,
                            ..
                        },
                        None,
                        Some(write),
                    ) if *hoist_inner >= 1 => {
                        if !opts.redundant_write_elim {
                            continue;
                        }
                        self.census_accumulator(
                            &mut c,
                            &mut reg_classes,
                            &mut add_regs,
                            &sets,
                            None,
                            write,
                            *deepest_varying,
                            &flat,
                            &elem_bits,
                            &mut replaced_loads,
                            &mut replaced_stores,
                            &var_refs,
                        );
                    }
                    _ => {}
                }
            }

            // §5.4 register budget: smallest-cost-first, same stable sort.
            carried.sort_by_key(|(cost, _)| *cost);
            let mut remaining = opts
                .register_budget
                .map(|b| b.saturating_sub(c.reuse_registers))
                .unwrap_or(usize::MAX);
            for (cost, plan) in carried {
                if cost > remaining {
                    c.dropped_by_budget += 1;
                    continue;
                }
                remaining -= cost;
                match plan {
                    CarriedCensus::Chain {
                        set,
                        lanes,
                        length,
                        guard_levels,
                    } => {
                        let array = sets[set].array.as_str();
                        let bits = elem_bits(array);
                        for lane_off in &lanes {
                            add_regs(&mut reg_classes, bits, true, length);
                            c.reuse_registers += length;
                            c.traffic.push(Traffic {
                                array: array.to_string(),
                                is_write: false,
                                elem_bits: bits,
                                kind: TrafficKind::Guarded(guard_levels.clone()),
                                flat_offsets: vec![flat(array, lane_off)],
                                conditional: false,
                            });
                            if length >= 2 {
                                c.rotates_per_body += 1;
                            }
                            c.guard_eqs_per_body += guard_levels.len() as i64;
                            c.guard_ands_per_body += guard_levels.len() as i64 - 1;
                        }
                        c.chains += lanes.len();
                        for &l in &guard_levels {
                            c.peelable[l] = true;
                        }
                        replaced_loads.insert(set, lanes.into_iter().collect());
                    }
                    CarriedCensus::Window {
                        set,
                        window_dim,
                        deepest_varying,
                        lanes,
                        step,
                    } => {
                        let array = sets[set].array.as_str();
                        let bits = elem_bits(array);
                        // Group all distinct offsets by lane key, like
                        // `apply_carried` does.
                        let all_offsets = sets[set].distinct_offsets();
                        let mut by_lane: HashMap<Vec<i64>, Vec<&Vec<i64>>> = HashMap::new();
                        for off in &all_offsets {
                            let key: Vec<i64> = off
                                .iter()
                                .enumerate()
                                .filter(|(d, _)| *d != window_dim)
                                .map(|(_, &v)| v)
                                .collect();
                            by_lane.entry(key).or_default().push(off);
                        }
                        let mut replaced: HashSet<Vec<i64>> = HashSet::new();
                        for (key, lo, hi) in &lanes {
                            let lane_offsets = &by_lane[key];
                            let span = (hi - lo + 1) as usize;
                            let carried_regs = span.saturating_sub(step as usize);
                            add_regs(&mut reg_classes, bits, true, span);
                            c.reuse_registers += span;
                            let proto: Vec<i64> = lane_offsets[0].clone();
                            let patched = |wpos: i64| -> Vec<i64> {
                                let mut off = proto.clone();
                                off[window_dim] = wpos;
                                off
                            };
                            if carried_regs > 0 {
                                c.traffic.push(Traffic {
                                    array: array.to_string(),
                                    is_write: false,
                                    elem_bits: bits,
                                    kind: TrafficKind::Guarded(vec![deepest_varying]),
                                    flat_offsets: (0..carried_regs)
                                        .map(|p| flat(array, &patched(lo + p as i64)))
                                        .collect(),
                                    conditional: false,
                                });
                                c.guard_eqs_per_body += 1;
                                c.peelable[deepest_varying] = true;
                            }
                            if span > carried_regs {
                                c.traffic.push(Traffic {
                                    array: array.to_string(),
                                    is_write: false,
                                    elem_bits: bits,
                                    kind: TrafficKind::Body,
                                    flat_offsets: (carried_regs..span)
                                        .map(|p| flat(array, &patched(lo + p as i64)))
                                        .collect(),
                                    conditional: false,
                                });
                            }
                            if carried_regs > 0 && span >= 2 {
                                c.rotates_per_body += step;
                            }
                            c.chains += 1;
                            for off in lane_offsets {
                                replaced.insert((*off).clone());
                            }
                        }
                        replaced_loads.insert(set, replaced);
                    }
                }
            }
        }

        // --- Raw (unreplaced) traffic, mirroring the body rewrite +
        // `hoist_remaining_loads`. ---

        // Arrays with any raw store keep their loads in place.
        let stored_arrays: HashSet<&str> = sets
            .iter()
            .enumerate()
            .filter(|(i, s)| s.is_write && !replaced_stores.contains(i))
            .map(|(_, s)| s.array.as_str())
            .collect();

        // Raw stores: one store per member per body.
        for (i, set) in sets.iter().enumerate() {
            if !set.is_write || replaced_stores.contains(&i) {
                continue;
            }
            c.traffic.push(Traffic {
                array: set.array.clone(),
                is_write: true,
                elem_bits: elem_bits(&set.array),
                kind: TrafficKind::Body,
                flat_offsets: set.offsets.iter().map(|o| flat(&set.array, o)).collect(),
                conditional: self.cond_flag(set.members[0]),
            });
        }

        // Raw loads: walk the base body's load occurrences, expand each
        // by the jam tuples, and split in-place loads (stored arrays and
        // sole-load statements, which `hoist_remaining_loads` skips) from
        // hoisted ones (one temp register per distinct address).
        let mut occurrences: Vec<(&ArrayAccess, bool, bool)> = Vec::new();
        collect_load_occurrences(self.base_body(), false, &mut occurrences);
        // In-place loads split by user-`if` context: conditional loads may
        // be folded away with their branch, so they form separate classes.
        let mut in_place: HashMap<(&str, bool), Vec<i64>> = HashMap::new();
        // Distinct hoisted addresses in deterministic (first-seen) order.
        let mut hoisted_seen: HashSet<(String, Vec<Vec<i64>>, Vec<i64>)> = HashSet::new();
        let mut hoisted: HashMap<&str, Vec<i64>> = HashMap::new();
        for (access, sole, cond) in &occurrences {
            let array = access.array.as_str();
            let sig = access.coeff_signature(&var_refs);
            let base_off: Vec<i64> = access.indices.iter().map(|e| e.constant_term()).collect();
            let set_idx = sets
                .iter()
                .position(|s| !s.is_write && s.array == array && s.signature == sig);
            let replaced = set_idx.and_then(|i| replaced_loads.get(&i));
            for t in &tuples {
                let jo: Vec<i64> = base_off
                    .iter()
                    .enumerate()
                    .map(|(d, &b)| b + sig[d].iter().zip(t).map(|(&co, &tv)| co * tv).sum::<i64>())
                    .collect();
                if replaced.map(|r| r.contains(&jo)).unwrap_or(false) {
                    continue;
                }
                if !opts.scalar_replacement || *sole || stored_arrays.contains(array) {
                    in_place
                        .entry((array, *cond))
                        .or_default()
                        .push(flat(array, &jo));
                } else if hoisted_seen.insert((array.to_string(), sig.clone(), jo.clone())) {
                    hoisted.entry(array).or_default().push(flat(array, &jo));
                }
            }
        }
        let mut raw_arrays: Vec<&str> = in_place
            .keys()
            .map(|&(a, _)| a)
            .chain(hoisted.keys().copied())
            .collect();
        raw_arrays.sort_unstable();
        raw_arrays.dedup();
        for array in raw_arrays {
            let bits = elem_bits(array);
            for cond in [false, true] {
                if let Some(offs) = in_place.remove(&(array, cond)) {
                    c.traffic.push(Traffic {
                        array: array.to_string(),
                        is_write: false,
                        elem_bits: bits,
                        kind: TrafficKind::Body,
                        flat_offsets: offs,
                        conditional: cond,
                    });
                }
            }
            if let Some(offs) = hoisted.remove(array) {
                c.temp_registers += offs.len();
                add_regs(&mut reg_classes, bits, true, offs.len());
                // Hoisting fills the temps in an unconditional prefix, so
                // these loads survive any branch folding.
                c.traffic.push(Traffic {
                    array: array.to_string(),
                    is_write: false,
                    elem_bits: bits,
                    kind: TrafficKind::Body,
                    flat_offsets: offs,
                    conditional: false,
                });
            }
        }

        // Peeling also splits levels whose variable a *user* guard tests
        // against zero.
        if opts.peel {
            for (l, var) in self.var_names().iter().enumerate() {
                if !c.peelable[l] && body_tests_var_zero(self.base_body(), var) {
                    c.peelable[l] = true;
                }
            }
        } else {
            c.peelable = vec![false; depth];
        }

        c.registers = {
            let mut v: Vec<RegisterClass> = reg_classes
                .into_iter()
                .map(|((bits, load_valued), count)| RegisterClass {
                    bits,
                    count,
                    load_valued,
                })
                .collect();
            v.sort_by_key(|r| (r.bits, r.load_valued));
            v
        };
        Ok(c)
    }

    /// Mirror of `plan_accumulator`: registers for the union of
    /// read/write offsets, hoisted loads + sunk stores at the deepest
    /// varying level, plus the serialization facts for the compute floor.
    #[allow(clippy::too_many_arguments)]
    fn census_accumulator(
        &self,
        c: &mut PointCensus,
        reg_classes: &mut HashMap<(u32, bool), usize>,
        add_regs: &mut impl FnMut(&mut HashMap<(u32, bool), usize>, u32, bool, usize),
        sets: &[UniformSet],
        read: Option<usize>,
        write: usize,
        deepest_varying: usize,
        flat: &impl Fn(&str, &[i64]) -> i64,
        elem_bits: &impl Fn(&str) -> u32,
        replaced_loads: &mut HashMap<usize, HashSet<Vec<i64>>>,
        replaced_stores: &mut HashSet<usize>,
        var_refs: &[&str],
    ) {
        let array = sets[write].array.as_str();
        let bits = elem_bits(array);
        let write_offsets = sets[write].distinct_offsets();
        let read_offsets: Vec<Vec<i64>> =
            read.map(|i| sets[i].distinct_offsets()).unwrap_or_default();
        let mut union = write_offsets.clone();
        for o in &read_offsets {
            if !union.contains(o) {
                union.push(o.clone());
            }
        }
        for off in &union {
            let load_valued = read_offsets.contains(off);
            add_regs(reg_classes, bits, load_valued, 1);
        }
        c.reuse_registers += union.len();
        if !read_offsets.is_empty() {
            c.traffic.push(Traffic {
                array: array.to_string(),
                is_write: false,
                elem_bits: bits,
                kind: TrafficKind::AtLevel(deepest_varying),
                flat_offsets: read_offsets.iter().map(|o| flat(array, o)).collect(),
                conditional: false,
            });
        }
        c.traffic.push(Traffic {
            array: array.to_string(),
            is_write: true,
            elem_bits: bits,
            kind: TrafficKind::AtLevel(deepest_varying),
            flat_offsets: write_offsets.iter().map(|o| flat(array, o)).collect(),
            conditional: false,
        });
        if let Some(r) = read {
            replaced_loads.insert(r, read_offsets.into_iter().collect());
        }
        replaced_stores.insert(write);

        // Serialization: jammed write members sharing one offset update
        // the same register in sequence.
        let mut per_offset: HashMap<&Vec<i64>, i64> = HashMap::new();
        for off in &sets[write].offsets {
            *per_offset.entry(off).or_insert(0) += 1;
        }
        let max_writes = per_offset.values().copied().max().unwrap_or(0);
        let signature = &sets[write].signature;
        let mut serial_ops: Option<Vec<(BinOp, bool)>> = Some(Vec::new());
        collect_update_tops(
            self.base_body(),
            array,
            signature,
            var_refs,
            &mut serial_ops,
        );
        c.accumulators.push(AccumulatorCensus {
            array: array.to_string(),
            max_writes_per_offset: max_writes,
            serial_ops: serial_ops.filter(|v| !v.is_empty()),
        });
    }
}

/// Collect every load occurrence of a body with its context. The first
/// flag is `true` when the occurrence is the entire right-hand side of an
/// assignment (the hoisting pass skips such statements — they are already
/// single loads into registers); the second is `true` when the occurrence
/// sits inside an `if` branch (a condition's own loads execute whenever
/// the statement does, so they inherit the *enclosing* context).
fn collect_load_occurrences<'a>(
    body: &'a [Stmt],
    conditional: bool,
    out: &mut Vec<(&'a ArrayAccess, bool, bool)>,
) {
    for s in body {
        match s {
            Stmt::Assign { rhs, .. } => {
                if let Expr::Load(a) = rhs {
                    out.push((a, true, conditional));
                } else {
                    for a in rhs.loads() {
                        out.push((a, false, conditional));
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                for a in cond.loads() {
                    out.push((a, false, conditional));
                }
                collect_load_occurrences(then_body, true, out);
                collect_load_occurrences(else_body, true, out);
            }
            _ => {}
        }
    }
}

/// Record the top-level operator of every base write statement of an
/// accumulator group. `out` collapses to `None` as soon as one statement
/// is not a self-read recurrence with a binary top (no serialization
/// floor can then be claimed).
fn collect_update_tops(
    body: &[Stmt],
    array: &str,
    signature: &[Vec<i64>],
    vars: &[&str],
    out: &mut Option<Vec<(BinOp, bool)>>,
) {
    for s in body {
        match s {
            Stmt::Assign {
                lhs: defacto_ir::LValue::Array(a),
                rhs,
            } if a.array == array && a.coeff_signature(vars).as_slice() == signature => {
                let self_read = rhs.loads().contains(&a);
                let top = match rhs {
                    Expr::Binary(op, x, y) => {
                        let has_const =
                            matches!(&**x, Expr::Int(_)) || matches!(&**y, Expr::Int(_));
                        Some((*op, has_const))
                    }
                    _ => None,
                };
                match (self_read, top, out.as_mut()) {
                    (true, Some(t), Some(v)) => v.push(t),
                    _ => *out = None,
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_update_tops(then_body, array, signature, vars, out);
                collect_update_tops(else_body, array, signature, vars, out);
            }
            _ => {}
        }
    }
}

/// Does any `if` condition in the body test `var == 0` (the pattern loop
/// peeling splits on)?
fn body_tests_var_zero(body: &[Stmt], var: &str) -> bool {
    fn expr_tests(e: &Expr, var: &str) -> bool {
        match e {
            Expr::Binary(BinOp::Eq, a, b) => {
                matches!((&**a, &**b), (Expr::Scalar(v), Expr::Int(0)) if v == var)
            }
            Expr::Binary(BinOp::And, a, b) => expr_tests(a, var) || expr_tests(b, var),
            _ => false,
        }
    }
    body.iter().any(|s| match s {
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            expr_tests(cond, var)
                || body_tests_var_zero(then_body, var)
                || body_tests_var_zero(else_body, var)
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::transform;
    use defacto_ir::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    fn total_events(c: &PointCensus, array: &str, is_write: bool) -> i64 {
        c.traffic
            .iter()
            .filter(|t| t.array == array && t.is_write == is_write)
            .map(|t| t.events(&c.trips))
            .sum()
    }

    #[test]
    fn fir_census_matches_pipeline_info_and_interpreter_traffic() {
        let k = parse_kernel(FIR).unwrap();
        let p = PreparedKernel::prepare(&k).unwrap();
        let opts = TransformOptions::default();
        let u = UnrollVector(vec![2, 2]);
        let c = p.census(&u, &opts).unwrap();
        let d = transform(&k, &u, &opts).unwrap();
        assert_eq!(c.reuse_registers, d.info.reuse_registers);
        assert_eq!(c.temp_registers, d.info.temp_registers);
        assert_eq!(c.chains, d.info.chains);
        // Interpreter-verified traffic (see scalar.rs tests): S 3/body,
        // C 32 fills total, D 64 loads + 64 stores.
        assert_eq!(total_events(&c, "S", false), 3 * 512);
        assert_eq!(total_events(&c, "C", false), 32);
        assert_eq!(total_events(&c, "D", false), 64);
        assert_eq!(total_events(&c, "D", true), 64);
        // The j loop is peeled (chain fills guard on j == 0); i is not.
        assert_eq!(c.peelable, vec![true, false]);
        assert_eq!(c.rotates_per_body, 2);
        assert!(c.accumulators.len() == 1 && c.accumulators[0].array == "D");
        assert_eq!(c.accumulators[0].max_writes_per_offset, 2);
        assert!(matches!(
            c.accumulators[0].serial_ops.as_deref(),
            Some([(BinOp::Add, false)])
        ));
    }

    #[test]
    fn census_register_counts_match_pipeline_across_fir_space() {
        let k = parse_kernel(FIR).unwrap();
        let p = PreparedKernel::prepare(&k).unwrap();
        let opts = TransformOptions::default();
        for uj in [1i64, 2, 4, 8, 16, 32, 64] {
            for ui in [1i64, 2, 4, 8, 16, 32] {
                let u = UnrollVector(vec![uj, ui]);
                let c = p.census(&u, &opts).unwrap();
                let d = transform(&k, &u, &opts).unwrap();
                assert_eq!(
                    (
                        c.reuse_registers,
                        c.temp_registers,
                        c.chains,
                        c.dropped_by_budget
                    ),
                    (
                        d.info.reuse_registers,
                        d.info.temp_registers,
                        d.info.chains,
                        d.info.dropped_by_budget
                    ),
                    "factors ({uj},{ui})"
                );
                let total: usize = c.registers.iter().map(|r| r.count).sum();
                assert_eq!(total, c.total_registers(), "factors ({uj},{ui})");
            }
        }
    }

    #[test]
    fn census_respects_register_budget() {
        let k = parse_kernel(FIR).unwrap();
        let p = PreparedKernel::prepare(&k).unwrap();
        let opts = TransformOptions {
            register_budget: Some(8),
            ..TransformOptions::default()
        };
        let u = UnrollVector(vec![2, 2]);
        let c = p.census(&u, &opts).unwrap();
        let d = transform(&k, &u, &opts).unwrap();
        assert_eq!(c.dropped_by_budget, 1);
        assert_eq!(c.reuse_registers, d.info.reuse_registers);
        assert_eq!(c.temp_registers, d.info.temp_registers);
        // The dropped chain's loads return to the body: 2 per body.
        assert_eq!(total_events(&c, "C", false), 2 * 512);
    }

    #[test]
    fn census_without_scalar_replacement_counts_every_access() {
        let k = parse_kernel(FIR).unwrap();
        let p = PreparedKernel::prepare(&k).unwrap();
        let opts = TransformOptions {
            scalar_replacement: false,
            ..TransformOptions::default()
        };
        let u = UnrollVector(vec![2, 2]);
        let c = p.census(&u, &opts).unwrap();
        assert_eq!(c.total_registers(), 0);
        // Every access stays: per body 4 loads of S... no — 4 copies each
        // of S, C, D loads and D stores.
        assert_eq!(total_events(&c, "S", false), 4 * 512);
        assert_eq!(total_events(&c, "C", false), 4 * 512);
        assert_eq!(total_events(&c, "D", false), 4 * 512);
        assert_eq!(total_events(&c, "D", true), 4 * 512);
    }

    #[test]
    fn stencil_window_census() {
        let st = parse_kernel(
            "kernel st { in A: i16[66]; out B: i16[64];
               for i in 0..64 { B[i] = A[i] + A[i + 1] + A[i + 2]; } }",
        )
        .unwrap();
        let p = PreparedKernel::prepare(&st).unwrap();
        let c = p
            .census(&UnrollVector(vec![1]), &TransformOptions::default())
            .unwrap();
        // Window of 3 registers, 1 chain; loads 64 + 2 fills (see
        // scalar.rs stencil test).
        assert_eq!(c.reuse_registers, 3);
        assert_eq!(c.chains, 1);
        assert_eq!(total_events(&c, "A", false), 64 + 2);
        assert_eq!(total_events(&c, "B", true), 64);
        assert_eq!(c.peelable, vec![true]);
    }

    #[test]
    fn matmul_census_traffic_matches_interpreter() {
        let mm = parse_kernel(
            "kernel mm { in A: i32[32][16]; in B: i32[16][4]; inout C: i32[32][4];
               for i in 0..32 { for j in 0..4 { for k in 0..16 {
                 C[i][j] = C[i][j] + A[i][k] * B[k][j]; } } } }",
        )
        .unwrap();
        let p = PreparedKernel::prepare(&mm).unwrap();
        let c = p
            .census(&UnrollVector(vec![1, 1, 1]), &TransformOptions::default())
            .unwrap();
        assert_eq!(total_events(&c, "A", false), 32 * 16);
        assert_eq!(total_events(&c, "B", false), 16 * 4);
        assert_eq!(total_events(&c, "C", false), 32 * 4);
        assert_eq!(total_events(&c, "C", true), 32 * 4);
    }

    #[test]
    fn census_rejects_what_transform_rejects() {
        let k = parse_kernel(FIR).unwrap();
        let p = PreparedKernel::prepare(&k).unwrap();
        let opts = TransformOptions::default();
        for bad in [vec![3i64, 1], vec![0, 1], vec![2]] {
            let c = p.census(&UnrollVector(bad.clone()), &opts);
            let t = p.transform(&UnrollVector(bad.clone()), &opts);
            assert_eq!(c.is_err(), t.is_err(), "factors {bad:?}");
        }
    }
}
