//! Loop peeling.
//!
//! Scalar replacement emits first-iteration register loads guarded by
//! `if (var == lower)`. The paper peels the first iteration of such loops
//! instead, so every steady-state iteration has the same number of memory
//! accesses and behavioral synthesis can schedule a uniform body (§4,
//! "Loop Peeling and Loop-Invariant Code Motion"). This pass finds loops
//! whose bodies test `var == lower`, splits off the first iteration with
//! the guard resolved to true, and removes the (now dead) guards from the
//! remaining iterations.

use crate::error::Result;
use crate::simplify::{simplify_expr, simplify_stmts};
use defacto_ir::visit::{map_accesses_stmts, map_scalar_reads_stmt};
use defacto_ir::{AffineExpr, BinOp, Expr, Kernel, Loop, Stmt};

/// Peel the first iteration of every loop that guards statements with
/// `if (var == lower)`, recursively.
///
/// # Errors
///
/// Propagates IR validation failures when rebuilding the kernel.
pub fn peel_first_iterations(kernel: &Kernel) -> Result<Kernel> {
    let body = peel_stmts(kernel.body());
    Ok(kernel.with_body(simplify_stmts(&body))?)
}

fn peel_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::For(l) => {
                let body = peel_stmts(&l.body);
                if l.trip_count() >= 1 && tests_first_iteration(&body, &l.var, l.lower) {
                    // First iteration with var := lower substituted.
                    let first = substitute_const(&body, &l.var, l.lower);
                    out.extend(simplify_stmts(&first));
                    if l.trip_count() > 1 {
                        // Remaining iterations: the first-iteration guards
                        // are now dead; fold them away.
                        let rest = kill_first_iteration_guards(&body, &l.var, l.lower);
                        out.push(Stmt::For(Loop {
                            var: l.var.clone(),
                            lower: l.lower + l.step,
                            upper: l.upper,
                            step: l.step,
                            body: simplify_stmts(&rest),
                        }));
                    }
                } else {
                    out.push(Stmt::For(Loop {
                        var: l.var.clone(),
                        lower: l.lower,
                        upper: l.upper,
                        step: l.step,
                        body,
                    }));
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => out.push(Stmt::If {
                cond: cond.clone(),
                then_body: peel_stmts(then_body),
                else_body: peel_stmts(else_body),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Does any `if` condition in `stmts` (recursively) test `var == lower`?
fn tests_first_iteration(stmts: &[Stmt], var: &str, lower: i64) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            expr_tests(cond, var, lower)
                || tests_first_iteration(then_body, var, lower)
                || tests_first_iteration(else_body, var, lower)
        }
        Stmt::For(l) => tests_first_iteration(&l.body, var, lower),
        _ => false,
    })
}

fn expr_tests(e: &Expr, var: &str, lower: i64) -> bool {
    match e {
        Expr::Binary(BinOp::Eq, a, b) => {
            matches!((&**a, &**b), (Expr::Scalar(v), Expr::Int(k)) if v == var && *k == lower)
        }
        Expr::Binary(BinOp::And, a, b) => expr_tests(a, var, lower) || expr_tests(b, var, lower),
        _ => false,
    }
}

/// Substitute `var := value` into subscripts and scalar reads.
fn substitute_const(stmts: &[Stmt], var: &str, value: i64) -> Vec<Stmt> {
    let replaced = map_accesses_stmts(stmts, &mut |a| {
        a.map_indices(|e| e.substitute(var, &AffineExpr::constant(value)))
    });
    replaced
        .iter()
        .map(|s| {
            map_scalar_reads_stmt(s, &mut |n| {
                if n == var {
                    Some(Expr::Int(value))
                } else {
                    None
                }
            })
        })
        .collect()
}

/// In the post-peel loop, `var` can no longer equal `lower`; rewrite the
/// corresponding equality tests to constant false so `simplify` drops the
/// guarded loads.
fn kill_first_iteration_guards(stmts: &[Stmt], var: &str, lower: i64) -> Vec<Stmt> {
    stmts.iter().map(|s| kill_in_stmt(s, var, lower)).collect()
}

fn kill_in_stmt(s: &Stmt, var: &str, lower: i64) -> Stmt {
    match s {
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: simplify_expr(&kill_in_expr(cond, var, lower)),
            then_body: kill_first_iteration_guards(then_body, var, lower),
            else_body: kill_first_iteration_guards(else_body, var, lower),
        },
        Stmt::For(l) => Stmt::For(Loop {
            var: l.var.clone(),
            lower: l.lower,
            upper: l.upper,
            step: l.step,
            body: kill_first_iteration_guards(&l.body, var, lower),
        }),
        other => other.clone(),
    }
}

fn kill_in_expr(e: &Expr, var: &str, lower: i64) -> Expr {
    match e {
        Expr::Binary(BinOp::Eq, a, b) if matches!((&**a, &**b), (Expr::Scalar(v), Expr::Int(k)) if v == var && *k == lower) => {
            Expr::Int(0)
        }
        Expr::Binary(op, a, b) => Expr::bin(
            *op,
            kill_in_expr(a, var, lower),
            kill_in_expr(b, var, lower),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::{parse_kernel, run_with_inputs};

    #[test]
    fn peels_conditional_register_load() {
        let k = parse_kernel(
            "kernel p { in C: i32[8]; out B: i32[8]; var c0: i32;
               for j in 0..4 {
                 for i in 0..8 {
                   if (j == 0) { c0 = C[i]; }
                   B[i] = B[i] + c0;
                 }
               } }",
        )
        .unwrap();
        let p = peel_first_iterations(&k).unwrap();
        // The j loop is split: a peeled copy plus a j in 1..4 loop with no
        // conditional left.
        let body = p.body();
        assert_eq!(body.len(), 2, "{p}");
        match &body[1] {
            Stmt::For(l) => {
                assert_eq!(l.lower, 1);
                assert!(!tests_first_iteration(&l.body, "j", 0));
                // No `if` remains anywhere in the steady loop.
                fn has_if(stmts: &[Stmt]) -> bool {
                    stmts.iter().any(|s| match s {
                        Stmt::If { .. } => true,
                        Stmt::For(l) => has_if(&l.body),
                        _ => false,
                    })
                }
                assert!(!has_if(&l.body), "{p}");
            }
            _ => panic!("expected steady loop"),
        }
        // Semantics preserved.
        let c: Vec<i64> = (0..8).map(|x| x + 1).collect();
        let (w1, _) = run_with_inputs(&k, &[("C", c.clone())]).unwrap();
        let (w2, _) = run_with_inputs(&p, &[("C", c)]).unwrap();
        assert_eq!(w1.array("B"), w2.array("B"));
    }

    #[test]
    fn peeling_reduces_steady_state_loads() {
        let k = parse_kernel(
            "kernel p { in C: i32[8]; out B: i32[4][8]; var c0: i32;
               for j in 0..4 {
                 for i in 0..8 {
                   if (j == 0) { c0 = C[i]; }
                   B[j][i] = c0 + j;
                 }
               } }",
        )
        .unwrap();
        let p = peel_first_iterations(&k).unwrap();
        let c: Vec<i64> = (0..8).collect();
        let (_, s1) = run_with_inputs(&k, &[("C", c.clone())]).unwrap();
        let (_, s2) = run_with_inputs(&p, &[("C", c)]).unwrap();
        // Both load C exactly 8 times (the guard already limited loads),
        // and outputs agree — but the peeled version contains no dynamic
        // branching at all.
        assert_eq!(s1.loads_by_array["C"], 8);
        assert_eq!(s2.loads_by_array["C"], 8);
    }

    #[test]
    fn nested_guards_peel_recursively() {
        // Guard on two loop variables: (i == 0) & (j == 0).
        let k = parse_kernel(
            "kernel n { in C: i32[4]; out B: i32[64]; var c0: i32;
               for i in 0..4 { for j in 0..4 { for t in 0..4 {
                 if ((i == 0) & (j == 0)) { c0 = C[t]; }
                 B[i*16 + j*4 + t] = c0 + i + j;
               } } } }",
        )
        .unwrap();
        let p = peel_first_iterations(&k).unwrap();
        let c: Vec<i64> = vec![5, 6, 7, 8];
        let (w1, _) = run_with_inputs(&k, &[("C", c.clone())]).unwrap();
        let (w2, _) = run_with_inputs(&p, &[("C", c)]).unwrap();
        assert_eq!(w1.array("B"), w2.array("B"));
    }

    #[test]
    fn loops_without_guards_untouched() {
        let k = parse_kernel(
            "kernel u { in A: i32[8]; out B: i32[8];
               for i in 0..8 { B[i] = A[i]; } }",
        )
        .unwrap();
        assert_eq!(peel_first_iterations(&k).unwrap(), k);
    }

    #[test]
    fn single_iteration_loop_peels_completely() {
        let k = parse_kernel(
            "kernel s { in C: i32[1]; out B: i32[1]; var c0: i32;
               for j in 0..1 {
                 if (j == 0) { c0 = C[j]; }
                 B[j] = c0;
               } }",
        )
        .unwrap();
        let p = peel_first_iterations(&k).unwrap();
        // Loop disappears entirely.
        assert!(p.body().iter().all(|s| !matches!(s, Stmt::For(_))), "{p}");
        let (w, _) = run_with_inputs(&p, &[("C", vec![42])]).unwrap();
        assert_eq!(w.array("B").unwrap(), &[42]);
    }
}
