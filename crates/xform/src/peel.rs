//! Loop peeling.
//!
//! Scalar replacement emits first-iteration register loads guarded by
//! `if (var == lower)`. The paper peels the first iteration of such loops
//! instead, so every steady-state iteration has the same number of memory
//! accesses and behavioral synthesis can schedule a uniform body (§4,
//! "Loop Peeling and Loop-Invariant Code Motion"). This pass finds loops
//! whose bodies test `var == lower`, splits off the first iteration with
//! the guard resolved to true, and removes the (now dead) guards from the
//! remaining iterations.

use crate::error::Result;
use crate::simplify::{fold_binary, fold_unary, simplify_expr, simplify_stmts};
use defacto_ir::visit::{map_accesses_stmts, map_scalar_reads_stmt};
use defacto_ir::{AffineExpr, BinOp, Expr, Kernel, LValue, Loop, Stmt};

/// Peel the first iteration of every loop that guards statements with
/// `if (var == lower)`, recursively.
///
/// # Errors
///
/// Propagates IR validation failures when rebuilding the kernel.
pub fn peel_first_iterations(kernel: &Kernel) -> Result<Kernel> {
    let body = peel_stmts(kernel.body());
    Ok(kernel.with_body(simplify_stmts(&body))?)
}

/// [`peel_first_iterations`] for the prepared evaluation path: produces
/// the same kernel while skipping revalidation and fusing peeling with
/// simplification into a single bottom-up walk.
///
/// The eager path interleaves `peel_stmts` with per-level and final
/// `simplify_stmts` passes, walking (and re-cloning) the tree several
/// times. The fused walk maintains the invariant that every statement
/// list it returns is already in `simplify_stmts` normal form —
/// expressions folded, constant branches spliced, zero-trip loops
/// dropped — so no follow-up pass is needed:
///
/// - guard detection runs on the simplified peeled body, where constant
///   `if`s cannot occur, so the plain [`tests_first_iteration`] applies;
/// - the peeled first copy is produced by `substitute_fold_stmts`, which
///   substitutes `var := lower` and folds in one pass (folding is
///   bottom-up, so substituting at the leaves and folding on the way up
///   yields exactly `simplify(substitute(x))`);
/// - the steady-state loop body is produced by `kill_fold_stmts`, which
///   rewrites dead guards to constant false and splices the resulting
///   constant branches in the same pass.
///
/// Because `simplify_stmts` is idempotent and each fused operator
/// reproduces its two-pass counterpart node for node, the result is
/// bit-identical to the eager path; the incremental-equivalence property
/// test pins the two against each other on every paper kernel.
pub(crate) fn peel_first_iterations_lite(kernel: &Kernel) -> Kernel {
    kernel.with_body_unchecked(peel_simplify_stmts(kernel.body()))
}

/// Fused `simplify_stmts(peel_stmts(..))`: peel and simplify in one
/// bottom-up walk. Output is in `simplify_stmts` normal form.
fn peel_simplify_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    peel_simplify_into(stmts, &mut out);
    out
}

fn peel_simplify_into(stmts: &[Stmt], out: &mut Vec<Stmt>) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => out.push(Stmt::Assign {
                lhs: lhs.clone(),
                rhs: simplify_expr(rhs),
            }),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => match simplify_expr(cond) {
                Expr::Int(0) => peel_simplify_into(else_body, out),
                Expr::Int(_) => peel_simplify_into(then_body, out),
                cond => out.push(Stmt::If {
                    cond,
                    then_body: peel_simplify_stmts(then_body),
                    else_body: peel_simplify_stmts(else_body),
                }),
            },
            Stmt::For(l) => {
                if l.trip_count() == 0 {
                    continue;
                }
                let body = peel_simplify_stmts(&l.body);
                if tests_first_iteration(&body, &l.var, l.lower) {
                    substitute_fold_into(&body, &l.var, l.lower, out);
                    if l.trip_count() > 1 {
                        out.push(Stmt::For(Loop {
                            var: l.var.clone(),
                            lower: l.lower + l.step,
                            upper: l.upper,
                            step: l.step,
                            body: kill_fold_stmts(&body, &l.var, l.lower),
                        }));
                    }
                } else {
                    out.push(Stmt::For(Loop {
                        var: l.var.clone(),
                        lower: l.lower,
                        upper: l.upper,
                        step: l.step,
                        body,
                    }));
                }
            }
            Stmt::Rotate(r) => out.push(Stmt::Rotate(r.clone())),
        }
    }
}

/// Fused `simplify_stmts(substitute_const(..))` over an
/// already-simplified body: substitute `var := value` at the leaves and
/// refold on the way up, splicing branches whose condition becomes
/// constant.
fn substitute_fold_stmts(stmts: &[Stmt], var: &str, value: i64) -> Vec<Stmt> {
    let mut out = Vec::new();
    substitute_fold_into(stmts, var, value, &mut out);
    out
}

fn substitute_fold_into(stmts: &[Stmt], var: &str, value: i64, out: &mut Vec<Stmt>) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => out.push(Stmt::Assign {
                lhs: match lhs {
                    LValue::Array(a) => LValue::Array(
                        a.map_indices(|e| e.substitute(var, &AffineExpr::constant(value))),
                    ),
                    scalar => scalar.clone(),
                },
                rhs: substitute_fold_expr(rhs, var, value),
            }),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => match substitute_fold_expr(cond, var, value) {
                Expr::Int(0) => substitute_fold_into(else_body, var, value, out),
                Expr::Int(_) => substitute_fold_into(then_body, var, value, out),
                cond => out.push(Stmt::If {
                    cond,
                    then_body: substitute_fold_stmts(then_body, var, value),
                    else_body: substitute_fold_stmts(else_body, var, value),
                }),
            },
            // Loop bounds are literals, so trip counts are unaffected by
            // substitution and no zero-trip loop can appear here.
            Stmt::For(l) => out.push(Stmt::For(Loop {
                var: l.var.clone(),
                lower: l.lower,
                upper: l.upper,
                step: l.step,
                body: substitute_fold_stmts(&l.body, var, value),
            })),
            Stmt::Rotate(r) => out.push(Stmt::Rotate(r.clone())),
        }
    }
}

fn substitute_fold_expr(e: &Expr, var: &str, value: i64) -> Expr {
    match e {
        Expr::Scalar(n) if n == var => Expr::Int(value),
        Expr::Int(_) | Expr::Scalar(_) => e.clone(),
        Expr::Load(a) => {
            Expr::Load(a.map_indices(|ix| ix.substitute(var, &AffineExpr::constant(value))))
        }
        Expr::Unary(op, inner) => fold_unary(*op, substitute_fold_expr(inner, var, value)),
        Expr::Binary(op, a, b) => fold_binary(
            *op,
            substitute_fold_expr(a, var, value),
            substitute_fold_expr(b, var, value),
        ),
        Expr::Select(c, t, f) => match substitute_fold_expr(c, var, value) {
            Expr::Int(0) => substitute_fold_expr(f, var, value),
            Expr::Int(_) => substitute_fold_expr(t, var, value),
            c => Expr::Select(
                Box::new(c),
                Box::new(substitute_fold_expr(t, var, value)),
                Box::new(substitute_fold_expr(f, var, value)),
            ),
        },
    }
}

/// Fused `simplify_stmts(kill_first_iteration_guards(..))` over an
/// already-simplified body: rewrite `var == lower` tests to constant
/// false and splice the branches that become constant, leaving every
/// untouched statement as is (it is already in normal form).
fn kill_fold_stmts(stmts: &[Stmt], var: &str, lower: i64) -> Vec<Stmt> {
    let mut out = Vec::new();
    kill_fold_into(stmts, var, lower, &mut out);
    out
}

fn kill_fold_into(stmts: &[Stmt], var: &str, lower: i64, out: &mut Vec<Stmt>) {
    for s in stmts {
        match s {
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => match kill_fold_expr(cond, var, lower) {
                Expr::Int(0) => kill_fold_into(else_body, var, lower, out),
                Expr::Int(_) => kill_fold_into(then_body, var, lower, out),
                cond => out.push(Stmt::If {
                    cond,
                    then_body: kill_fold_stmts(then_body, var, lower),
                    else_body: kill_fold_stmts(else_body, var, lower),
                }),
            },
            Stmt::For(l) => out.push(Stmt::For(Loop {
                var: l.var.clone(),
                lower: l.lower,
                upper: l.upper,
                step: l.step,
                body: kill_fold_stmts(&l.body, var, lower),
            })),
            other => out.push(other.clone()),
        }
    }
}

/// Fused `simplify_expr(kill_in_expr(..))` over an already-simplified
/// expression. Like `kill_in_expr`, only binary chains are searched for
/// the guard; other nodes are untouched (and already folded).
fn kill_fold_expr(e: &Expr, var: &str, lower: i64) -> Expr {
    match e {
        Expr::Binary(BinOp::Eq, a, b) if matches!((&**a, &**b), (Expr::Scalar(v), Expr::Int(k)) if v == var && *k == lower) => {
            Expr::Int(0)
        }
        Expr::Binary(op, a, b) => fold_binary(
            *op,
            kill_fold_expr(a, var, lower),
            kill_fold_expr(b, var, lower),
        ),
        other => other.clone(),
    }
}

fn peel_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::For(l) => {
                let body = peel_stmts(&l.body);
                if l.trip_count() >= 1 && tests_first_iteration(&body, &l.var, l.lower) {
                    // First iteration with var := lower substituted.
                    let first = substitute_const(&body, &l.var, l.lower);
                    out.extend(simplify_stmts(&first));
                    if l.trip_count() > 1 {
                        // Remaining iterations: the first-iteration guards
                        // are now dead; fold them away.
                        let rest = kill_first_iteration_guards(&body, &l.var, l.lower);
                        out.push(Stmt::For(Loop {
                            var: l.var.clone(),
                            lower: l.lower + l.step,
                            upper: l.upper,
                            step: l.step,
                            body: simplify_stmts(&rest),
                        }));
                    }
                } else {
                    out.push(Stmt::For(Loop {
                        var: l.var.clone(),
                        lower: l.lower,
                        upper: l.upper,
                        step: l.step,
                        body,
                    }));
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => out.push(Stmt::If {
                cond: cond.clone(),
                then_body: peel_stmts(then_body),
                else_body: peel_stmts(else_body),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Does any `if` condition in `stmts` (recursively) test `var == lower`?
fn tests_first_iteration(stmts: &[Stmt], var: &str, lower: i64) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            expr_tests(cond, var, lower)
                || tests_first_iteration(then_body, var, lower)
                || tests_first_iteration(else_body, var, lower)
        }
        Stmt::For(l) => tests_first_iteration(&l.body, var, lower),
        _ => false,
    })
}

fn expr_tests(e: &Expr, var: &str, lower: i64) -> bool {
    match e {
        Expr::Binary(BinOp::Eq, a, b) => {
            matches!((&**a, &**b), (Expr::Scalar(v), Expr::Int(k)) if v == var && *k == lower)
        }
        Expr::Binary(BinOp::And, a, b) => expr_tests(a, var, lower) || expr_tests(b, var, lower),
        _ => false,
    }
}

/// Substitute `var := value` into subscripts and scalar reads.
fn substitute_const(stmts: &[Stmt], var: &str, value: i64) -> Vec<Stmt> {
    let replaced = map_accesses_stmts(stmts, &mut |a| {
        a.map_indices(|e| e.substitute(var, &AffineExpr::constant(value)))
    });
    replaced
        .iter()
        .map(|s| {
            map_scalar_reads_stmt(s, &mut |n| {
                if n == var {
                    Some(Expr::Int(value))
                } else {
                    None
                }
            })
        })
        .collect()
}

/// In the post-peel loop, `var` can no longer equal `lower`; rewrite the
/// corresponding equality tests to constant false so `simplify` drops the
/// guarded loads.
fn kill_first_iteration_guards(stmts: &[Stmt], var: &str, lower: i64) -> Vec<Stmt> {
    stmts.iter().map(|s| kill_in_stmt(s, var, lower)).collect()
}

fn kill_in_stmt(s: &Stmt, var: &str, lower: i64) -> Stmt {
    match s {
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: simplify_expr(&kill_in_expr(cond, var, lower)),
            then_body: kill_first_iteration_guards(then_body, var, lower),
            else_body: kill_first_iteration_guards(else_body, var, lower),
        },
        Stmt::For(l) => Stmt::For(Loop {
            var: l.var.clone(),
            lower: l.lower,
            upper: l.upper,
            step: l.step,
            body: kill_first_iteration_guards(&l.body, var, lower),
        }),
        other => other.clone(),
    }
}

fn kill_in_expr(e: &Expr, var: &str, lower: i64) -> Expr {
    match e {
        Expr::Binary(BinOp::Eq, a, b) if matches!((&**a, &**b), (Expr::Scalar(v), Expr::Int(k)) if v == var && *k == lower) => {
            Expr::Int(0)
        }
        Expr::Binary(op, a, b) => Expr::bin(
            *op,
            kill_in_expr(a, var, lower),
            kill_in_expr(b, var, lower),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::{parse_kernel, run_with_inputs};

    #[test]
    fn peels_conditional_register_load() {
        let k = parse_kernel(
            "kernel p { in C: i32[8]; out B: i32[8]; var c0: i32;
               for j in 0..4 {
                 for i in 0..8 {
                   if (j == 0) { c0 = C[i]; }
                   B[i] = B[i] + c0;
                 }
               } }",
        )
        .unwrap();
        let p = peel_first_iterations(&k).unwrap();
        // The j loop is split: a peeled copy plus a j in 1..4 loop with no
        // conditional left.
        let body = p.body();
        assert_eq!(body.len(), 2, "{p}");
        match &body[1] {
            Stmt::For(l) => {
                assert_eq!(l.lower, 1);
                assert!(!tests_first_iteration(&l.body, "j", 0));
                // No `if` remains anywhere in the steady loop.
                fn has_if(stmts: &[Stmt]) -> bool {
                    stmts.iter().any(|s| match s {
                        Stmt::If { .. } => true,
                        Stmt::For(l) => has_if(&l.body),
                        _ => false,
                    })
                }
                assert!(!has_if(&l.body), "{p}");
            }
            _ => panic!("expected steady loop"),
        }
        // Semantics preserved.
        let c: Vec<i64> = (0..8).map(|x| x + 1).collect();
        let (w1, _) = run_with_inputs(&k, &[("C", c.clone())]).unwrap();
        let (w2, _) = run_with_inputs(&p, &[("C", c)]).unwrap();
        assert_eq!(w1.array("B"), w2.array("B"));
    }

    #[test]
    fn peeling_reduces_steady_state_loads() {
        let k = parse_kernel(
            "kernel p { in C: i32[8]; out B: i32[4][8]; var c0: i32;
               for j in 0..4 {
                 for i in 0..8 {
                   if (j == 0) { c0 = C[i]; }
                   B[j][i] = c0 + j;
                 }
               } }",
        )
        .unwrap();
        let p = peel_first_iterations(&k).unwrap();
        let c: Vec<i64> = (0..8).collect();
        let (_, s1) = run_with_inputs(&k, &[("C", c.clone())]).unwrap();
        let (_, s2) = run_with_inputs(&p, &[("C", c)]).unwrap();
        // Both load C exactly 8 times (the guard already limited loads),
        // and outputs agree — but the peeled version contains no dynamic
        // branching at all.
        assert_eq!(s1.loads_by_array["C"], 8);
        assert_eq!(s2.loads_by_array["C"], 8);
    }

    #[test]
    fn nested_guards_peel_recursively() {
        // Guard on two loop variables: (i == 0) & (j == 0).
        let k = parse_kernel(
            "kernel n { in C: i32[4]; out B: i32[64]; var c0: i32;
               for i in 0..4 { for j in 0..4 { for t in 0..4 {
                 if ((i == 0) & (j == 0)) { c0 = C[t]; }
                 B[i*16 + j*4 + t] = c0 + i + j;
               } } } }",
        )
        .unwrap();
        let p = peel_first_iterations(&k).unwrap();
        let c: Vec<i64> = vec![5, 6, 7, 8];
        let (w1, _) = run_with_inputs(&k, &[("C", c.clone())]).unwrap();
        let (w2, _) = run_with_inputs(&p, &[("C", c)]).unwrap();
        assert_eq!(w1.array("B"), w2.array("B"));
    }

    #[test]
    fn loops_without_guards_untouched() {
        let k = parse_kernel(
            "kernel u { in A: i32[8]; out B: i32[8];
               for i in 0..8 { B[i] = A[i]; } }",
        )
        .unwrap();
        assert_eq!(peel_first_iterations(&k).unwrap(), k);
    }

    #[test]
    fn single_iteration_loop_peels_completely() {
        let k = parse_kernel(
            "kernel s { in C: i32[1]; out B: i32[1]; var c0: i32;
               for j in 0..1 {
                 if (j == 0) { c0 = C[j]; }
                 B[j] = c0;
               } }",
        )
        .unwrap();
        let p = peel_first_iterations(&k).unwrap();
        // Loop disappears entirely.
        assert!(p.body().iter().all(|s| !matches!(s, Stmt::For(_))), "{p}");
        let (w, _) = run_with_inputs(&p, &[("C", vec![42])]).unwrap();
        assert_eq!(w.array("B").unwrap(), &[42]);
    }
}
