//! Error type for the transformation crate.
//!
//! Legality and request failures carry structured payloads (which loop,
//! which dependence, which levels) rather than pre-formatted strings, so
//! upstack consumers — the lint driver, the explorer's search tracing —
//! can report them with stable codes and precise messages. The `Display`
//! output is unchanged from the stringly predecessors.

use defacto_ir::Diagnostic;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, XformError>;

/// Why an unroll-factor vector (or nest permutation) was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectorError {
    /// The vector's length does not match the nest depth.
    WrongLength {
        /// Number of entries supplied.
        got: usize,
        /// Depth of the nest.
        depth: usize,
    },
    /// A loop of the nest is not normalized (`lower = 0`, `step = 1`).
    NotNormalized {
        /// The loop's induction variable.
        var: String,
    },
    /// An unroll factor below 1.
    BadFactor {
        /// The loop's induction variable.
        var: String,
        /// The offending factor.
        factor: i64,
    },
    /// An interchange order that is not a permutation of the levels.
    NotAPermutation {
        /// The requested order.
        order: Vec<usize>,
        /// Depth of the nest.
        depth: usize,
    },
}

impl fmt::Display for VectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectorError::WrongLength { got, depth } => {
                write!(f, "vector has {got} entries for a {depth}-deep nest")
            }
            VectorError::NotNormalized { var } => write!(f, "loop `{var}` is not normalized"),
            VectorError::BadFactor { var, factor } => {
                write!(f, "factor {factor} for loop `{var}`")
            }
            VectorError::NotAPermutation { order, depth } => {
                write!(f, "`{order:?}` is not a permutation of 0..{depth}")
            }
        }
    }
}

/// The dependence that makes an unroll-and-jam or interchange illegal.
///
/// Defined by the legality analysis (the predicates that produce it live
/// in `defacto_analysis::legality`); re-exported here as the payload of
/// [`XformError::IllegalJam`]. Variants and `Display` are unchanged.
pub use defacto_analysis::legality::JamViolation;

/// Why a tiling request was invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileError {
    /// The requested level does not exist in the nest.
    LevelOutOfRange {
        /// The requested level.
        level: usize,
        /// Depth of the nest.
        depth: usize,
    },
    /// The target loop is not normalized.
    NotNormalized {
        /// The loop's induction variable.
        var: String,
    },
    /// The tile size does not evenly divide the trip count.
    NonDividingTile {
        /// The requested tile size.
        tile: i64,
        /// Trip count of the target loop.
        trip: i64,
    },
    /// Hoisting the tile loop outermost would reorder a dependence.
    ReorderedDependence {
        /// The tiled level.
        level: usize,
        /// The level the tile loop must cross.
        crossed: usize,
        /// Array carrying the dependence.
        array: String,
    },
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::LevelOutOfRange { level, depth } => {
                write!(f, "level {level} out of range for {depth}-deep nest")
            }
            TileError::NotNormalized { var } => write!(f, "loop `{var}` is not normalized"),
            TileError::NonDividingTile { tile, trip } => {
                write!(f, "tile size {tile} does not divide trip count {trip}")
            }
            TileError::ReorderedDependence {
                level,
                crossed,
                array,
            } => write!(
                f,
                "hoisting the tile loop of level {level} across level {crossed} \
                 would reorder a dependence on `{array}`"
            ),
        }
    }
}

/// Errors raised by loop/data transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XformError {
    /// The kernel body is not a perfect loop nest and the transformation
    /// requires one.
    NotPerfectNest,
    /// An unroll-factor vector did not match the nest.
    BadUnrollVector(VectorError),
    /// An unroll factor does not evenly divide the loop's trip count (the
    /// system only explores divisor unroll factors, so behavioral
    /// synthesis sees constant bounds without cleanup code).
    NonDividingFactor {
        /// The loop's induction variable.
        var: String,
        /// Trip count of the loop.
        trip: i64,
        /// Offending factor.
        factor: i64,
    },
    /// Unroll-and-jam (or interchange) would reorder a dependence.
    IllegalJam(JamViolation),
    /// A tiling request was invalid.
    BadTile(TileError),
    /// The IR verifier found structural violations after a pipeline stage
    /// (only raised when `verify_each_pass` is enabled).
    Verify {
        /// The pipeline stage whose output failed verification.
        stage: &'static str,
        /// The violations, as `DF1xx` diagnostics.
        diagnostics: Vec<Diagnostic>,
    },
    /// An underlying IR validation error.
    Ir(defacto_ir::IrError),
}

impl fmt::Display for XformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XformError::NotPerfectNest => {
                write!(f, "kernel body is not a perfect loop nest")
            }
            XformError::BadUnrollVector(m) => write!(f, "bad unroll vector: {m}"),
            XformError::NonDividingFactor { var, trip, factor } => write!(
                f,
                "unroll factor {factor} does not divide trip count {trip} of loop `{var}`"
            ),
            XformError::IllegalJam(m) => write!(f, "unroll-and-jam would be illegal: {m}"),
            XformError::BadTile(m) => write!(f, "bad tiling request: {m}"),
            XformError::Verify { stage, diagnostics } => {
                write!(
                    f,
                    "IR verifier found {} violation(s) after {stage}",
                    diagnostics.len()
                )?;
                if let Some(first) = diagnostics.first() {
                    write!(f, ": [{}] {}", first.code, first.message)?;
                }
                Ok(())
            }
            XformError::Ir(e) => write!(f, "ir error: {e}"),
        }
    }
}

impl std::error::Error for XformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XformError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<defacto_ir::IrError> for XformError {
    fn from(e: defacto_ir::IrError) -> Self {
        XformError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            XformError::NotPerfectNest,
            XformError::BadUnrollVector(VectorError::WrongLength { got: 3, depth: 2 }),
            XformError::NonDividingFactor {
                var: "i".into(),
                trip: 10,
                factor: 3,
            },
            XformError::IllegalJam(JamViolation::NegativeDeeper {
                array: "A".into(),
                level: 0,
                deeper: 1,
            }),
            XformError::BadTile(TileError::NonDividingTile { tile: 5, trip: 32 }),
            XformError::Verify {
                stage: "unroll-and-jam",
                diagnostics: vec![Diagnostic::error("DF101", "boom")],
            },
            XformError::Ir(defacto_ir::IrError::Undeclared("x".into())),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn display_prefixes_are_stable() {
        // Messages consumers (and older tests) matched on keep their shape.
        let jam = XformError::IllegalJam(JamViolation::UnknownDeeper {
            array: "A".into(),
            level: 1,
            deeper: 2,
        });
        assert_eq!(
            jam.to_string(),
            "unroll-and-jam would be illegal: dependence on `A` carried at \
             level 1 has unknown component at level 2"
        );
        let vec = XformError::BadUnrollVector(VectorError::NotAPermutation {
            order: vec![0, 0],
            depth: 2,
        });
        assert_eq!(
            vec.to_string(),
            "bad unroll vector: `[0, 0]` is not a permutation of 0..2"
        );
        let tile = XformError::BadTile(TileError::LevelOutOfRange { level: 5, depth: 2 });
        assert_eq!(
            tile.to_string(),
            "bad tiling request: level 5 out of range for 2-deep nest"
        );
    }

    #[test]
    fn jam_violation_exposes_array() {
        let v = JamViolation::Reordered {
            array: "C".into(),
            levels: vec![0, 2],
        };
        assert_eq!(v.array(), "C");
    }
}
