//! Error type for the transformation crate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, XformError>;

/// Errors raised by loop/data transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XformError {
    /// The kernel body is not a perfect loop nest and the transformation
    /// requires one.
    NotPerfectNest,
    /// An unroll-factor vector did not match the nest.
    BadUnrollVector(String),
    /// An unroll factor does not evenly divide the loop's trip count (the
    /// system only explores divisor unroll factors, so behavioral
    /// synthesis sees constant bounds without cleanup code).
    NonDividingFactor {
        /// The loop's induction variable.
        var: String,
        /// Trip count of the loop.
        trip: i64,
        /// Offending factor.
        factor: i64,
    },
    /// Unroll-and-jam would reorder a dependence.
    IllegalJam(String),
    /// A tiling request was invalid.
    BadTile(String),
    /// An underlying IR validation error.
    Ir(defacto_ir::IrError),
}

impl fmt::Display for XformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XformError::NotPerfectNest => {
                write!(f, "kernel body is not a perfect loop nest")
            }
            XformError::BadUnrollVector(m) => write!(f, "bad unroll vector: {m}"),
            XformError::NonDividingFactor { var, trip, factor } => write!(
                f,
                "unroll factor {factor} does not divide trip count {trip} of loop `{var}`"
            ),
            XformError::IllegalJam(m) => write!(f, "unroll-and-jam would be illegal: {m}"),
            XformError::BadTile(m) => write!(f, "bad tiling request: {m}"),
            XformError::Ir(e) => write!(f, "ir error: {e}"),
        }
    }
}

impl std::error::Error for XformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XformError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<defacto_ir::IrError> for XformError {
    fn from(e: defacto_ir::IrError) -> Self {
        XformError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            XformError::NotPerfectNest,
            XformError::BadUnrollVector("len 3 vs 2".into()),
            XformError::NonDividingFactor {
                var: "i".into(),
                trip: 10,
                factor: 3,
            },
            XformError::IllegalJam("neg dep".into()),
            XformError::BadTile("t".into()),
            XformError::Ir(defacto_ir::IrError::Undeclared("x".into())),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
