//! Strip-mining / loop tiling for register-pressure control (paper §5.4).
//!
//! Tiling a loop bounds the reuse footprint scalar replacement must hold
//! in registers: within a tile, full register reuse is exploited; across
//! tiles, values are reloaded. [`strip_mine`] performs the mechanical
//! split; the pipeline combines it with the scalar-replacement register
//! budget.

use crate::error::{Result, TileError, XformError};
use defacto_ir::visit::{map_accesses_stmts, map_scalar_reads_stmt};
use defacto_ir::{AffineExpr, Expr, Kernel, Loop, Stmt};

/// Strip-mine loop `level` (0 = outermost) of a normalized perfect nest
/// into a tile-controlling outer loop and an intra-tile loop of
/// `tile_size` iterations.
///
/// `for i in 0..N` becomes `for i_tile in 0..N/T { for i in 0..T }` with
/// `i := i_tile·T + i` substituted in the body. The tile loop is placed
/// immediately outside the original loop (no interchange), so the
/// transformation is always legal.
///
/// # Errors
///
/// Fails when the nest is imperfect, `level` is out of range, the loop is
/// not normalized, or `tile_size` does not divide the trip count.
pub fn strip_mine(kernel: &Kernel, level: usize, tile_size: i64) -> Result<Kernel> {
    let nest = kernel.perfect_nest().ok_or(XformError::NotPerfectNest)?;
    if level >= nest.depth() {
        return Err(XformError::BadTile(TileError::LevelOutOfRange {
            level,
            depth: nest.depth(),
        }));
    }
    let target = nest.loop_at(level);
    if !target.is_normalized() {
        return Err(XformError::BadTile(TileError::NotNormalized {
            var: target.var.clone(),
        }));
    }
    if tile_size < 1 || target.trip_count() % tile_size != 0 {
        return Err(XformError::BadTile(TileError::NonDividingTile {
            tile: tile_size,
            trip: target.trip_count(),
        }));
    }
    if tile_size == target.trip_count() {
        return Ok(kernel.clone()); // single tile: no-op
    }

    let tile_var = fresh_tile_var(kernel, &target.var);

    // Substitute i := i_tile·T + i in the target loop's body.
    let replacement =
        AffineExpr::var(tile_var.clone()) * tile_size + AffineExpr::var(target.var.clone());
    let var = target.var.clone();
    let mut inner_body = map_accesses_stmts(&target.body, &mut |a| {
        a.map_indices(|e| e.substitute(&var, &replacement))
    });
    inner_body = inner_body
        .iter()
        .map(|s| {
            map_scalar_reads_stmt(s, &mut |n| {
                if n == var {
                    Some(Expr::add(
                        Expr::mul(Expr::Int(tile_size), Expr::scalar(tile_var.clone())),
                        Expr::scalar(var.clone()),
                    ))
                } else {
                    None
                }
            })
        })
        .collect();

    let intra = Stmt::For(Loop::new(var.clone(), 0, tile_size, inner_body));
    let tile = Stmt::For(Loop::new(
        tile_var,
        0,
        target.trip_count() / tile_size,
        vec![intra],
    ));

    // Rebuild the nest with the split loop in place.
    let mut stmts = vec![tile];
    for l in (0..level).rev() {
        let outer = nest.loop_at(l);
        stmts = vec![Stmt::For(Loop {
            var: outer.var.clone(),
            lower: outer.lower,
            upper: outer.upper,
            step: outer.step,
            body: stmts,
        })];
    }
    Ok(kernel.with_body(stmts)?)
}

/// Strip-mine loop `level` and hoist the tile-controlling loop to the
/// outermost position, so reuse loops *inside* it see only one tile's
/// footprint — the register-pressure tiling of paper §5.4.
///
/// The interchange is checked against the dependence graph: it is
/// permitted only when every ordering-constraining dependence has an
/// exactly-zero or invariant (`Any`) component at each level the tile
/// loop crosses, which keeps all dependence pairs in their original
/// relative order.
///
/// # Errors
///
/// Same failures as [`strip_mine`], plus [`XformError::BadTile`] when the
/// interchange would reorder a dependence.
pub fn tile_for_registers(kernel: &Kernel, level: usize, tile_size: i64) -> Result<Kernel> {
    use defacto_analysis::{analyze_dependences_with_bounds, legality, AccessTable};

    let nest = kernel.perfect_nest().ok_or(XformError::NotPerfectNest)?;
    if level >= nest.depth() {
        return Err(XformError::BadTile(TileError::LevelOutOfRange {
            level,
            depth: nest.depth(),
        }));
    }
    // Interchange legality on the original nest: crossing levels
    // 0..level must all be Exact(0) or Any for constraining deps that the
    // tiled loop's iterations participate in. Delegates to the same
    // predicate that computes `LegalitySummary`'s per-level tilability.
    let table = AccessTable::from_stmts(nest.innermost_body());
    let vars = nest.vars();
    let bounds: Vec<(i64, i64)> = nest
        .loops()
        .iter()
        .map(|l| (l.lower, l.upper - 1))
        .collect();
    let deps = analyze_dependences_with_bounds(&table, &vars, &bounds);
    let carried = legality::carried_scalars(nest.innermost_body(), &vars);
    if let Some((crossed, array)) = legality::tile_hoist_violation(&deps, &carried, level) {
        return Err(XformError::BadTile(TileError::ReorderedDependence {
            level,
            crossed,
            array,
        }));
    }

    let mined = strip_mine(kernel, level, tile_size)?;
    if mined == *kernel {
        return Ok(mined); // single tile
    }
    // The tile loop currently sits at position `level`; rotate it to the
    // front.
    let nest2 = mined.perfect_nest().ok_or(XformError::NotPerfectNest)?;
    let mut order: Vec<usize> = (0..nest2.depth()).collect();
    let tile_pos = order.remove(level);
    order.insert(0, tile_pos);
    permute_nest(&mined, &order)
}

/// Rebuild a perfect nest with its loops permuted per `order` (a
/// permutation of level indices; `order[k]` is the original level placed
/// at position `k`). The caller is responsible for legality.
fn permute_nest(kernel: &Kernel, order: &[usize]) -> Result<Kernel> {
    let nest = kernel.perfect_nest().ok_or(XformError::NotPerfectNest)?;
    let body = nest.innermost_body().to_vec();
    let mut stmts = body;
    for &orig_level in order.iter().rev() {
        let l = nest.loop_at(orig_level);
        stmts = vec![Stmt::For(Loop {
            var: l.var.clone(),
            lower: l.lower,
            upper: l.upper,
            step: l.step,
            body: stmts,
        })];
    }
    Ok(kernel.with_body(stmts)?)
}

fn fresh_tile_var(kernel: &Kernel, base: &str) -> String {
    let mut name = format!("{base}_tile");
    let taken = |n: &str| {
        kernel.array(n).is_some()
            || kernel.scalar(n).is_some()
            || kernel.loop_vars().iter().any(|v| v == n)
    };
    let mut k = 0;
    while taken(&name) {
        k += 1;
        name = format!("{base}_tile{k}");
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::{parse_kernel, run_with_inputs};

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn strip_mine_preserves_semantics() {
        let k = parse_kernel(FIR).unwrap();
        let s: Vec<i64> = (0..96).map(|x| (x * 3 % 13) - 6).collect();
        let c: Vec<i64> = (0..32).map(|x| (x % 9) - 4).collect();
        let (w0, _) = run_with_inputs(&k, &[("S", s.clone()), ("C", c.clone())]).unwrap();
        for (level, tile) in [(0, 8), (1, 4), (1, 16)] {
            let t = strip_mine(&k, level, tile).unwrap();
            let (w1, _) = run_with_inputs(&t, &[("S", s.clone()), ("C", c.clone())]).unwrap();
            assert_eq!(w0.array("D"), w1.array("D"), "level {level} tile {tile}");
        }
    }

    #[test]
    fn strip_mine_structure() {
        let k = parse_kernel(FIR).unwrap();
        let t = strip_mine(&k, 1, 8).unwrap();
        let nest = t.perfect_nest().unwrap();
        assert_eq!(nest.depth(), 3);
        assert_eq!(nest.vars(), vec!["j", "i_tile", "i"]);
        assert_eq!(nest.trip_counts(), vec![64, 4, 8]);
    }

    #[test]
    fn full_tile_is_noop() {
        let k = parse_kernel(FIR).unwrap();
        assert_eq!(strip_mine(&k, 1, 32).unwrap(), k);
    }

    #[test]
    fn invalid_requests_rejected() {
        let k = parse_kernel(FIR).unwrap();
        assert!(matches!(
            strip_mine(&k, 5, 2).unwrap_err(),
            XformError::BadTile(_)
        ));
        assert!(matches!(
            strip_mine(&k, 1, 5).unwrap_err(),
            XformError::BadTile(_)
        ));
        assert!(matches!(
            strip_mine(&k, 1, 0).unwrap_err(),
            XformError::BadTile(_)
        ));
    }

    #[test]
    fn register_tiling_shrinks_chains() {
        use crate::scalar::{scalar_replace, ScalarOptions};
        let k = parse_kernel(FIR).unwrap();
        // Tile i by 8 with the tile loop hoisted outermost: within each
        // tile the C chain holds 8 values instead of 32.
        let t = tile_for_registers(&k, 1, 8).unwrap();
        let nest = t.perfect_nest().unwrap();
        assert_eq!(nest.vars(), vec!["i_tile", "j", "i"]);
        let (rt, info_tiled) = scalar_replace(&t, &ScalarOptions::default()).unwrap();
        let (_, info_full) = scalar_replace(&k, &ScalarOptions::default()).unwrap();
        assert!(
            info_tiled.reuse_registers < info_full.reuse_registers,
            "tiled {} vs full {}",
            info_tiled.reuse_registers,
            info_full.reuse_registers
        );
        // Semantics still preserved end to end.
        let s: Vec<i64> = (0..96).map(|x| x % 7).collect();
        let c: Vec<i64> = (0..32).map(|x| x % 5).collect();
        let (w0, _) = run_with_inputs(&k, &[("S", s.clone()), ("C", c.clone())]).unwrap();
        let (w1, _) = run_with_inputs(&rt, &[("S", s), ("C", c)]).unwrap();
        assert_eq!(w0.array("D"), w1.array("D"), "{rt}");
    }

    #[test]
    fn illegal_interchange_rejected() {
        // A[i][j] = A[i-1][j+1] has distance (1, -1): hoisting a j-tile
        // loop across i would reorder it.
        let k = parse_kernel(
            "kernel wf { inout A: i32[9][10];
               for i in 1..9 { for j in 0..8 {
                 A[i][j] = A[i - 1][j + 1] + 1; } } }",
        )
        .unwrap();
        let k = crate::normalize_loops(&k).unwrap();
        let err = tile_for_registers(&k, 1, 4).unwrap_err();
        assert!(matches!(err, XformError::BadTile(_)), "{err:?}");
    }
}
