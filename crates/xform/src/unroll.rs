//! Unroll-and-jam.
//!
//! Unrolling one or more loops of the nest and fusing (jamming) the copies
//! of the inner loops exposes operator parallelism to behavioral synthesis
//! and shortens reuse distances for scalar replacement (paper §4,
//! Figure 1(b)). The transformed nest keeps its loop structure but each
//! unrolled loop's step becomes its unroll factor and the innermost body
//! is replicated once per combination of unroll offsets.

use crate::error::{Result, VectorError, XformError};
use defacto_analysis::legality::{self, JamViolation};
use defacto_analysis::{analyze_dependences_with_bounds, AccessTable, DependenceGraph};
use defacto_ir::visit::offset_var_stmts;
use defacto_ir::{Kernel, Loop, Stmt};

/// Check whether unroll-and-jam with the given factors is legal.
///
/// A thin delegating assertion over the legality analysis — see
/// `defacto_analysis::legality::unroll_violation` for the rule (jam
/// would execute a dependent iteration before its source).
pub fn unroll_is_legal(
    deps: &DependenceGraph,
    factors: &[i64],
) -> std::result::Result<(), JamViolation> {
    match legality::unroll_violation(deps, factors) {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

/// Scalars carrying state across innermost-body iterations — re-exported
/// from `defacto_analysis::legality`, the single implementation shared
/// with saturation analysis and [`crate::PreparedKernel`]. A non-empty
/// set makes [`unroll_and_jam`] reject non-innermost factors above 1.
pub use defacto_analysis::legality::carried_scalars;

/// Apply unroll-and-jam to a normalized perfect nest.
///
/// `factors[l]` is the unroll factor of loop `l` (outermost first); a
/// factor of 1 leaves the loop untouched. Factors must divide the trip
/// counts — the system explores divisor factors only, so behavioral
/// synthesis always sees constant-trip loops without cleanup code.
///
/// # Errors
///
/// Fails when the body is not a normalized perfect nest, the factor vector
/// has the wrong length, a factor does not divide its trip count, or the
/// jam would reorder a dependence.
pub fn unroll_and_jam(kernel: &Kernel, factors: &[i64]) -> Result<Kernel> {
    let nest = kernel.perfect_nest().ok_or(XformError::NotPerfectNest)?;
    if factors.len() != nest.depth() {
        return Err(XformError::BadUnrollVector(VectorError::WrongLength {
            got: factors.len(),
            depth: nest.depth(),
        }));
    }
    for (l, loop_) in nest.loops().iter().enumerate() {
        if !loop_.is_normalized() {
            return Err(XformError::BadUnrollVector(VectorError::NotNormalized {
                var: loop_.var.clone(),
            }));
        }
        let u = factors[l];
        if u < 1 {
            return Err(XformError::BadUnrollVector(VectorError::BadFactor {
                var: loop_.var.clone(),
                factor: u,
            }));
        }
        if loop_.trip_count() % u != 0 {
            return Err(XformError::NonDividingFactor {
                var: loop_.var.clone(),
                trip: loop_.trip_count(),
                factor: u,
            });
        }
    }

    // Legality.
    let table = AccessTable::from_stmts(nest.innermost_body());
    let vars = nest.vars();
    let bounds: Vec<(i64, i64)> = nest
        .loops()
        .iter()
        .map(|l| (l.lower, l.upper - 1))
        .collect();
    let deps = analyze_dependences_with_bounds(&table, &vars, &bounds);
    unroll_is_legal(&deps, factors).map_err(XformError::IllegalJam)?;

    // Loop-carried scalar state (rotate register chains, scalars read
    // before written) is invisible to the array dependence graph but
    // just as order-sensitive: jamming a non-innermost loop interleaves
    // iterations of different outer indices and reorders the chain.
    // Innermost-only unrolling keeps copies in original iteration order.
    if factors[..factors.len() - 1].iter().any(|&u| u > 1) {
        let carried = carried_scalars(nest.innermost_body(), &vars);
        if let Some(v) = legality::carried_scalar_violation(&carried, factors) {
            return Err(XformError::IllegalJam(v));
        }
    }

    // Build the jammed body: one copy of the innermost body per
    // combination of offsets, lexicographic order (outer offset varies
    // slowest) — Figure 1(b) in the paper.
    let mut body: Vec<Stmt> = Vec::new();
    let var_names: Vec<String> = nest.loops().iter().map(|l| l.var.clone()).collect();
    for offsets in offset_tuples(factors) {
        let mut copy = nest.innermost_body().to_vec();
        for (l, &off) in offsets.iter().enumerate() {
            if off != 0 {
                copy = offset_var_stmts(&copy, &var_names[l], off);
            }
        }
        body.extend(copy);
    }

    // Rebuild the nest with widened steps.
    let mut stmts = body;
    for (l, loop_) in nest.loops().iter().enumerate().rev() {
        stmts = vec![Stmt::For(Loop {
            var: loop_.var.clone(),
            lower: 0,
            upper: loop_.upper,
            step: factors[l],
            body: stmts,
        })];
    }
    Ok(kernel.with_body(stmts)?)
}

/// All unroll-offset tuples for `factors`, in jam order: lexicographic
/// with the outermost level varying slowest, starting at the all-zero
/// tuple. The prepared evaluation path iterates the same list, so the
/// two unrolling implementations replicate copies in the same order by
/// construction.
pub(crate) fn offset_tuples(factors: &[i64]) -> Vec<Vec<i64>> {
    let mut tuples = Vec::with_capacity(factors.iter().product::<i64>().max(1) as usize);
    let mut offsets = vec![0i64; factors.len()];
    loop {
        tuples.push(offsets.clone());
        // Advance the mixed-radix counter, innermost level fastest.
        let mut level = factors.len();
        loop {
            if level == 0 {
                return tuples;
            }
            level -= 1;
            offsets[level] += 1;
            if offsets[level] < factors[level] {
                break;
            }
            offsets[level] = 0;
            if level == 0 {
                return tuples;
            }
        }
        if offsets.iter().all(|&o| o == 0) {
            return tuples;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::stmt::collect_accesses;
    use defacto_ir::{parse_kernel, run_with_inputs};

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn fir_2x2_matches_figure_1b() {
        let k = parse_kernel(FIR).unwrap();
        let u = unroll_and_jam(&k, &[2, 2]).unwrap();
        let nest = u.perfect_nest().unwrap();
        assert_eq!(nest.loop_at(0).step, 2);
        assert_eq!(nest.loop_at(1).step, 2);
        assert_eq!(nest.innermost_body().len(), 4);
        // 4 copies × (3 loads + 1 store).
        let acc = collect_accesses(nest.innermost_body());
        assert_eq!(acc.len(), 16);
        // The S subscript constants of the four copies: 0, 1, 1, 2.
        let s_offsets: Vec<i64> = acc
            .iter()
            .filter(|(a, w)| a.array == "S" && !w)
            .map(|(a, _)| a.indices[0].constant_term())
            .collect();
        assert_eq!(s_offsets, vec![0, 1, 1, 2]);
    }

    #[test]
    fn unrolled_kernel_is_semantically_equal() {
        let k = parse_kernel(FIR).unwrap();
        let s: Vec<i64> = (0..96).map(|x| (x * 13 % 31) - 15).collect();
        let c: Vec<i64> = (0..32).map(|x| (x * 7 % 19) - 9).collect();
        let (w0, _) = run_with_inputs(&k, &[("S", s.clone()), ("C", c.clone())]).unwrap();
        for factors in [[1, 1], [2, 1], [1, 4], [4, 8], [64, 32]] {
            let u = unroll_and_jam(&k, &factors).unwrap();
            let (w1, _) = run_with_inputs(&u, &[("S", s.clone()), ("C", c.clone())]).unwrap();
            assert_eq!(w0.array("D"), w1.array("D"), "factors {factors:?}");
        }
    }

    #[test]
    fn full_unroll_eliminates_iterations() {
        let k = parse_kernel(
            "kernel t { in A: i32[4]; out B: i32[4];
               for i in 0..4 { B[i] = A[i] * 2; } }",
        )
        .unwrap();
        let u = unroll_and_jam(&k, &[4]).unwrap();
        let nest = u.perfect_nest().unwrap();
        assert_eq!(nest.loop_at(0).trip_count(), 1);
        assert_eq!(nest.innermost_body().len(), 4);
    }

    #[test]
    fn non_dividing_factor_rejected() {
        let k = parse_kernel(FIR).unwrap();
        let err = unroll_and_jam(&k, &[3, 1]).unwrap_err();
        assert!(matches!(err, XformError::NonDividingFactor { .. }));
    }

    #[test]
    fn wrong_vector_length_rejected() {
        let k = parse_kernel(FIR).unwrap();
        assert!(matches!(
            unroll_and_jam(&k, &[2]).unwrap_err(),
            XformError::BadUnrollVector(_)
        ));
        assert!(matches!(
            unroll_and_jam(&k, &[0, 1]).unwrap_err(),
            XformError::BadUnrollVector(_)
        ));
    }

    #[test]
    fn wavefront_inner_jam_rejected() {
        // A[i][j] = A[i+1][j-1]: dependence (1, -1); unrolling i and
        // jamming the j copies would read values already overwritten.
        let k = parse_kernel(
            "kernel wf { inout A: i32[9][9];
               for i in 0..8 { for j in 1..8 {
                 A[i][j] = A[i + 1][j - 1] + 1; } } }",
        )
        .unwrap();
        let k = crate::normalize_loops(&k).unwrap();
        let err = unroll_and_jam(&k, &[2, 1]).unwrap_err();
        assert!(matches!(err, XformError::IllegalJam(_)), "{err:?}");
        // Unrolling only j is fine.
        assert!(unroll_and_jam(&k, &[1, 7]).is_ok());
    }

    #[test]
    fn accumulator_jam_is_legal() {
        // The FIR accumulator (distance (0, Any)) does not block jamming.
        let k = parse_kernel(FIR).unwrap();
        assert!(unroll_and_jam(&k, &[8, 4]).is_ok());
    }

    #[test]
    fn rotate_chain_blocks_non_innermost_jam() {
        // `rotate` carries register state across iterations: jamming an
        // outer level interleaves the inner loop's iterations and
        // reorders the chain (found by the differential fuzzer; see
        // tests/fuzz_corpus/pass_rotate_carried_innermost.kernel).
        let k = parse_kernel(
            "kernel rc { in A: i32[4][8]; out B: i32[4][8]; var r0: i32; var r1: i32;
               for i in 0..4 { for j in 0..8 {
                 r0 = A[i][j]; rotate(r0, r1); B[i][j] = r0; } } }",
        )
        .unwrap();
        let err = unroll_and_jam(&k, &[2, 1]).unwrap_err();
        assert!(
            matches!(
                &err,
                XformError::IllegalJam(JamViolation::CarriedScalar { .. })
            ),
            "{err:?}"
        );
        // Innermost unroll preserves iteration order: the chain survives.
        let u = unroll_and_jam(&k, &[1, 2]).unwrap();
        let a: Vec<i64> = (0..32).map(|x| x * 3 % 17).collect();
        let (w0, _) = run_with_inputs(&k, &[("A", a.clone())]).unwrap();
        let (w1, _) = run_with_inputs(&u, &[("A", a)]).unwrap();
        assert_eq!(w0.array("B"), w1.array("B"));
    }

    #[test]
    fn carried_scalars_distinguishes_read_before_write() {
        let k = parse_kernel(
            "kernel rw { in A: i32[8]; out B: i32[8]; var acc: i32;
               for i in 0..8 { B[i] = acc; acc = A[i]; } }",
        )
        .unwrap();
        let nest = k.perfect_nest().unwrap();
        assert_eq!(
            carried_scalars(nest.innermost_body(), &["i"]),
            vec!["acc".to_string()]
        );
        // A scalar written before it is read carries nothing.
        let k2 = parse_kernel(
            "kernel wr { in A: i32[8]; out B: i32[8]; var t: i32;
               for i in 0..8 { t = A[i]; B[i] = t; } }",
        )
        .unwrap();
        let nest2 = k2.perfect_nest().unwrap();
        assert!(carried_scalars(nest2.innermost_body(), &["i"]).is_empty());
    }

    #[test]
    fn matmul_semantics_preserved_under_unroll() {
        let mm = parse_kernel(
            "kernel mm { in A: i32[32][16]; in B: i32[16][4]; inout C: i32[32][4];
               for i in 0..32 { for j in 0..4 { for k in 0..16 {
                 C[i][j] = C[i][j] + A[i][k] * B[k][j]; } } } }",
        )
        .unwrap();
        let a: Vec<i64> = (0..512).map(|x| (x % 11) - 5).collect();
        let b: Vec<i64> = (0..64).map(|x| (x % 7) - 3).collect();
        let (w0, _) = run_with_inputs(&mm, &[("A", a.clone()), ("B", b.clone())]).unwrap();
        for factors in [[2, 2, 1], [4, 1, 4], [8, 4, 16]] {
            let u = unroll_and_jam(&mm, &factors).unwrap();
            let (w1, _) = run_with_inputs(&u, &[("A", a.clone()), ("B", b.clone())]).unwrap();
            assert_eq!(w0.array("C"), w1.array("C"), "factors {factors:?}");
        }
    }
}
