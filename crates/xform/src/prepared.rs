//! Incremental design-point evaluation: a prepared kernel.
//!
//! Every design point of one exploration shares the same source kernel.
//! The full pipeline ([`crate::transform`]) nevertheless re-runs every
//! point-invariant step per point: loop normalization, access collection,
//! dependence analysis, jam legality inputs, and uniformly-generated-set
//! partitioning. A [`PreparedKernel`] hoists all of that to a single
//! up-front `prepare` call and then evaluates each unroll vector with
//! only the point-*variant* work:
//!
//! - unrolled bodies are assembled from a cache of offset copies of the
//!   base innermost body, keyed by offset tuple. The offset tuples of
//!   factor vector `U` are a subset of those of any component-wise larger
//!   vector, so the doubling chains and bisections of the paper's Figure 2
//!   search (and the exhaustive sweeps) reuse every copy built for a
//!   smaller factor — a design at `2u` is derived from the cached copies
//!   of the design at `u` plus only the new offsets;
//! - on the default path (scalar replacement on, per-pass verification
//!   off) the jammed body is never even concatenated: scalar replacement
//!   reads the cached copies through statement references and rebuilds
//!   the nest itself, so the `P(U)`-statement intermediate kernel is
//!   skipped entirely;
//! - the unrolled body's uniformly generated sets are derived
//!   analytically from the base analyses ([`defacto_analysis::jam`])
//!   instead of re-walking the `P(U)`-times larger body, and each set's
//!   distinct-offset list and conditional-member flag are served from
//!   per-point (respectively per-kernel) caches;
//! - intermediate kernels are rebuilt with the unchecked constructors:
//!   re-validation (a pure structural check) is skipped because the
//!   transformed bodies are produced by the same code paths the validated
//!   scratch pipeline uses, and the equivalence property test pins the
//!   outputs against the scratch pipeline bit for bit.
//!
//! `transform` here is required to be *bit-identical* to
//! [`crate::transform`] on the same inputs — same kernels, same info,
//! same binding, same errors. `tests/incremental_equivalence.rs`
//! enforces this across the paper kernels' full design spaces.

use crate::error::{Result, VectorError, XformError};
use crate::layout::assign_memories;
use crate::normalize::normalize_loops;
use crate::peel::peel_first_iterations_lite;
use crate::pipeline::{TransformOptions, TransformedDesign, UnrollVector};
use crate::scalar::{scalar_replace_core, ScalarInput, ScalarOptions, ScalarReplacementInfo};
use crate::simplify::simplify_stmts;
use crate::unroll::offset_tuples;
use defacto_analysis::{
    analyze_dependences_with_bounds, jammed_uniform_sets, uniform_sets, AccessId, AccessTable,
    DependenceGraph, LegalitySummary, UniformSet,
};
use defacto_ir::visit::offset_vars_stmts;
use defacto_ir::{Kernel, Loop, Stmt};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// All point-invariant artifacts of one kernel's design-space walk; see
/// the module docs. Shared across evaluation workers behind an `Arc` —
/// the copy cache is internally synchronized.
#[derive(Debug)]
pub struct PreparedKernel {
    /// The normalized kernel every design point starts from.
    normalized: Kernel,
    /// Empty-bodied templates of the normalized nest's loops.
    loops: Vec<Loop>,
    /// Induction variables, outermost first.
    var_names: Vec<String>,
    /// The normalized innermost body.
    base_body: Vec<Stmt>,
    /// Access table of `base_body`.
    base_table: AccessTable,
    /// Uniformly generated sets of `base_table`.
    base_sets: Vec<UniformSet>,
    /// Per base set (keyed by its first member, which jamming preserves):
    /// does any member execute conditionally? Jamming replicates the
    /// flags verbatim, so the answer holds for every jammed set too.
    cond_flags: HashMap<AccessId, bool>,
    /// Dependences with the nest's bounds, input of jam legality.
    deps: DependenceGraph,
    /// Scalars carrying state across body iterations (rotate chains,
    /// reads before writes) — input of the carried-scalar jam legality.
    carried: Vec<String>,
    /// The whole-kernel legality summary: legal permutations, per-level
    /// tilability, jam safety, packing/narrowing applicability. Computed
    /// once here; every per-point check delegates to it.
    legality: LegalitySummary,
    /// Offset copies of `base_body`, keyed by full offset tuple. Copies
    /// are made directly from the base body (never from another copy:
    /// offsetting an already-offset copy would nest scalar-read rewrites
    /// differently than the scratch pipeline).
    copies: Mutex<HashMap<Vec<i64>, Arc<Vec<Stmt>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PreparedKernel {
    /// Run every point-invariant pipeline stage once.
    ///
    /// # Errors
    ///
    /// Fails exactly when the scratch pipeline would fail for *every*
    /// unroll vector: the kernel does not normalize or is not a perfect
    /// nest. Callers fall back to [`crate::transform`] in that case so
    /// per-point errors stay identical.
    pub fn prepare(kernel: &Kernel) -> Result<PreparedKernel> {
        let normalized = normalize_loops(kernel)?;
        let (loops, var_names, base_body) = {
            let nest = normalized
                .perfect_nest()
                .ok_or(XformError::NotPerfectNest)?;
            let loops: Vec<Loop> = nest
                .loops()
                .iter()
                .map(|l| Loop {
                    var: l.var.clone(),
                    lower: l.lower,
                    upper: l.upper,
                    step: l.step,
                    body: Vec::new(),
                })
                .collect();
            let var_names: Vec<String> = loops.iter().map(|l| l.var.clone()).collect();
            (loops, var_names, nest.innermost_body().to_vec())
        };
        let base_table = AccessTable::from_stmts(&base_body);
        let var_refs: Vec<&str> = var_names.iter().map(String::as_str).collect();
        let bounds: Vec<(i64, i64)> = loops.iter().map(|l| (l.lower, l.upper - 1)).collect();
        let deps = analyze_dependences_with_bounds(&base_table, &var_refs, &bounds);
        let base_sets = uniform_sets(&base_table, &var_refs);
        let cond_flags: HashMap<AccessId, bool> = base_sets
            .iter()
            .map(|s| {
                let any = s.members.iter().any(|&id| base_table.get(id).conditional);
                (s.members[0], any)
            })
            .collect();
        let carried = crate::unroll::carried_scalars(&base_body, &var_refs);
        let trips: Vec<i64> = loops.iter().map(Loop::trip_count).collect();
        let legality = LegalitySummary::from_parts(
            &normalized,
            &base_table,
            &var_refs,
            &trips,
            &deps,
            carried.clone(),
        );
        Ok(PreparedKernel {
            normalized,
            loops,
            var_names,
            base_body,
            base_table,
            base_sets,
            cond_flags,
            deps,
            carried,
            legality,
            copies: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Like [`Self::prepare`], reusing the point-invariant analyses — and
    /// the offset-copy cache — of a previously prepared kernel when the
    /// normalized nest is unchanged where it matters:
    ///
    /// - same innermost body and induction variables: the access table,
    ///   uniform sets, conditional flags, carried scalars and every
    ///   cached offset copy carry over (copies offset the base body only,
    ///   so they are bounds-independent);
    /// - same loop bounds on top of that: the dependence graph carries
    ///   over too, making the reuse total.
    ///
    /// Anything else falls back to a full [`Self::prepare`]. The result
    /// is indistinguishable from `prepare` — reuse is an equality-gated
    /// copy of artifacts that are pure functions of the compared inputs.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::prepare`].
    pub fn prepare_reusing(kernel: &Kernel, prev: &PreparedKernel) -> Result<PreparedKernel> {
        let normalized = normalize_loops(kernel)?;
        let (loops, var_names, base_body) = {
            let nest = normalized
                .perfect_nest()
                .ok_or(XformError::NotPerfectNest)?;
            let loops: Vec<Loop> = nest
                .loops()
                .iter()
                .map(|l| Loop {
                    var: l.var.clone(),
                    lower: l.lower,
                    upper: l.upper,
                    step: l.step,
                    body: Vec::new(),
                })
                .collect();
            let var_names: Vec<String> = loops.iter().map(|l| l.var.clone()).collect();
            (loops, var_names, nest.innermost_body().to_vec())
        };
        if base_body != prev.base_body || var_names != prev.var_names {
            return Self::prepare(kernel);
        }
        let same_bounds = loops.len() == prev.loops.len()
            && loops
                .iter()
                .zip(&prev.loops)
                .all(|(a, b)| (a.lower, a.upper, a.step) == (b.lower, b.upper, b.step));
        let deps = if same_bounds {
            prev.deps.clone()
        } else {
            let var_refs: Vec<&str> = var_names.iter().map(String::as_str).collect();
            let bounds: Vec<(i64, i64)> = loops.iter().map(|l| (l.lower, l.upper - 1)).collect();
            analyze_dependences_with_bounds(&prev.base_table, &var_refs, &bounds)
        };
        let copies = prev.copies.lock().expect("copy cache poisoned").clone();
        // The summary's packing/narrowing facts read the array decls
        // (types, range annotations), which the body/vars gate above does
        // not cover — require decl equality too before reusing it.
        let legality = if same_bounds && normalized.arrays() == prev.normalized.arrays() {
            prev.legality.clone()
        } else {
            let var_refs: Vec<&str> = var_names.iter().map(String::as_str).collect();
            let trips: Vec<i64> = loops.iter().map(Loop::trip_count).collect();
            LegalitySummary::from_parts(
                &normalized,
                &prev.base_table,
                &var_refs,
                &trips,
                &deps,
                prev.carried.clone(),
            )
        };
        Ok(PreparedKernel {
            normalized,
            loops,
            var_names,
            base_body,
            base_table: prev.base_table.clone(),
            base_sets: prev.base_sets.clone(),
            cond_flags: prev.cond_flags.clone(),
            deps,
            carried: prev.carried.clone(),
            legality,
            copies: Mutex::new(copies),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Offset-copy cache statistics: `(hits, misses)` over all
    /// [`PreparedKernel::transform`] calls so far.
    pub fn copy_cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The normalized kernel every design point starts from.
    pub fn normalized(&self) -> &Kernel {
        &self.normalized
    }

    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Empty-bodied templates of the normalized nest's loops, outermost
    /// first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Induction variables, outermost first.
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// The normalized innermost body (pre-unroll).
    pub fn base_body(&self) -> &[Stmt] {
        &self.base_body
    }

    /// Uniformly generated sets of the base body.
    pub fn base_sets(&self) -> &[UniformSet] {
        &self.base_sets
    }

    pub(crate) fn base_table_len(&self) -> usize {
        self.base_table.len()
    }

    pub(crate) fn cond_flag(&self, first_member: AccessId) -> bool {
        self.cond_flags[&first_member]
    }

    /// Validate an unroll vector exactly the way [`Self::transform`]
    /// does, including jam legality — same errors, same order.
    ///
    /// # Errors
    ///
    /// The same per-point errors as [`crate::transform`].
    pub fn validate_factors(&self, factors: &[i64]) -> Result<()> {
        if factors.len() != self.loops.len() {
            return Err(XformError::BadUnrollVector(VectorError::WrongLength {
                got: factors.len(),
                depth: self.loops.len(),
            }));
        }
        for (l, loop_) in self.loops.iter().enumerate() {
            if !loop_.is_normalized() {
                return Err(XformError::BadUnrollVector(VectorError::NotNormalized {
                    var: loop_.var.clone(),
                }));
            }
            let u = factors[l];
            if u < 1 {
                return Err(XformError::BadUnrollVector(VectorError::BadFactor {
                    var: loop_.var.clone(),
                    factor: u,
                }));
            }
            if loop_.trip_count() % u != 0 {
                return Err(XformError::NonDividingFactor {
                    var: loop_.var.clone(),
                    trip: loop_.trip_count(),
                    factor: u,
                });
            }
        }
        // Jam legality — array dependences first, then the carried-scalar
        // rule, exactly as `unroll_and_jam` orders them. One delegating
        // call into the summary: space membership and this gate share the
        // predicate, so they can never disagree.
        if let Some(v) = self.legality.jam_violation(factors) {
            return Err(XformError::IllegalJam(v));
        }
        Ok(())
    }

    /// The whole-kernel legality summary computed by [`Self::prepare`]:
    /// legal permutations, per-level tilability and jam safety, carried
    /// scalars, packing/narrowing applicability.
    pub fn legality(&self) -> &LegalitySummary {
        &self.legality
    }

    /// Scalars carrying state across iterations of the base body (rotate
    /// register chains, scalars read before written). Non-empty means only
    /// innermost unroll factors are legal — see
    /// [`crate::unroll::carried_scalars`].
    pub fn carried_scalars(&self) -> &[String] {
        &self.carried
    }

    /// Evaluate one design point. Produces the same
    /// [`TransformedDesign`] (or the same error) as
    /// [`crate::transform`] on the prepared kernel.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::transform`].
    pub fn transform(
        &self,
        unroll: &UnrollVector,
        opts: &TransformOptions,
    ) -> Result<TransformedDesign> {
        let checkpoint = |stage: &'static str, k: &Kernel| -> Result<()> {
            if !opts.verify_each_pass {
                return Ok(());
            }
            let diagnostics = defacto_ir::verify(k);
            if diagnostics.is_empty() {
                Ok(())
            } else {
                Err(XformError::Verify { stage, diagnostics })
            }
        };
        checkpoint("loop normalization", &self.normalized)?;

        // Factor validation, in the scratch pipeline's order.
        let factors = unroll.factors();
        self.validate_factors(factors)?;

        // Fetch (building on miss) the cached offset copies of this
        // point's tuples.
        let tuples = offset_tuples(factors);
        let copies: Vec<Arc<Vec<Stmt>>> = {
            let mut cache = self.copies.lock().expect("copy cache poisoned");
            tuples
                .iter()
                .map(|t| {
                    if let Some(copy) = cache.get(t) {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        Arc::clone(copy)
                    } else {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        let deltas: Vec<(&str, i64)> = self
                            .var_names
                            .iter()
                            .map(String::as_str)
                            .zip(t.iter().copied())
                            .collect();
                        let copy = Arc::new(offset_vars_stmts(&self.base_body, &deltas));
                        cache.insert(t.clone(), Arc::clone(&copy));
                        copy
                    }
                })
                .collect()
        };

        // Materialize the unrolled kernel only when something observes
        // it: per-pass verification, or the no-scalar-replacement result.
        // On the default path it is skipped — scalar replacement reads
        // the copies through references and rebuilds the nest itself.
        let unrolled: Option<Kernel> = if opts.verify_each_pass || !opts.scalar_replacement {
            let mut body: Vec<Stmt> = Vec::with_capacity(self.base_body.len() * tuples.len());
            for copy in &copies {
                body.extend_from_slice(copy);
            }
            let mut stmts = body;
            for (l, loop_) in self.loops.iter().enumerate().rev() {
                stmts = vec![Stmt::For(Loop {
                    var: loop_.var.clone(),
                    lower: 0,
                    upper: loop_.upper,
                    step: factors[l],
                    body: stmts,
                })];
            }
            Some(self.normalized.with_body_unchecked(stmts))
        } else {
            None
        };
        if let Some(u) = &unrolled {
            checkpoint("unroll-and-jam", u)?;
        }

        let (replaced, info) = if opts.scalar_replacement {
            // Widened loop templates of the unrolled nest.
            let widened: Vec<Loop> = self
                .loops
                .iter()
                .enumerate()
                .map(|(l, loop_)| Loop {
                    var: loop_.var.clone(),
                    lower: 0,
                    upper: loop_.upper,
                    step: factors[l],
                    body: Vec::new(),
                })
                .collect();
            let sets = jammed_uniform_sets(&self.base_sets, self.base_table.len(), &tuples);
            // Memoize each set's distinct offsets for this point. Sets
            // partition the accesses, so the first member id identifies
            // its set uniquely.
            let distinct_cache: HashMap<AccessId, Vec<Vec<i64>>> = sets
                .iter()
                .map(|s| (s.members[0], s.distinct_offsets()))
                .collect();
            let body_refs: Vec<&Stmt> = copies.iter().flat_map(|c| c.iter()).collect();
            let (final_body, decls, info) = scalar_replace_core(
                &self.normalized,
                &ScalarInput {
                    loops: &widened,
                    vars: &self.var_names,
                    body: &body_refs,
                    sets: &sets,
                    conditional: &|s: &UniformSet| self.cond_flags[&s.members[0]],
                    distinct: &|s: &UniformSet| distinct_cache[&s.members[0]].clone(),
                },
                &ScalarOptions {
                    redundant_write_elim: opts.redundant_write_elim,
                    register_budget: opts.register_budget,
                },
            );
            (
                self.normalized
                    .with_body_and_temps_unchecked(final_body, decls),
                info,
            )
        } else {
            (
                unrolled.expect("materialized when scalar replacement is off"),
                ScalarReplacementInfo::default(),
            )
        };
        checkpoint("scalar replacement", &replaced)?;

        // Layout before peeling, exactly like the scratch pipeline.
        let binding = if opts.custom_layout {
            assign_memories(&replaced, opts.num_memories)
        } else {
            assign_memories(&replaced, 1)
        };

        let final_kernel = if opts.peel {
            peel_first_iterations_lite(&replaced)
        } else {
            replaced.with_body_unchecked(simplify_stmts(replaced.body()))
        };
        checkpoint(
            if opts.peel {
                "loop peeling"
            } else {
                "simplify"
            },
            &final_kernel,
        )?;

        Ok(TransformedDesign {
            kernel: final_kernel,
            unroll: unroll.clone(),
            info,
            binding,
        })
    }
}
