//! Custom data layout: array renaming and memory mapping (paper §4).
//!
//! The first phase, *array renaming*, distributes each renamable array
//! cyclically across virtual memories so that the accesses of one loop
//! body hit distinct banks. An array is renamable only when **all** of its
//! accesses in the nest are uniformly generated; otherwise it is mapped to
//! a single memory, exactly as the paper prescribes.
//!
//! The second phase, *memory mapping*, binds virtual to physical memories.
//! Following the paper's description, reads are considered first and
//! distributed evenly across the physical memories; each array's cyclic
//! phase is chosen greedily to balance the per-bank access counts, then
//! write accesses are balanced the same way.
//!
//! The binding is consumed by the behavioral-synthesis scheduler: it does
//! not rewrite the IR (renamed arrays with strided subscripts would leave
//! the affine domain) but fixes, for every access, which memory port it
//! contends for. A one-memory binding models the "no custom layout"
//! ablation.

use defacto_ir::stmt::collect_accesses;
use defacto_ir::{ArrayAccess, Kernel};
use std::collections::HashMap;

/// How one array is laid out across the external memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayLayout {
    /// Elements distributed cyclically: element `e` lives in bank
    /// `(e + phase) mod M`.
    Cyclic {
        /// Rotation applied during memory mapping to balance banks.
        phase: usize,
    },
    /// Whole array in one memory (not all accesses uniformly generated).
    Single {
        /// The bank holding the array.
        bank: usize,
    },
}

/// The virtual→physical memory binding of a transformed kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryBinding {
    num_memories: usize,
    layouts: HashMap<String, ArrayLayout>,
    strides: HashMap<String, Vec<i64>>,
}

impl MemoryBinding {
    /// Number of physical memories.
    pub fn num_memories(&self) -> usize {
        self.num_memories
    }

    /// The layout of `array`, if it was bound.
    pub fn layout(&self, array: &str) -> Option<ArrayLayout> {
        self.layouts.get(array).copied()
    }

    /// The memory bank an access contends for, evaluated at the
    /// representative iteration (all loop indices zero). For cyclic
    /// arrays the *relative* bank pattern of a loop body is
    /// iteration-invariant, which is what port scheduling needs.
    pub fn bank_of(&self, access: &ArrayAccess) -> usize {
        if self.num_memories <= 1 {
            return 0;
        }
        match self.layouts.get(&access.array) {
            Some(ArrayLayout::Single { bank }) => *bank,
            Some(ArrayLayout::Cyclic { phase }) => {
                let flat = self.flat_offset(access);
                (flat + *phase as i64).rem_euclid(self.num_memories as i64) as usize
            }
            // Unbound arrays (e.g. introduced after binding) default to
            // bank 0.
            None => 0,
        }
    }

    /// Row-major flattened constant offset of an access (the varying
    /// part of the subscripts contributes nothing — this is the same
    /// representative-iteration view `bank_of` uses).
    pub fn flat_offset(&self, access: &ArrayAccess) -> i64 {
        let strides = match self.strides.get(&access.array) {
            Some(s) => s,
            None => return 0,
        };
        access
            .indices
            .iter()
            .zip(strides)
            .map(|(idx, &stride)| idx.constant_term() * stride)
            .sum()
    }
}

/// Compute the memory binding for a (transformed) kernel.
///
/// Call this *before* peeling: peeled copies change coefficient
/// signatures (a substituted loop variable disappears) and would defeat
/// the renamability check, while `bank_of` keeps working on peeled
/// accesses because it only reads constant offsets.
pub fn assign_memories(kernel: &Kernel, num_memories: usize) -> MemoryBinding {
    let m = num_memories.max(1);
    let accesses = collect_accesses(kernel.body());
    let vars: Vec<String> = kernel.loop_vars();
    let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();

    // Row-major strides per array.
    let mut strides: HashMap<String, Vec<i64>> = HashMap::new();
    for a in kernel.arrays() {
        let mut s = vec![1i64; a.dims.len()];
        for d in (0..a.dims.len().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * a.dims[d + 1] as i64;
        }
        strides.insert(a.name.clone(), s);
    }

    // Renamability: all accesses of the array share one signature.
    let mut signatures: HashMap<&str, Vec<Vec<Vec<i64>>>> = HashMap::new();
    for (acc, _) in &accesses {
        let sig = acc.coeff_signature(&var_refs);
        let sigs = signatures.entry(acc.array.as_str()).or_default();
        if !sigs.contains(&sig) {
            sigs.push(sig);
        }
    }

    // Greedy phase/bank selection, reads before writes, in program order
    // of first appearance.
    let mut order: Vec<&str> = Vec::new();
    for (acc, is_write) in accesses.iter().filter(|(_, w)| !w) {
        let _ = is_write;
        if !order.contains(&acc.array.as_str()) {
            order.push(&acc.array);
        }
    }
    for (acc, _) in accesses.iter().filter(|(_, w)| *w) {
        if !order.contains(&acc.array.as_str()) {
            order.push(&acc.array);
        }
    }

    let mut bank_load = vec![0usize; m];
    let mut layouts: HashMap<String, ArrayLayout> = HashMap::new();
    let binding_probe = |layouts: &HashMap<String, ArrayLayout>| MemoryBinding {
        num_memories: m,
        layouts: layouts.clone(),
        strides: strides.clone(),
    };

    for array in order {
        let renamable = signatures.get(array).map(|s| s.len() == 1).unwrap_or(true);
        let candidates: Vec<ArrayLayout> = if renamable && m > 1 {
            (0..m).map(|phase| ArrayLayout::Cyclic { phase }).collect()
        } else {
            (0..m).map(|bank| ArrayLayout::Single { bank }).collect()
        };
        // Pick the candidate minimizing the per-bank load profile
        // (compared as the descending-sorted load vector, so a spread of
        // [2,1,1,0] beats a pile-up of [2,2,0,0]); ties keep the first
        // candidate, so the outcome is deterministic.
        let mut best: Option<(Vec<usize>, ArrayLayout, Vec<usize>)> = None;
        for cand in candidates {
            let mut trial = layouts.clone();
            trial.insert(array.to_string(), cand);
            let probe = binding_probe(&trial);
            let mut load = bank_load.clone();
            for (acc, _) in accesses.iter().filter(|(a, _)| a.array == array) {
                load[probe.bank_of(acc)] += 1;
            }
            let mut profile = load.clone();
            profile.sort_unstable_by(|a, b| b.cmp(a));
            if best.as_ref().map(|(b, _, _)| profile < *b).unwrap_or(true) {
                best = Some((profile, cand, load));
            }
        }
        let (_, chosen, load) = best.expect("at least one candidate");
        layouts.insert(array.to_string(), chosen);
        bank_load = load;
    }

    MemoryBinding {
        num_memories: m,
        layouts,
        strides,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unroll::unroll_and_jam;
    use defacto_ir::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn cyclic_layout_separates_consecutive_offsets() {
        let k = parse_kernel(FIR).unwrap();
        let u = unroll_and_jam(&k, &[2, 2]).unwrap();
        let b = assign_memories(&u, 4);
        assert_eq!(b.num_memories(), 4);
        assert!(matches!(b.layout("S"), Some(ArrayLayout::Cyclic { .. })));
        // The three S offsets (0, 1, 2) land in three distinct banks.
        let nest = u.perfect_nest().unwrap();
        let banks: Vec<usize> = defacto_ir::stmt::collect_accesses(nest.innermost_body())
            .iter()
            .filter(|(a, w)| a.array == "S" && !w)
            .map(|(a, _)| b.bank_of(a))
            .collect();
        let mut unique = banks.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 3, "banks {banks:?}");
    }

    #[test]
    fn non_uniform_array_gets_single_memory() {
        let k = parse_kernel(
            "kernel nu { in A: i32[130]; out B: i32[64];
               for i in 0..64 { B[i] = A[i] + A[2*i]; } }",
        )
        .unwrap();
        let b = assign_memories(&k, 4);
        assert!(matches!(b.layout("A"), Some(ArrayLayout::Single { .. })));
        assert!(matches!(b.layout("B"), Some(ArrayLayout::Cyclic { .. })));
    }

    #[test]
    fn single_memory_configuration() {
        let k = parse_kernel(FIR).unwrap();
        let b = assign_memories(&k, 1);
        let nest = k.perfect_nest().unwrap();
        for (a, _) in defacto_ir::stmt::collect_accesses(nest.innermost_body()) {
            assert_eq!(b.bank_of(&a), 0);
        }
    }

    #[test]
    fn two_dimensional_strides() {
        let k = parse_kernel(
            "kernel td { in A: i32[8][8]; out B: i32[8][8];
               for i in 0..8 { for j in 0..8 {
                 B[i][j] = A[i][j]; } } }",
        )
        .unwrap();
        let b = assign_memories(&k, 4);
        // Row-major: A[0][1] and A[1][0] differ by 1 vs 8 flat elements.
        use defacto_ir::AffineExpr;
        let a01 = ArrayAccess::new(
            "A",
            vec![
                AffineExpr::var("i"),
                AffineExpr::var("j") + AffineExpr::constant(1),
            ],
        );
        let a10 = ArrayAccess::new(
            "A",
            vec![
                AffineExpr::var("i") + AffineExpr::constant(1),
                AffineExpr::var("j"),
            ],
        );
        let base = ArrayAccess::new("A", vec![AffineExpr::var("i"), AffineExpr::var("j")]);
        let m = b.num_memories() as i64;
        let b0 = b.bank_of(&base) as i64;
        assert_eq!((b.bank_of(&a01) as i64 - b0).rem_euclid(m), 1);
        assert_eq!((b.bank_of(&a10) as i64 - b0).rem_euclid(m), 8 % m);
    }

    #[test]
    fn binding_is_deterministic() {
        let k = parse_kernel(FIR).unwrap();
        let b1 = assign_memories(&k, 4);
        let b2 = assign_memories(&k, 4);
        assert_eq!(b1, b2);
    }

    #[test]
    fn phases_balance_bank_load() {
        // Two arrays with identical access patterns should not pile onto
        // the same banks.
        let k = parse_kernel(
            "kernel bal { in A: i32[64]; in B: i32[64]; out C: i32[64];
               for i in 0..64 step 4 { C[i] = A[i] + B[i]; } }",
        )
        .unwrap();
        let b = assign_memories(&k, 4);
        use defacto_ir::AffineExpr;
        let a = ArrayAccess::new("A", vec![AffineExpr::var("i")]);
        let bb = ArrayAccess::new("B", vec![AffineExpr::var("i")]);
        assert_ne!(b.bank_of(&a), b.bank_of(&bb));
    }
}
