//! Loop normalization: rewrite every loop to a zero lower bound and unit
//! step, substituting `var := step·var' + lower` into the body.
//!
//! Downstream transformations (unrolling, scalar replacement, tiling)
//! assume normalized loops; the pipeline runs this pass first.

use crate::error::Result;
use defacto_ir::visit::{map_accesses_stmts, map_scalar_reads_stmt};
use defacto_ir::{AffineExpr, Expr, Kernel, Loop, Stmt};

/// Normalize every loop in the kernel.
///
/// # Errors
///
/// Propagates IR validation failures when rebuilding the kernel.
pub fn normalize_loops(kernel: &Kernel) -> Result<Kernel> {
    let body = normalize_stmts(kernel.body());
    Ok(kernel.with_body(body)?)
}

fn normalize_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::For(l) => Stmt::For(normalize_loop(l)),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => Stmt::If {
                cond: cond.clone(),
                then_body: normalize_stmts(then_body),
                else_body: normalize_stmts(else_body),
            },
            other => other.clone(),
        })
        .collect()
}

fn normalize_loop(l: &Loop) -> Loop {
    let mut body = normalize_stmts(&l.body);
    if !l.is_normalized() {
        // var := step·var + lower in affine subscripts...
        let replacement = AffineExpr::var(l.var.clone()) * l.step + AffineExpr::constant(l.lower);
        body = map_accesses_stmts(&body, &mut |a| {
            a.map_indices(|e| e.substitute(&l.var, &replacement))
        });
        // ... and in scalar reads of the induction variable.
        let (step, lower, var) = (l.step, l.lower, l.var.clone());
        body = body
            .iter()
            .map(|s| {
                map_scalar_reads_stmt(s, &mut |n| {
                    if n == var {
                        Some(Expr::add(
                            Expr::mul(Expr::Int(step), Expr::scalar(var.clone())),
                            Expr::Int(lower),
                        ))
                    } else {
                        None
                    }
                })
            })
            .collect();
    }
    Loop {
        var: l.var.clone(),
        lower: 0,
        upper: l.trip_count(),
        step: 1,
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::{parse_kernel, run_with_inputs};

    #[test]
    fn already_normalized_is_unchanged() {
        let k = parse_kernel(
            "kernel n { in A: i32[8]; out B: i32[8];
               for i in 0..8 { B[i] = A[i]; } }",
        )
        .unwrap();
        assert_eq!(normalize_loops(&k).unwrap(), k);
    }

    #[test]
    fn shifts_lower_bound() {
        let k = parse_kernel(
            "kernel s { in A: i16[66]; out B: i16[66];
               for i in 1..65 { B[i] = A[i - 1] + A[i + 1]; } }",
        )
        .unwrap();
        let n = normalize_loops(&k).unwrap();
        let nest = n.perfect_nest().unwrap();
        assert_eq!(nest.loop_at(0).lower, 0);
        assert_eq!(nest.loop_at(0).upper, 64);
        // Semantics preserved.
        let input: Vec<i64> = (0..66).map(|x| x * 3 - 50).collect();
        let (w1, _) = run_with_inputs(&k, &[("A", input.clone())]).unwrap();
        let (w2, _) = run_with_inputs(&n, &[("A", input)]).unwrap();
        assert_eq!(w1.array("B"), w2.array("B"));
    }

    #[test]
    fn rescales_step() {
        let k = parse_kernel(
            "kernel st { in A: i32[32]; out B: i32[32];
               for i in 2..30 step 4 { B[i] = A[i + 1]; } }",
        )
        .unwrap();
        let n = normalize_loops(&k).unwrap();
        let nest = n.perfect_nest().unwrap();
        assert!(nest.loop_at(0).is_normalized());
        assert_eq!(nest.loop_at(0).trip_count(), 7);
        let input: Vec<i64> = (0..32).map(|x| x * x).collect();
        let (w1, _) = run_with_inputs(&k, &[("A", input.clone())]).unwrap();
        let (w2, _) = run_with_inputs(&n, &[("A", input)]).unwrap();
        assert_eq!(w1.array("B"), w2.array("B"));
    }

    #[test]
    fn normalizes_nested_loops_and_scalar_uses() {
        let k = parse_kernel(
            "kernel ns { out B: i32[8][8]; var t: i32;
               for i in 1..8 { for j in 2..8 step 2 {
                 t = i * 10 + j;
                 B[i][j] = t;
               } } }",
        )
        .unwrap();
        let n = normalize_loops(&k).unwrap();
        let (w1, _) = run_with_inputs(&k, &[]).unwrap();
        let (w2, _) = run_with_inputs(&n, &[]).unwrap();
        assert_eq!(w1.array("B"), w2.array("B"));
        let nest = n.perfect_nest().unwrap();
        assert!(nest.loops().iter().all(|l| l.is_normalized()));
    }
}
