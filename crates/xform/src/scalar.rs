//! Scalar replacement, loop-invariant code motion and redundant-write
//! elimination.
//!
//! Operating on the (normalized, unrolled) perfect nest, this pass
//! replaces array references by compiler-introduced registers so that
//! behavioral synthesis exploits data reuse on chip (paper §4,
//! Figure 1(c)). It differs from classic Carr–Kennedy scalar replacement
//! in exactly the two ways the paper describes: redundant memory *writes*
//! on output dependences are eliminated, and reuse is exploited across
//! **all** loops in the nest, not just the innermost one.
//!
//! Per uniformly generated set, the reuse classification of
//! [`defacto_analysis::reuse`] selects one of four code patterns:
//!
//! 1. **Accumulator** (read+write sets, invariant in the innermost
//!    loop(s)): the value lives in a register across the invariant loops —
//!    the load hoists above them, the store sinks below them, and all
//!    intermediate stores disappear (redundant-write elimination). This is
//!    the FIR `D[j]` pattern.
//! 2. **Register chain** (read-only, recurring across an outer loop): the
//!    full footprint is kept in a rotating register chain, loaded on the
//!    first iteration of the reuse loop (guarded by `if (var == 0)`,
//!    which [`crate::peel`] turns into a peeled iteration) and rotated
//!    once per iteration of the deepest varying loop. This is the FIR
//!    `C[i]` pattern.
//! 3. **Rolling window** (read-only, consistent distances along the
//!    deepest loop): a window of `span` registers shifts by the loop step
//!    each iteration; only the `step` new elements are loaded. This is
//!    the JAC/SOBEL stencil pattern.
//! 4. **Load dedup/hoist**: remaining loads of store-free arrays move to
//!    the top of the body, one register per distinct address (the `S_0`
//!    temporary of Figure 1(c)); duplicated addresses are loaded once.

use crate::error::{Result, XformError};
use defacto_analysis::{
    classify_set_bounded, uniform_sets, AccessTable, ReuseStrategy, UniformSet,
};
use defacto_ir::decl::ScalarDecl;
use defacto_ir::{AffineExpr, ArrayAccess, BinOp, Expr, Kernel, LValue, Loop, ScalarType, Stmt};
use std::collections::{HashMap, HashSet};

/// Statistics and bookkeeping produced by [`scalar_replace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScalarReplacementInfo {
    /// Registers introduced for carried reuse (accumulators, chains,
    /// windows).
    pub reuse_registers: usize,
    /// Registers introduced by body-local load dedup/hoisting.
    pub temp_registers: usize,
    /// Number of register chains (rotating groups) introduced.
    pub chains: usize,
    /// Uniformly generated sets whose carried reuse was *not* exploited
    /// (inconsistent, conditional, aliased, or dropped by the register
    /// budget).
    pub unexploited_sets: usize,
    /// Sets dropped specifically because of the register budget (§5.4).
    pub dropped_by_budget: usize,
}

impl ScalarReplacementInfo {
    /// Total registers introduced.
    pub fn total_registers(&self) -> usize {
        self.reuse_registers + self.temp_registers
    }
}

/// Options controlling scalar replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarOptions {
    /// Eliminate redundant memory writes on output dependences (paper
    /// difference (1) from prior work). Disabling this also disables
    /// accumulator registers, since they subsume the intermediate writes.
    pub redundant_write_elim: bool,
    /// Maximum registers to spend on carried reuse; chains/windows are
    /// dropped greedily (largest first) to respect it (paper §5.4).
    pub register_budget: Option<usize>,
}

impl Default for ScalarOptions {
    fn default() -> Self {
        ScalarOptions {
            redundant_write_elim: true,
            register_budget: None,
        }
    }
}

/// Supplier of a set's distinct constant-offset vectors.
///
/// [`UniformSet::distinct_offsets`] is a pure function, so any supplier
/// returning its value is behavior-preserving; the prepared evaluation
/// path caches the (sorted, deduplicated) lists per set instead of
/// re-sorting the full member list at every use.
pub(crate) type DistinctFn<'a> = dyn Fn(&UniformSet) -> Vec<Vec<i64>> + 'a;

/// The inputs of [`scalar_replace_core`]: the nest shape for this design
/// point plus the body's access analyses. The scratch path computes them
/// from the kernel; the prepared path derives them analytically from the
/// base body's analyses.
pub(crate) struct ScalarInput<'a> {
    /// Empty-bodied loop templates, outermost first (steps already
    /// widened by unrolling).
    pub loops: &'a [Loop],
    /// Induction variables, outermost first.
    pub vars: &'a [String],
    /// The innermost (jammed) body, as statement references — the
    /// prepared path feeds cached copies without concatenating them into
    /// one owned body.
    pub body: &'a [&'a Stmt],
    /// Uniformly generated sets of `body` over `vars`.
    pub sets: &'a [UniformSet],
    /// Whether any member of the set is conditionally executed (under an
    /// `if`). The scratch path answers from the body's access table; the
    /// prepared path answers from the base body's flags, which jamming
    /// replicates verbatim.
    pub conditional: &'a dyn Fn(&UniformSet) -> bool,
    /// Distinct-offset supplier (see [`DistinctFn`]).
    pub distinct: &'a DistinctFn<'a>,
}

/// Apply scalar replacement to a normalized (possibly unrolled) perfect
/// nest.
///
/// # Errors
///
/// Fails when the kernel body is not a perfect loop nest, or when the
/// rebuilt kernel fails IR validation.
pub fn scalar_replace(
    kernel: &Kernel,
    opts: &ScalarOptions,
) -> Result<(Kernel, ScalarReplacementInfo)> {
    let nest = kernel.perfect_nest().ok_or(XformError::NotPerfectNest)?;
    let vars: Vec<String> = nest.loops().iter().map(|l| l.var.clone()).collect();
    let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
    let loops: Vec<Loop> = nest
        .loops()
        .iter()
        .map(|l| Loop {
            var: l.var.clone(),
            lower: l.lower,
            upper: l.upper,
            step: l.step,
            body: Vec::new(),
        })
        .collect();
    let body = nest.innermost_body();
    let table = AccessTable::from_stmts(body);
    let sets = uniform_sets(&table, &var_refs);
    let body_refs: Vec<&Stmt> = body.iter().collect();
    let (final_body, decls, info) = scalar_replace_core(
        kernel,
        &ScalarInput {
            loops: &loops,
            vars: &vars,
            body: &body_refs,
            sets: &sets,
            conditional: &|s: &UniformSet| members_conditional(&table, Some(s)),
            distinct: &|s: &UniformSet| s.distinct_offsets(),
        },
        opts,
    );
    let kernel2 = kernel.with_body_and_temps(final_body, decls)?;
    Ok((kernel2, info))
}

/// The planning and rewriting shared by the scratch and prepared paths,
/// returning the rebuilt body and the temporary declarations instead of a
/// validated kernel (the caller decides whether to revalidate).
pub(crate) fn scalar_replace_core(
    kernel: &Kernel,
    input: &ScalarInput<'_>,
    opts: &ScalarOptions,
) -> (Vec<Stmt>, Vec<ScalarDecl>, ScalarReplacementInfo) {
    let depth = input.loops.len();
    let vars = input.vars;
    let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
    let loops = input.loops;
    let trips: Vec<i64> = loops.iter().map(Loop::trip_count).collect();
    let body = input.body;
    let sets = input.sets;

    let mut names = NameGen::new(kernel, vars);
    let mut plan = Plan::new(depth);
    let mut info = ScalarReplacementInfo::default();

    // Group read/write sets by (array, signature).
    let mut groups: Vec<Group<'_>> = Vec::new();
    for set in sets {
        match groups
            .iter_mut()
            .find(|g| g.array == set.array && *g.signature == set.signature)
        {
            Some(g) => {
                if set.is_write {
                    g.write = Some(set);
                } else {
                    g.read = Some(set);
                }
            }
            None => groups.push(Group {
                array: &set.array,
                signature: &set.signature,
                read: (!set.is_write).then_some(set),
                write: set.is_write.then_some(set),
            }),
        }
    }

    // Arrays with multiple write signatures, or written non-uniformly with
    // respect to a read set, are unsafe to replace.
    let write_sigs: HashMap<&str, Vec<&Vec<Vec<i64>>>> = {
        let mut m: HashMap<&str, Vec<&Vec<Vec<i64>>>> = HashMap::new();
        for s in sets.iter().filter(|s| s.is_write) {
            m.entry(s.array.as_str()).or_default().push(&s.signature);
        }
        m
    };

    // First phase: plan carried-reuse replacements with their register
    // costs so the §5.4 budget can drop the largest ones.
    let mut carried: Vec<CarriedPlan<'_>> = Vec::new();

    for g in &groups {
        let any_conditional = g.read.map(input.conditional).unwrap_or(false)
            || g.write.map(input.conditional).unwrap_or(false);
        let foreign_writes = write_sigs
            .get(g.array)
            .map(|sigs| sigs.iter().any(|s| **s != *g.signature))
            .unwrap_or(false);
        if any_conditional || foreign_writes {
            info.unexploited_sets += (g.read.is_some() as usize) + (g.write.is_some() as usize);
            continue;
        }
        let probe = g.read.or(g.write).expect("group has a set");
        let strategy = classify_set_bounded(probe, &trips);
        match (&strategy, g.read, g.write) {
            // Accumulator: read+write, invariant in the innermost loop(s).
            (
                ReuseStrategy::Consistent {
                    deepest_varying,
                    hoist_inner,
                    ..
                },
                read,
                Some(write),
            ) if *hoist_inner >= 1 => {
                if !opts.redundant_write_elim {
                    info.unexploited_sets += 1 + read.is_some() as usize;
                    continue;
                }
                plan_accumulator(
                    &mut PlanCtx {
                        plan: &mut plan,
                        names: &mut names,
                        info: &mut info,
                        vars: &var_refs,
                        kernel,
                        distinct: input.distinct,
                    },
                    g,
                    read,
                    write,
                    *deepest_varying,
                );
            }
            // Pure reads.
            (ReuseStrategy::FullyInvariant, Some(read), None) => {
                plan_invariant(
                    &mut PlanCtx {
                        plan: &mut plan,
                        names: &mut names,
                        info: &mut info,
                        vars: &var_refs,
                        kernel,
                        distinct: input.distinct,
                    },
                    g,
                    read,
                );
            }
            (
                ReuseStrategy::Consistent {
                    deepest_varying,
                    hoist_inner,
                    ..
                },
                Some(read),
                None,
            ) if *hoist_inner >= 1 => {
                plan_hoisted_read(
                    &mut PlanCtx {
                        plan: &mut plan,
                        names: &mut names,
                        info: &mut info,
                        vars: &var_refs,
                        kernel,
                        distinct: input.distinct,
                    },
                    g,
                    read,
                    *deepest_varying,
                );
            }
            (
                ReuseStrategy::Consistent {
                    deepest_varying,
                    outer_reuse: Some(or),
                    ..
                },
                Some(read),
                None,
            ) => {
                if let Some(c) = plan_chain(
                    g,
                    read,
                    *deepest_varying,
                    *or,
                    loops,
                    &var_refs,
                    input.distinct,
                ) {
                    carried.push(c);
                }
            }
            (
                ReuseStrategy::Consistent {
                    deepest_varying,
                    outer_reuse: None,
                    hoist_inner: 0,
                },
                Some(read),
                None,
            ) => {
                if let Some(c) = plan_window(g, read, *deepest_varying, loops, input.distinct) {
                    carried.push(c);
                }
            }
            // Write-only sinkable stores.
            (
                ReuseStrategy::Consistent {
                    deepest_varying,
                    hoist_inner,
                    ..
                },
                None,
                Some(write),
            ) if *hoist_inner >= 1 => {
                if !opts.redundant_write_elim {
                    info.unexploited_sets += 1;
                    continue;
                }
                plan_accumulator(
                    &mut PlanCtx {
                        plan: &mut plan,
                        names: &mut names,
                        info: &mut info,
                        vars: &var_refs,
                        kernel,
                        distinct: input.distinct,
                    },
                    g,
                    None,
                    write,
                    *deepest_varying,
                );
            }
            _ => {
                info.unexploited_sets += (g.read.is_some() as usize) + (g.write.is_some() as usize);
            }
        }
    }

    // Apply the register budget: keep carried plans smallest-cost-first
    // until the budget is exhausted, dropping the rest (less reuse, fewer
    // registers — exactly the §5.4 trade-off).
    carried.sort_by_key(|c| c.cost);
    let mut remaining = opts
        .register_budget
        .map(|b| b.saturating_sub(info.reuse_registers))
        .unwrap_or(usize::MAX);
    for c in carried {
        if c.cost <= remaining {
            remaining -= c.cost;
            apply_carried(&mut plan, &mut names, &mut info, c, kernel, input.distinct);
        } else {
            info.dropped_by_budget += 1;
            info.unexploited_sets += 1;
        }
    }

    // Rewrite the innermost body.
    let mut new_body: Vec<Stmt> = Vec::new();
    new_body.append(&mut plan.body_prefix);
    for &s in body {
        new_body.extend(rewrite_stmt(s, &plan));
    }
    new_body.append(&mut plan.body_suffix);

    // Load dedup/hoist on the rewritten body.
    let new_body = hoist_remaining_loads(&mut names, &mut info, &new_body, kernel);

    // Reassemble the (now imperfect) nest: each loop level wraps its
    // hoisted loads, the inner nest, and its sunk stores.
    let mut stmts = new_body;
    for level in (0..depth).rev() {
        let body = if level == depth - 1 {
            stmts
        } else {
            let mut b = std::mem::take(&mut plan.pre[level]);
            b.extend(stmts);
            b.append(&mut plan.post[level]);
            b
        };
        stmts = vec![wrap_loop(&loops[level], body)];
    }
    let mut final_body = plan.top;
    final_body.extend(stmts);
    final_body.extend(plan.bottom);

    (final_body, names.decls, info)
}

fn wrap_loop(template: &Loop, body: Vec<Stmt>) -> Stmt {
    Stmt::For(Loop {
        var: template.var.clone(),
        lower: template.lower,
        upper: template.upper,
        step: template.step,
        body,
    })
}

struct Group<'a> {
    array: &'a str,
    signature: &'a Vec<Vec<i64>>,
    read: Option<&'a UniformSet>,
    write: Option<&'a UniformSet>,
}

/// Pending carried-reuse plan with its register cost (for the budget).
struct CarriedPlan<'a> {
    group_array: String,
    signature: Vec<Vec<i64>>,
    kind: CarriedKind<'a>,
    cost: usize,
}

enum CarriedKind<'a> {
    Chain {
        read: &'a UniformSet,
        outer_reuse: usize,
        lanes: Vec<Vec<i64>>,
        length: usize,
        invariant_guards: Vec<usize>,
        vars: Vec<String>,
    },
    Window {
        read: &'a UniformSet,
        deepest_varying: usize,
        window_dim: usize,
        lanes: Vec<(Vec<i64>, i64, i64)>, // (other-dim offsets key, min, max)
        step: i64,
        vars: Vec<String>,
    },
}

struct Plan {
    /// Per level: statements at the top of that loop's body (hoisted
    /// loads), only used for levels shallower than the innermost.
    pre: Vec<Vec<Stmt>>,
    /// Per level: statements at the bottom of that loop's body (sunk
    /// stores).
    post: Vec<Vec<Stmt>>,
    /// Start of the innermost body (chain guards, window loads).
    body_prefix: Vec<Stmt>,
    /// End of the innermost body (rotates).
    body_suffix: Vec<Stmt>,
    /// Before the whole nest.
    top: Vec<Stmt>,
    /// After the whole nest.
    bottom: Vec<Stmt>,
    /// Load rewrites: exact access → replacement register read.
    load_rewrites: HashMap<ArrayAccess, Expr>,
    /// Store rewrites: exact access → register name.
    store_rewrites: HashMap<ArrayAccess, String>,
}

impl Plan {
    fn new(depth: usize) -> Self {
        Plan {
            pre: vec![Vec::new(); depth],
            post: vec![Vec::new(); depth],
            body_prefix: Vec::new(),
            body_suffix: Vec::new(),
            top: Vec::new(),
            bottom: Vec::new(),
            load_rewrites: HashMap::new(),
            store_rewrites: HashMap::new(),
        }
    }
}

struct NameGen {
    used: HashSet<String>,
    decls: Vec<ScalarDecl>,
}

impl NameGen {
    fn new(kernel: &Kernel, loop_vars: &[String]) -> Self {
        let mut used: HashSet<String> = HashSet::new();
        for a in kernel.arrays() {
            used.insert(a.name.clone());
        }
        for s in kernel.scalars() {
            used.insert(s.name.clone());
        }
        for v in loop_vars {
            used.insert(v.clone());
        }
        NameGen {
            used,
            decls: Vec::new(),
        }
    }

    fn fresh(&mut self, base: &str, ty: ScalarType) -> String {
        let mut name = base.to_string();
        let mut n = 0;
        while self.used.contains(&name) {
            n += 1;
            name = format!("{base}_{n}");
        }
        self.used.insert(name.clone());
        self.decls.push(ScalarDecl::temp(name.clone(), ty));
        name
    }
}

/// The state every per-group planner mutates, bundled so the planners
/// take one context instead of five parallel arguments.
struct PlanCtx<'a> {
    plan: &'a mut Plan,
    names: &'a mut NameGen,
    info: &'a mut ScalarReplacementInfo,
    vars: &'a [&'a str],
    kernel: &'a Kernel,
    distinct: &'a DistinctFn<'a>,
}

fn members_conditional(table: &AccessTable, set: Option<&UniformSet>) -> bool {
    set.map(|s| s.members.iter().any(|&id| table.get(id).conditional))
        .unwrap_or(false)
}

/// Reconstruct the concrete `ArrayAccess` of a set member from signature
/// and constant offsets.
fn access_of(array: &str, signature: &[Vec<i64>], vars: &[&str], offsets: &[i64]) -> ArrayAccess {
    let indices = signature
        .iter()
        .zip(offsets)
        .map(|(row, &c)| {
            let mut e = AffineExpr::constant(c);
            for (v, &coeff) in vars.iter().zip(row) {
                e.add_term((*v).to_string(), coeff);
            }
            e
        })
        .collect();
    ArrayAccess::new(array, indices)
}

fn element_type(kernel: &Kernel, array: &str) -> ScalarType {
    kernel.array(array).map(|a| a.ty).unwrap_or(ScalarType::I32)
}

fn plan_accumulator(
    ctx: &mut PlanCtx<'_>,
    g: &Group<'_>,
    read: Option<&UniformSet>,
    write: &UniformSet,
    deepest_varying: usize,
) {
    let PlanCtx {
        plan,
        names,
        info,
        vars,
        kernel,
        distinct,
    } = ctx;
    let ty = element_type(kernel, g.array);
    // Registers for the union of read/write offsets.
    let write_offsets = distinct(write);
    let mut offsets: Vec<Vec<i64>> = write_offsets.clone();
    let read_offsets: Vec<Vec<i64>> = read.map(distinct).unwrap_or_default();
    for o in &read_offsets {
        if !offsets.contains(o) {
            offsets.push(o.clone());
        }
    }
    offsets.sort();
    let written: HashSet<Vec<i64>> = write_offsets.into_iter().collect();
    let base = g.array.to_lowercase();
    for off in &offsets {
        let reg = names.fresh(&format!("{base}_{}", join_offsets(off)), ty);
        let access = access_of(g.array, g.signature, vars, off);
        if read_offsets.contains(off) {
            // Hoisted initializing load.
            plan.pre[deepest_varying].push(Stmt::assign(
                LValue::scalar(reg.clone()),
                Expr::Load(access.clone()),
            ));
            plan.load_rewrites
                .insert(access.clone(), Expr::scalar(reg.clone()));
        }
        if written.contains(off) {
            // Sunk final store; intermediate stores are eliminated.
            plan.post[deepest_varying].push(Stmt::assign(
                LValue::Array(access.clone()),
                Expr::scalar(reg.clone()),
            ));
            plan.store_rewrites.insert(access, reg.clone());
        }
        info.reuse_registers += 1;
    }
}

fn plan_invariant(ctx: &mut PlanCtx<'_>, g: &Group<'_>, read: &UniformSet) {
    let PlanCtx {
        plan,
        names,
        info,
        vars,
        kernel,
        distinct,
    } = ctx;
    let ty = element_type(kernel, g.array);
    let base = g.array.to_lowercase();
    for off in distinct(read) {
        let reg = names.fresh(&format!("{base}_{}", join_offsets(&off)), ty);
        let access = access_of(g.array, g.signature, vars, &off);
        plan.top.push(Stmt::assign(
            LValue::scalar(reg.clone()),
            Expr::Load(access.clone()),
        ));
        plan.load_rewrites.insert(access, Expr::scalar(reg));
        info.reuse_registers += 1;
    }
}

fn plan_hoisted_read(
    ctx: &mut PlanCtx<'_>,
    g: &Group<'_>,
    read: &UniformSet,
    deepest_varying: usize,
) {
    let PlanCtx {
        plan,
        names,
        info,
        vars,
        kernel,
        distinct,
    } = ctx;
    let ty = element_type(kernel, g.array);
    let base = g.array.to_lowercase();
    for off in distinct(read) {
        let reg = names.fresh(&format!("{base}_{}", join_offsets(&off)), ty);
        let access = access_of(g.array, g.signature, vars, &off);
        plan.pre[deepest_varying].push(Stmt::assign(
            LValue::scalar(reg.clone()),
            Expr::Load(access.clone()),
        ));
        plan.load_rewrites.insert(access, Expr::scalar(reg));
        info.reuse_registers += 1;
    }
}

fn plan_chain<'a>(
    g: &Group<'a>,
    read: &'a UniformSet,
    deepest_varying: usize,
    outer_reuse: usize,
    loops: &[Loop],
    vars: &[&str],
    distinct: &DistinctFn<'_>,
) -> Option<CarriedPlan<'a>> {
    // Chain length: iterations of the varying loops deeper than the reuse
    // loop (per lane).
    let varying = read.varying_levels();
    let mut length: i64 = 1;
    for &v in varying.iter().filter(|&&v| v > outer_reuse) {
        length *= loops[v].trip_count();
    }
    if length <= 0 || length > 4096 {
        return None; // degenerate or absurd chain
    }
    let lanes = distinct(read);
    let invariant_guards: Vec<usize> = (outer_reuse + 1..deepest_varying)
        .filter(|l| !varying.contains(l))
        .collect();
    let cost = lanes.len() * length as usize;
    Some(CarriedPlan {
        group_array: g.array.to_string(),
        signature: g.signature.clone(),
        kind: CarriedKind::Chain {
            read,
            outer_reuse,
            lanes,
            length: length as usize,
            invariant_guards,
            vars: vars.iter().map(|s| s.to_string()).collect(),
        },
        cost,
    })
}

fn plan_window<'a>(
    g: &Group<'a>,
    read: &'a UniformSet,
    deepest_varying: usize,
    loops: &[Loop],
    distinct: &DistinctFn<'_>,
) -> Option<CarriedPlan<'a>> {
    // Exactly one dimension must vary with the deepest loop.
    let dims: Vec<usize> = g
        .signature
        .iter()
        .enumerate()
        .filter(|(_, row)| row[deepest_varying] != 0)
        .map(|(d, _)| d)
        .collect();
    let [window_dim] = dims.as_slice() else {
        return None;
    };
    let window_dim = *window_dim;
    // The window shifts by coeff·step elements per iteration.
    let coeff = g.signature[window_dim][deepest_varying];
    if coeff != 1 {
        return None; // non-unit stride windows are left to plain loads
    }
    let step = loops[deepest_varying].step;
    // Group lanes by the offsets of all other dimensions (an index map
    // keeps this linear in the jammed offset count).
    let mut lanes: Vec<(Vec<i64>, i64, i64)> = Vec::new();
    let mut lane_index: HashMap<Vec<i64>, usize> = HashMap::new();
    for off in distinct(read) {
        let key: Vec<i64> = off
            .iter()
            .enumerate()
            .filter(|(d, _)| *d != window_dim)
            .map(|(_, &v)| v)
            .collect();
        let w = off[window_dim];
        match lane_index.get(&key) {
            Some(&i) => {
                let (_, lo, hi) = &mut lanes[i];
                *lo = (*lo).min(w);
                *hi = (*hi).max(w);
            }
            None => {
                lane_index.insert(key.clone(), lanes.len());
                lanes.push((key, w, w));
            }
        }
    }
    // Keep only lanes with carried reuse; others stay as plain loads.
    lanes.retain(|(_, lo, hi)| hi - lo + 1 > step);
    if lanes.is_empty() {
        return None;
    }
    let cost: i64 = lanes.iter().map(|(_, lo, hi)| hi - lo + 1).sum();
    let vars: Vec<String> = loops.iter().map(|l| l.var.clone()).collect();
    Some(CarriedPlan {
        group_array: g.array.to_string(),
        signature: g.signature.clone(),
        kind: CarriedKind::Window {
            read,
            deepest_varying,
            window_dim,
            lanes,
            step,
            vars,
        },
        cost: cost as usize,
    })
}

fn apply_carried(
    plan: &mut Plan,
    names: &mut NameGen,
    info: &mut ScalarReplacementInfo,
    c: CarriedPlan<'_>,
    kernel: &Kernel,
    distinct: &DistinctFn<'_>,
) {
    let ty = element_type(kernel, &c.group_array);
    let base = c.group_array.to_lowercase();
    match c.kind {
        CarriedKind::Chain {
            read,
            outer_reuse,
            lanes,
            length,
            invariant_guards,
            vars,
        } => {
            let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
            for (lane_idx, lane_off) in lanes.iter().enumerate() {
                let regs: Vec<String> = (0..length)
                    .map(|p| names.fresh(&format!("{base}_{lane_idx}_{p}"), ty))
                    .collect();
                // Guard: conjunction of `var == 0` for the reuse loop and
                // every invariant loop between it and the deepest varying
                // loop.
                let mut guard_levels = vec![outer_reuse];
                guard_levels.extend(invariant_guards.iter().copied());
                let mut cond: Option<Expr> = None;
                for &l in &guard_levels {
                    let eq = Expr::bin(BinOp::Eq, Expr::scalar(vars[l].clone()), Expr::Int(0));
                    cond = Some(match cond {
                        None => eq,
                        Some(c) => Expr::bin(BinOp::And, c, eq),
                    });
                }
                let access = access_of(&c.group_array, &c.signature, &var_refs, lane_off);
                plan.body_prefix.push(Stmt::If {
                    cond: cond.expect("at least the reuse loop guards"),
                    then_body: vec![Stmt::assign(
                        LValue::scalar(regs[0].clone()),
                        Expr::Load(access.clone()),
                    )],
                    else_body: vec![],
                });
                plan.load_rewrites
                    .insert(access, Expr::scalar(regs[0].clone()));
                if regs.len() >= 2 {
                    plan.body_suffix.push(Stmt::Rotate(regs.clone()));
                }
                info.reuse_registers += regs.len();
            }
            info.chains += lanes.len();
            let _ = read;
        }
        CarriedKind::Window {
            read,
            deepest_varying,
            window_dim,
            lanes,
            step,
            vars,
        } => {
            let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
            let all_offsets = distinct(read);
            // Group the offsets by lane key once, preserving their order
            // within each lane.
            let mut by_lane: HashMap<Vec<i64>, Vec<&Vec<i64>>> = HashMap::new();
            for off in &all_offsets {
                let key: Vec<i64> = off
                    .iter()
                    .enumerate()
                    .filter(|(d, _)| *d != window_dim)
                    .map(|(_, &v)| v)
                    .collect();
                by_lane.entry(key).or_default().push(off);
            }
            for (lane_idx, (_key, lo, hi)) in lanes.iter().enumerate() {
                let lane_offsets = &by_lane[_key];
                let span = (hi - lo + 1) as usize;
                let carried = span.saturating_sub(step as usize);
                let regs: Vec<String> = (0..span)
                    .map(|p| names.fresh(&format!("{base}_w{lane_idx}_{p}"), ty))
                    .collect();
                // Representative full offset vector for this lane with the
                // window dimension patched per position.
                let proto: Vec<i64> = lane_offsets[0].clone();
                let make_access = |wpos: i64| {
                    let mut off = proto.clone();
                    off[window_dim] = wpos;
                    access_of(&c.group_array, &c.signature, &var_refs, &off)
                };
                // First-iteration fill of the carried positions.
                if carried > 0 {
                    let guard = Expr::bin(
                        BinOp::Eq,
                        Expr::scalar(vars[deepest_varying].clone()),
                        Expr::Int(0),
                    );
                    let fills: Vec<Stmt> = regs[..carried]
                        .iter()
                        .enumerate()
                        .map(|(p, reg)| {
                            Stmt::assign(
                                LValue::scalar(reg.clone()),
                                Expr::Load(make_access(lo + p as i64)),
                            )
                        })
                        .collect();
                    plan.body_prefix.push(Stmt::If {
                        cond: guard,
                        then_body: fills,
                        else_body: vec![],
                    });
                }
                // Per-iteration loads of the new top elements.
                for (p, reg) in regs.iter().enumerate().skip(carried) {
                    plan.body_prefix.push(Stmt::assign(
                        LValue::scalar(reg.clone()),
                        Expr::Load(make_access(lo + p as i64)),
                    ));
                }
                // Body reads come from window positions.
                for off in lane_offsets {
                    let p = (off[window_dim] - lo) as usize;
                    let access = access_of(&c.group_array, &c.signature, &var_refs, off);
                    plan.load_rewrites
                        .insert(access, Expr::scalar(regs[p].clone()));
                }
                // Shift by `step` at the end of the body.
                if carried > 0 && regs.len() >= 2 {
                    for _ in 0..step {
                        plan.body_suffix.push(Stmt::Rotate(regs.clone()));
                    }
                }
                info.reuse_registers += span;
                info.chains += 1;
            }
        }
    }
}

/// Rewrite one body statement through the plan's load/store maps.
fn rewrite_stmt(s: &Stmt, plan: &Plan) -> Vec<Stmt> {
    match s {
        Stmt::Assign { lhs, rhs } => {
            let rhs = rhs.replace_loads(&mut |a| plan.load_rewrites.get(a).cloned());
            match lhs {
                LValue::Array(a) => match plan.store_rewrites.get(a) {
                    // Redundant-write elimination: the store becomes a
                    // register assignment; the final store was sunk.
                    Some(reg) => vec![Stmt::assign(LValue::scalar(reg.clone()), rhs)],
                    None => vec![Stmt::Assign {
                        lhs: LValue::Array(a.clone()),
                        rhs,
                    }],
                },
                LValue::Scalar(n) => vec![Stmt::Assign {
                    lhs: LValue::Scalar(n.clone()),
                    rhs,
                }],
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let cond = cond.replace_loads(&mut |a| plan.load_rewrites.get(a).cloned());
            vec![Stmt::If {
                cond,
                then_body: then_body
                    .iter()
                    .flat_map(|s| rewrite_stmt(s, plan))
                    .collect(),
                else_body: else_body
                    .iter()
                    .flat_map(|s| rewrite_stmt(s, plan))
                    .collect(),
            }]
        }
        other => vec![other.clone()],
    }
}

/// Hoist every remaining load of a store-free array to the top of the
/// body, one register per distinct address (loads of the same address
/// collapse — the paper's `S_0` temporary).
fn hoist_remaining_loads(
    names: &mut NameGen,
    info: &mut ScalarReplacementInfo,
    body: &[Stmt],
    kernel: &Kernel,
) -> Vec<Stmt> {
    // Arrays stored anywhere in the (new) body keep their loads in place.
    let mut stored: HashSet<String> = HashSet::new();
    collect_stored_arrays(body, &mut stored);

    // Distinct loads in first-occurrence order.
    let mut order: Vec<ArrayAccess> = Vec::new();
    let mut seen: HashSet<ArrayAccess> = HashSet::new();
    collect_loads(body, &stored, &mut seen, &mut order);
    if order.is_empty() {
        return body.to_vec();
    }

    let mut map: HashMap<ArrayAccess, Expr> = HashMap::new();
    let mut prefix: Vec<Stmt> = Vec::new();
    for a in &order {
        let ty = element_type(kernel, &a.array);
        let reg = names.fresh(&format!("{}_t{}", a.array.to_lowercase(), map.len()), ty);
        prefix.push(Stmt::assign(
            LValue::scalar(reg.clone()),
            Expr::Load(a.clone()),
        ));
        map.insert(a.clone(), Expr::scalar(reg));
        info.temp_registers += 1;
    }

    let mut out = prefix;
    for s in body {
        out.push(replace_loads_stmt(s, &map));
    }
    out
}

fn collect_stored_arrays(body: &[Stmt], out: &mut HashSet<String>) {
    for s in body {
        match s {
            Stmt::Assign { lhs, .. } => {
                if let Some(a) = lhs.as_array() {
                    out.insert(a.array.clone());
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_stored_arrays(then_body, out);
                collect_stored_arrays(else_body, out);
            }
            _ => {}
        }
    }
}

fn push_load(
    a: &ArrayAccess,
    stored: &HashSet<String>,
    seen: &mut HashSet<ArrayAccess>,
    out: &mut Vec<ArrayAccess>,
) {
    if !stored.contains(&a.array) && seen.insert(a.clone()) {
        out.push(a.clone());
    }
}

fn collect_loads(
    body: &[Stmt],
    stored: &HashSet<String>,
    seen: &mut HashSet<ArrayAccess>,
    out: &mut Vec<ArrayAccess>,
) {
    for s in body {
        match s {
            Stmt::Assign { rhs, .. } => {
                // Loads already feeding a load-hoist register (an
                // assignment whose rhs is exactly one load) still count —
                // but chain guards are `If` statements handled below; a
                // bare `reg = A[..]` prefix line would be double-hoisted,
                // so skip rhs that is exactly a single load into a scalar
                // introduced earlier in this same body prefix. Simpler and
                // sound: skip statements whose rhs is exactly a Load (they
                // are already single loads into registers).
                if matches!(rhs, Expr::Load(_)) {
                    continue;
                }
                for a in rhs.loads() {
                    push_load(a, stored, seen, out);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                for a in cond.loads() {
                    push_load(a, stored, seen, out);
                }
                // Conditional bodies: hoisting their loads makes them
                // unconditional, which is what the paper's generated code
                // does ("always performs conditional memory accesses").
                // Chain-guard fills (rhs exactly a load) stay conditional.
                collect_loads(then_body, stored, seen, out);
                collect_loads(else_body, stored, seen, out);
            }
            _ => {}
        }
    }
}

fn replace_loads_stmt(s: &Stmt, map: &HashMap<ArrayAccess, Expr>) -> Stmt {
    match s {
        Stmt::Assign { lhs, rhs } => {
            if matches!(rhs, Expr::Load(_)) {
                // Register-fill lines keep their load.
                return s.clone();
            }
            Stmt::Assign {
                lhs: lhs.clone(),
                rhs: rhs.replace_loads(&mut |a| map.get(a).cloned()),
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: cond.replace_loads(&mut |a| map.get(a).cloned()),
            then_body: then_body
                .iter()
                .map(|s| replace_loads_stmt(s, map))
                .collect(),
            else_body: else_body
                .iter()
                .map(|s| replace_loads_stmt(s, map))
                .collect(),
        },
        other => other.clone(),
    }
}

fn join_offsets(off: &[i64]) -> String {
    off.iter()
        .map(|v| {
            if *v < 0 {
                format!("m{}", -v)
            } else {
                v.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize_loops;
    use crate::unroll::unroll_and_jam;
    use defacto_ir::{parse_kernel, run_with_inputs};

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    fn fir_inputs() -> Vec<(&'static str, Vec<i64>)> {
        vec![
            ("S", (0..96).map(|x| (x * 7 % 23) - 11).collect()),
            ("C", (0..32).map(|x| (x * 5 % 17) - 8).collect()),
        ]
    }

    #[test]
    fn fir_semantics_preserved() {
        let k = parse_kernel(FIR).unwrap();
        let inputs = fir_inputs();
        let (w0, s0) = run_with_inputs(&k, &inputs).unwrap();
        for factors in [[1i64, 1], [2, 2], [4, 8], [8, 4]] {
            let u = unroll_and_jam(&k, &factors).unwrap();
            let (r, _info) = scalar_replace(&u, &ScalarOptions::default()).unwrap();
            let (w1, _) = run_with_inputs(&r, &inputs).unwrap();
            assert_eq!(w0.array("D"), w1.array("D"), "factors {factors:?}\n{r}");
        }
        let _ = s0;
    }

    #[test]
    fn fir_memory_traffic_is_cut() {
        let k = parse_kernel(FIR).unwrap();
        let inputs = fir_inputs();
        let (_, s0) = run_with_inputs(&k, &inputs).unwrap();
        let u = unroll_and_jam(&k, &[2, 2]).unwrap();
        let (r, info) = scalar_replace(&u, &ScalarOptions::default()).unwrap();
        let (_, s1) = run_with_inputs(&r, &inputs).unwrap();

        // Original: S loaded 2048 times; replaced: 3 loads per unrolled
        // body × 512 bodies = 1536.
        assert_eq!(s0.loads_by_array["S"], 2048);
        assert_eq!(s1.loads_by_array["S"], 3 * 512);
        // C: loaded only during the first j iteration: 32 loads.
        assert_eq!(s0.loads_by_array["C"], 2048);
        assert_eq!(s1.loads_by_array["C"], 32);
        // D: one load + one store per j value.
        assert_eq!(s1.loads_by_array["D"], 64);
        assert_eq!(s1.stores_by_array["D"], 64);
        assert_eq!(s0.stores_by_array["D"], 2048);

        // Registers: d×2, C chains 2×16, S temps 3.
        assert_eq!(info.reuse_registers, 2 + 32);
        assert_eq!(info.temp_registers, 3);
        assert_eq!(info.chains, 2);
    }

    #[test]
    fn redundant_write_elim_can_be_disabled() {
        let k = parse_kernel(FIR).unwrap();
        let inputs = fir_inputs();
        let u = unroll_and_jam(&k, &[2, 2]).unwrap();
        let opts = ScalarOptions {
            redundant_write_elim: false,
            register_budget: None,
        };
        let (r, _info) = scalar_replace(&u, &opts).unwrap();
        let (w1, s1) = run_with_inputs(&r, &inputs).unwrap();
        let (w0, _) = run_with_inputs(&k, &inputs).unwrap();
        assert_eq!(w0.array("D"), w1.array("D"));
        // Stores are NOT eliminated.
        assert_eq!(s1.stores_by_array["D"], 2048);
    }

    #[test]
    fn register_budget_drops_chains() {
        let k = parse_kernel(FIR).unwrap();
        let inputs = fir_inputs();
        let u = unroll_and_jam(&k, &[2, 2]).unwrap();
        let opts = ScalarOptions {
            redundant_write_elim: true,
            register_budget: Some(8), // too small for the 32-register C chain
        };
        let (r, info) = scalar_replace(&u, &opts).unwrap();
        assert_eq!(info.dropped_by_budget, 1);
        assert!(info.reuse_registers <= 8 + 2); // accumulators exempt
        let (w1, s1) = run_with_inputs(&r, &inputs).unwrap();
        let (w0, _) = run_with_inputs(&k, &inputs).unwrap();
        assert_eq!(w0.array("D"), w1.array("D"));
        // C is loaded every iteration again (2 loads per body × 512).
        assert_eq!(s1.loads_by_array["C"], 2 * 512);
    }

    #[test]
    fn stencil_window_reuse() {
        let st = parse_kernel(
            "kernel st { in A: i16[66]; out B: i16[64];
               for i in 0..64 { B[i] = A[i] + A[i + 1] + A[i + 2]; } }",
        )
        .unwrap();
        let input: Vec<i64> = (0..66).map(|x| x * 3 - 40).collect();
        let (w0, s0) = run_with_inputs(&st, &[("A", input.clone())]).unwrap();
        let (r, info) = scalar_replace(&st, &ScalarOptions::default()).unwrap();
        let (w1, s1) = run_with_inputs(&r, &[("A", input)]).unwrap();
        assert_eq!(w0.array("B"), w1.array("B"), "{r}");
        assert_eq!(s0.loads_by_array["A"], 3 * 64);
        // Window: 1 new load per iteration + 2 fills on the first.
        assert_eq!(s1.loads_by_array["A"], 64 + 2);
        assert_eq!(info.chains, 1);
        assert_eq!(info.reuse_registers, 3);
    }

    #[test]
    fn matmul_inner_loop_has_no_memory_accesses() {
        let mm = parse_kernel(
            "kernel mm { in A: i32[32][16]; in B: i32[16][4]; inout C: i32[32][4];
               for i in 0..32 { for j in 0..4 { for k in 0..16 {
                 C[i][j] = C[i][j] + A[i][k] * B[k][j]; } } } }",
        )
        .unwrap();
        let a: Vec<i64> = (0..512).map(|x| (x % 11) - 5).collect();
        let b: Vec<i64> = (0..64).map(|x| (x % 7) - 3).collect();
        let (w0, _) = run_with_inputs(&mm, &[("A", a.clone()), ("B", b.clone())]).unwrap();
        let (r, _) = scalar_replace(&mm, &ScalarOptions::default()).unwrap();
        let (w1, s1) = run_with_inputs(&r, &[("A", a.clone()), ("B", b.clone())]).unwrap();
        assert_eq!(w0.array("C"), w1.array("C"), "{r}");
        // The paper: "through loop-invariant code motion the compiler has
        // eliminated all memory accesses in the innermost loop" — loads of
        // A and B happen only on first iterations of their reuse loops.
        assert_eq!(s1.loads_by_array["A"], 32 * 16); // once per (i,k)
        assert_eq!(s1.loads_by_array["B"], 16 * 4); // once per (k,j)
        assert_eq!(s1.loads_by_array["C"], 32 * 4);
        assert_eq!(s1.stores_by_array["C"], 32 * 4);
    }

    #[test]
    fn conditional_accesses_are_not_replaced() {
        let k = parse_kernel(
            "kernel cd { in A: i32[8]; inout B: i32[4];
               for j in 0..4 { for i in 0..8 {
                 if (A[i] > 0) { B[j] = B[j] + A[i]; } } } }",
        )
        .unwrap();
        let a: Vec<i64> = vec![1, -2, 3, -4, 5, -6, 7, -8];
        let (w0, _) = run_with_inputs(&k, &[("A", a.clone())]).unwrap();
        let (r, _) = scalar_replace(&k, &ScalarOptions::default()).unwrap();
        let (w1, _) = run_with_inputs(&r, &[("A", a)]).unwrap();
        assert_eq!(w0.array("B"), w1.array("B"), "{r}");
    }

    #[test]
    fn aliased_writes_block_replacement() {
        // A read uniformly as A[i] but written as A[i+1]: replacing the
        // reads with registers would miss the updates.
        let k = parse_kernel(
            "kernel al { inout A: i32[65];
               for i in 0..64 { A[i + 1] = A[i] + 1; } }",
        )
        .unwrap();
        let (r, _info) = scalar_replace(&k, &ScalarOptions::default()).unwrap();
        let (w0, _) = run_with_inputs(&k, &[]).unwrap();
        let (w1, _) = run_with_inputs(&r, &[]).unwrap();
        assert_eq!(w0.array("A"), w1.array("A"), "{r}");
    }

    #[test]
    fn write_only_store_sinking() {
        // B[j] written every inner iteration; only the final value
        // matters.
        let k = parse_kernel(
            "kernel ws { in A: i32[8]; out B: i32[4];
               for j in 0..4 { for i in 0..8 {
                 B[j] = A[i] + j; } } }",
        )
        .unwrap();
        let a: Vec<i64> = (0..8).collect();
        let (w0, s0) = run_with_inputs(&k, &[("A", a.clone())]).unwrap();
        let (r, _) = scalar_replace(&k, &ScalarOptions::default()).unwrap();
        let (w1, s1) = run_with_inputs(&r, &[("A", a)]).unwrap();
        assert_eq!(w0.array("B"), w1.array("B"), "{r}");
        assert_eq!(s0.stores_by_array["B"], 32);
        assert_eq!(s1.stores_by_array["B"], 4);
    }

    #[test]
    fn normalized_stencil_with_offset_bounds() {
        let jac = parse_kernel(
            "kernel jac { in A: i16[10][10]; out B: i16[10][10];
               for i in 1..9 { for j in 1..9 {
                 B[i][j] = (A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]) / 4;
               } } }",
        )
        .unwrap();
        let n = normalize_loops(&jac).unwrap();
        let input: Vec<i64> = (0..100).map(|x| (x * 31 % 97) - 48).collect();
        let (w0, _) = run_with_inputs(&jac, &[("A", input.clone())]).unwrap();
        let (r, info) = scalar_replace(&n, &ScalarOptions::default()).unwrap();
        let (w1, s1) = run_with_inputs(&r, &[("A", input)]).unwrap();
        assert_eq!(w0.array("B"), w1.array("B"), "{r}");
        // Row i (offsets j-1, j+1): windowed, 3 registers; rows i±1 have a
        // single j offset each (span 1 = step): plain loads.
        assert!(info.chains >= 1);
        // Loads: rows i-1 and i+1 load 1 each per iteration; row i loads 1
        // per iteration plus 2 fills per row start (8 rows).
        assert_eq!(s1.loads_by_array["A"], 64 + 64 + 64 + 2 * 8);
    }
}
