//! Data-dependence analysis on affine array accesses.
//!
//! For *uniformly generated* pairs the analysis computes exact dependence
//! distance vectors by solving the affine system `M·d = Δ` (see
//! [`crate::linalg`]). Distances have three component kinds:
//!
//! - [`DistElem::Exact`]: a constant distance at that loop level;
//! - [`DistElem::Any`]: the references are invariant in that loop — a
//!   dependence exists at *every* distance (this is what makes, e.g., the
//!   FIR accumulator `D[j]` carried by the inner `i` loop);
//! - [`DistElem::Unknown`]: the level is coupled with others (e.g.
//!   `S[i+j]`) and no constant distance exists.
//!
//! For non-uniform pairs, the classic GCD and Banerjee tests prove
//! independence where possible; otherwise a conservative all-`Unknown`
//! dependence is recorded.

use crate::access::{AccessId, AccessTable};
use crate::linalg::{gcd_i64, solve_affine, VarSolution};

/// Classification of a dependence by the direction of data flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write → read (true dependence).
    Flow,
    /// Read → write.
    Anti,
    /// Write → write.
    Output,
    /// Read → read (not a real constraint; drives reuse analysis).
    Input,
}

impl DepKind {
    fn of(src_write: bool, dst_write: bool) -> DepKind {
        match (src_write, dst_write) {
            (true, false) => DepKind::Flow,
            (false, true) => DepKind::Anti,
            (true, true) => DepKind::Output,
            (false, false) => DepKind::Input,
        }
    }

    /// True for dependences that constrain execution order (everything but
    /// `Input`).
    pub fn constrains(self) -> bool {
        !matches!(self, DepKind::Input)
    }
}

/// One component of a dependence distance vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistElem {
    /// Constant distance.
    Exact(i64),
    /// Invariant loop: dependences exist at every distance.
    Any,
    /// Coupled with other levels: no constant distance.
    Unknown,
}

impl DistElem {
    /// True if the component can be non-zero.
    pub fn may_be_nonzero(self) -> bool {
        !matches!(self, DistElem::Exact(0))
    }

    /// True if the component can be zero.
    pub fn may_be_zero(self) -> bool {
        !matches!(self, DistElem::Exact(k) if k != 0)
    }
}

/// Where a dependence is carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarriedAt {
    /// All distance components are exactly zero: same-iteration dependence.
    Independent,
    /// Outermost level whose component can be non-zero.
    Level(usize),
}

/// A data dependence between two accesses of the same array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// The array involved.
    pub array: String,
    /// Flow/anti/output/input classification (after normalization so the
    /// distance is lexicographically non-negative).
    pub kind: DepKind,
    /// Source access (executes first).
    pub src: AccessId,
    /// Destination access.
    pub dst: AccessId,
    /// Distance vector, outermost loop first.
    pub distance: Vec<DistElem>,
}

impl Dependence {
    /// Outermost loop level at which the dependence can be carried.
    pub fn carried_at(&self) -> CarriedAt {
        for (i, d) in self.distance.iter().enumerate() {
            if d.may_be_nonzero() {
                return CarriedAt::Level(i);
            }
        }
        CarriedAt::Independent
    }

    /// True when this dependence can be carried by loop `level`: every
    /// shallower component may be zero and the component at `level` may be
    /// non-zero.
    pub fn may_be_carried_by(&self, level: usize) -> bool {
        if level >= self.distance.len() {
            return false;
        }
        self.distance[..level].iter().all(|d| d.may_be_zero())
            && self.distance[level].may_be_nonzero()
    }
}

/// The set of dependences of a loop-nest body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependenceGraph {
    deps: Vec<Dependence>,
    levels: usize,
}

impl DependenceGraph {
    /// All dependences.
    pub fn deps(&self) -> &[Dependence] {
        &self.deps
    }

    /// Number of loop levels the distance vectors span.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// True when some ordering-constraining (non-input) dependence may be
    /// carried by loop `level`. A loop that carries no dependence can be
    /// unrolled into fully parallel copies (the paper's `U_init`
    /// heuristic looks for such a loop first).
    pub fn loop_carries_dependence(&self, level: usize) -> bool {
        self.deps
            .iter()
            .filter(|d| d.kind.constrains())
            .any(|d| d.may_be_carried_by(level))
    }

    /// The minimum positive exact distance among constraining dependences
    /// carried at `level`, if any. Larger minimum distances admit more
    /// parallelism between dependences (the paper unrolls such loops
    /// harder).
    pub fn min_positive_distance(&self, level: usize) -> Option<i64> {
        self.deps
            .iter()
            .filter(|d| d.kind.constrains() && d.may_be_carried_by(level))
            .filter_map(|d| match d.distance.get(level) {
                Some(DistElem::Exact(k)) if *k > 0 => Some(*k),
                _ => None,
            })
            .min()
    }

    /// Dependences involving `array`.
    pub fn for_array<'a>(&'a self, array: &'a str) -> impl Iterator<Item = &'a Dependence> + 'a {
        self.deps.iter().filter(move |d| d.array == array)
    }
}

/// Compute the dependence graph of a body's accesses.
///
/// `vars` orders the distance vectors (outermost loop first). Loop bounds
/// are unknown here, so non-uniform pairs fall back to the GCD test; use
/// [`analyze_dependences_with_bounds`] when bounds are available to also
/// apply the Banerjee test.
pub fn analyze_dependences(table: &AccessTable, vars: &[&str]) -> DependenceGraph {
    analyze_with(table, vars, None)
}

/// Like [`analyze_dependences`] but with inclusive per-loop value ranges
/// (`bounds[l] = (lo, hi)`, aligned with `vars`), enabling the Banerjee
/// bounds test for non-uniform pairs.
pub fn analyze_dependences_with_bounds(
    table: &AccessTable,
    vars: &[&str],
    bounds: &[(i64, i64)],
) -> DependenceGraph {
    analyze_with(table, vars, Some(bounds))
}

fn analyze_with(
    table: &AccessTable,
    vars: &[&str],
    bounds: Option<&[(i64, i64)]>,
) -> DependenceGraph {
    let mut deps = Vec::new();
    let n = table.len();
    for ai in 0..n {
        for bi in ai..n {
            let a = &table.accesses()[ai];
            let b = &table.accesses()[bi];
            if a.access.array != b.access.array {
                continue;
            }
            deps.extend(pair_dependence(table, a.id, b.id, vars, bounds));
        }
    }
    DependenceGraph {
        deps,
        levels: vars.len(),
    }
}

fn pair_dependence(
    table: &AccessTable,
    a_id: AccessId,
    b_id: AccessId,
    vars: &[&str],
    bounds: Option<&[(i64, i64)]>,
) -> Vec<Dependence> {
    let a = table.get(a_id);
    let b = table.get(b_id);
    let sig_a = a.access.coeff_signature(vars);
    let sig_b = b.access.coeff_signature(vars);

    if sig_a == sig_b {
        // Uniformly generated: exact distance from M·d = c_a - c_b where d
        // runs from a's iteration to b's.
        let delta: Vec<i64> = a
            .access
            .constant_offsets()
            .iter()
            .zip(b.access.constant_offsets())
            .map(|(ca, cb)| ca - cb)
            .collect();
        let Some(sol) = solve_affine(&sig_a, &delta) else {
            return Vec::new();
        };
        let mut dist: Vec<DistElem> = Vec::with_capacity(sol.len());
        for (level, s) in sol.into_iter().enumerate() {
            match s {
                VarSolution::Unique(r) => match r.as_integer() {
                    Some(k) => {
                        // An exact distance larger than the loop's value
                        // range can never be realized.
                        if let Some(bounds) = bounds {
                            if let Some(&(lo, hi)) = bounds.get(level) {
                                if k.abs() > hi - lo {
                                    return Vec::new();
                                }
                            }
                        }
                        dist.push(DistElem::Exact(k));
                    }
                    // Fractional distance: no integer iteration pair
                    // touches the same element.
                    None => return Vec::new(),
                },
                VarSolution::Invariant => dist.push(DistElem::Any),
                VarSolution::Coupled => dist.push(DistElem::Unknown),
            }
        }
        normalize(a_id, b_id, a.is_write, b.is_write, &a.access.array, dist)
    } else {
        // Non-uniform pair: prove independence dimension by dimension.
        let ca = a.access.constant_offsets();
        let cb = b.access.constant_offsets();
        for dim in 0..sig_a.len() {
            if !gcd_may_depend(&sig_a[dim], ca[dim], &sig_b[dim], cb[dim]) {
                return Vec::new();
            }
            if let Some(bounds) = bounds {
                if !banerjee_may_depend(&sig_a[dim], ca[dim], &sig_b[dim], cb[dim], bounds) {
                    return Vec::new();
                }
            }
        }
        // Cannot disprove: conservative dependence with unknown distance.
        let dist = vec![DistElem::Unknown; vars.len()];
        normalize(a_id, b_id, a.is_write, b.is_write, &a.access.array, dist)
    }
}

/// Orient the dependence so its distance is lexicographically
/// non-negative, and drop the degenerate self-pair at distance zero.
///
/// When the leading non-`Exact(0)` component is `Any`/`Unknown`, the
/// dependence is *symmetric* (it exists at positive and negative
/// distances), so both orientations are emitted for mixed read/write pairs
/// — e.g. the FIR accumulator `D[j]` has both a flow (write→read) and an
/// anti (read→write) dependence carried by the inner loop.
fn normalize(
    a_id: AccessId,
    b_id: AccessId,
    a_write: bool,
    b_write: bool,
    array: &str,
    dist: Vec<DistElem>,
) -> Vec<Dependence> {
    // Determine the lexicographic sign of the exact prefix.
    // 0 = all components exactly zero; 2 = symmetric (Any/Unknown leads).
    let mut sign = 0i8;
    for d in &dist {
        match d {
            DistElem::Exact(0) => continue,
            DistElem::Exact(k) => {
                sign = if *k > 0 { 1 } else { -1 };
                break;
            }
            DistElem::Any | DistElem::Unknown => {
                sign = 2;
                break;
            }
        }
    }
    let forward = Dependence {
        array: array.to_string(),
        kind: DepKind::of(a_write, b_write),
        src: a_id,
        dst: b_id,
        distance: dist.clone(),
    };
    let backward = || {
        let flipped: Vec<DistElem> = dist
            .iter()
            .map(|d| match d {
                DistElem::Exact(k) => DistElem::Exact(-k),
                other => *other,
            })
            .collect();
        Dependence {
            array: array.to_string(),
            kind: DepKind::of(b_write, a_write),
            src: b_id,
            dst: a_id,
            distance: flipped,
        }
    };
    match sign {
        // Loop-independent: direction is program order; the degenerate
        // self-pair at distance zero is dropped.
        0 if a_id == b_id => Vec::new(),
        0 | 1 => vec![forward],
        -1 => vec![backward()],
        // Symmetric: both orientations exist. One record suffices for
        // same-kind pairs; mixed read/write pairs get both (flow + anti).
        _ => {
            if a_write == b_write {
                vec![forward]
            } else {
                vec![forward, backward()]
            }
        }
    }
}

/// GCD independence test for one dimension of a (possibly non-uniform)
/// reference pair: a dependence requires an integer solution of
/// `Σ aᵢ·xᵢ − Σ bᵢ·yᵢ = c_b − c_a`, which exists iff
/// `gcd(aᵢ…, bᵢ…)` divides the right-hand side. Returns `false` when
/// independence is *proved*.
pub fn gcd_may_depend(coeffs_a: &[i64], c_a: i64, coeffs_b: &[i64], c_b: i64) -> bool {
    let mut g = 0i64;
    for &c in coeffs_a.iter().chain(coeffs_b) {
        g = gcd_i64(g, c);
    }
    let rhs = c_b - c_a;
    if g == 0 {
        // Both references constant in this dimension.
        rhs == 0
    } else {
        rhs % g == 0
    }
}

/// Banerjee bounds test for one dimension: a dependence requires
/// `Σ aᵢ·xᵢ − Σ bᵢ·yᵢ = c_b − c_a` with each variable inside its loop
/// bounds; independence is proved when the right-hand side falls outside
/// the attainable `[min, max]` interval. `bounds[l]` is the inclusive
/// value range of loop `l`. Returns `false` when independence is proved.
pub fn banerjee_may_depend(
    coeffs_a: &[i64],
    c_a: i64,
    coeffs_b: &[i64],
    c_b: i64,
    bounds: &[(i64, i64)],
) -> bool {
    let mut lo = 0i64;
    let mut hi = 0i64;
    for (l, &a) in coeffs_a.iter().enumerate() {
        let (blo, bhi) = bounds
            .get(l)
            .copied()
            .unwrap_or((i64::MIN / 4, i64::MAX / 4));
        lo += (a * blo).min(a * bhi);
        hi += (a * blo).max(a * bhi);
    }
    for (l, &b) in coeffs_b.iter().enumerate() {
        let (blo, bhi) = bounds
            .get(l)
            .copied()
            .unwrap_or((i64::MIN / 4, i64::MAX / 4));
        // −b·y contributes with negated coefficient.
        lo += (-b * blo).min(-b * bhi);
        hi += (-b * blo).max(-b * bhi);
    }
    let rhs = c_b - c_a;
    rhs >= lo && rhs <= hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;

    fn graph_for(src: &str) -> DependenceGraph {
        let k = parse_kernel(src).unwrap();
        let nest = k.perfect_nest().unwrap();
        let table = AccessTable::from_stmts(nest.innermost_body());
        let vars = nest.vars();
        let bounds: Vec<(i64, i64)> = nest
            .loops()
            .iter()
            .map(|l| (l.lower, l.upper - 1))
            .collect();
        analyze_dependences_with_bounds(&table, &vars, &bounds)
    }

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn fir_accumulator_carried_by_inner_loop() {
        let g = graph_for(FIR);
        // j (level 0) carries no constraining dependence; i (level 1) does.
        assert!(!g.loop_carries_dependence(0));
        assert!(g.loop_carries_dependence(1));

        // The D flow dependence has distance (0, Any).
        let d_flow = g
            .for_array("D")
            .find(|d| d.kind == DepKind::Flow)
            .expect("flow dep on D");
        assert_eq!(d_flow.distance, vec![DistElem::Exact(0), DistElem::Any]);
        assert_eq!(d_flow.carried_at(), CarriedAt::Level(1));
    }

    #[test]
    fn fir_s_reads_are_coupled() {
        let g = graph_for(FIR);
        let s_input = g
            .for_array("S")
            .find(|d| d.kind == DepKind::Input)
            .expect("input dep on S");
        assert!(s_input
            .distance
            .iter()
            .any(|d| matches!(d, DistElem::Unknown)));
    }

    #[test]
    fn fir_c_reuse_carried_by_outer_loop() {
        let g = graph_for(FIR);
        let c_input = g
            .for_array("C")
            .find(|d| d.kind == DepKind::Input)
            .expect("input dep on C");
        assert_eq!(c_input.distance, vec![DistElem::Any, DistElem::Exact(0)]);
        assert_eq!(c_input.carried_at(), CarriedAt::Level(0));
        // Input deps never make a loop "carry a dependence".
        assert!(!g.loop_carries_dependence(0));
    }

    #[test]
    fn stencil_distance_vectors() {
        // B[i] = A[i-1] + A[i+1]: input dep between the two A reads at
        // exact distance 2 (A[i+1] at iteration i reads what A[i-1] reads
        // at iteration i+2).
        let g = graph_for(
            "kernel st { in A: i16[66]; out B: i16[64];
               for i in 1..63 { B[i] = A[i - 1] + A[i + 1]; } }",
        );
        let dists: Vec<_> = g
            .for_array("A")
            .filter(|d| d.kind == DepKind::Input)
            .map(|d| d.distance.clone())
            .collect();
        assert!(dists.contains(&vec![DistElem::Exact(2)]));
    }

    #[test]
    fn wavefront_flow_dependence() {
        // A[i] = A[i-1] + 1: flow dep carried at distance 1.
        let g = graph_for(
            "kernel wf { inout A: i32[65];
               for i in 1..65 { A[i] = A[i - 1] + 1; } }",
        );
        let flow = g
            .for_array("A")
            .find(|d| d.kind == DepKind::Flow && d.distance == vec![DistElem::Exact(1)]);
        assert!(flow.is_some());
        assert!(g.loop_carries_dependence(0));
        assert_eq!(g.min_positive_distance(0), Some(1));
    }

    #[test]
    fn anti_dependence_orientation() {
        // A[i] = A[i+1]: reading ahead, writing behind => anti dep, dist 1.
        let g = graph_for(
            "kernel ad { inout A: i32[65];
               for i in 0..64 { A[i] = A[i + 1]; } }",
        );
        let anti = g
            .for_array("A")
            .find(|d| d.kind == DepKind::Anti)
            .expect("anti dep");
        assert_eq!(anti.distance, vec![DistElem::Exact(1)]);
    }

    #[test]
    fn parallel_loop_has_no_dependence() {
        let g = graph_for(
            "kernel par { in A: i32[64]; out B: i32[64];
               for i in 0..64 { B[i] = A[i] * 2; } }",
        );
        assert!(!g.loop_carries_dependence(0));
        // B write-write: same address only at distance 0 of the same
        // access — no dependence recorded.
        assert!(g.for_array("B").all(|d| d.kind != DepKind::Output));
    }

    #[test]
    fn strided_accesses_proved_independent_by_gcd() {
        // A[2i] vs A[2i+1]: even vs odd elements — never alias.
        let g = graph_for(
            "kernel go { inout A: i32[130];
               for i in 0..64 { A[2*i] = A[2*i + 1]; } }",
        );
        assert_eq!(g.for_array("A").count(), 0);
    }

    #[test]
    fn banerjee_proves_independence_outside_bounds() {
        // A[i] written for i in 0..8, A[i+100] read: offsets never meet
        // within bounds (GCD alone cannot prove this).
        let g = graph_for(
            "kernel bj { inout A: i32[256];
               for i in 0..8 { A[i] = A[i + 100]; } }",
        );
        // The pair is uniformly generated with exact distance 100, which
        // an 8-iteration loop cannot realize.
        assert_eq!(g.for_array("A").count(), 0);
        // A non-uniform pair is caught by the Banerjee bounds test.
        let g2 = graph_for(
            "kernel bj2 { inout A: i32[300];
               for i in 0..8 { A[2*i] = A[i + 200]; } }",
        );
        assert_eq!(g2.for_array("A").count(), 0);
    }

    #[test]
    fn gcd_test_directly() {
        // 2x - 2y = 1 has no integer solution.
        assert!(!gcd_may_depend(&[2], 0, &[2], 1));
        // 2x - 2y = 4 does.
        assert!(gcd_may_depend(&[2], 0, &[2], 4));
        // Constant vs constant.
        assert!(gcd_may_depend(&[0], 5, &[0], 5));
        assert!(!gcd_may_depend(&[0], 5, &[0], 6));
    }

    #[test]
    fn banerjee_test_directly() {
        // x in [0,7], y in [0,7]: x - y in [-7,7]; rhs 100 unattainable.
        assert!(!banerjee_may_depend(&[1], 0, &[1], 100, &[(0, 7)]));
        assert!(banerjee_may_depend(&[1], 0, &[1], 5, &[(0, 7)]));
        // Negative coefficients.
        assert!(banerjee_may_depend(&[-1], 0, &[1], -10, &[(0, 7)]));
        assert!(!banerjee_may_depend(&[-1], 0, &[1], -20, &[(0, 7)]));
    }

    #[test]
    fn matmul_dependence_structure() {
        let g = graph_for(
            "kernel mm { in A: i32[32][16]; in B: i32[16][4]; inout C: i32[32][4];
               for i in 0..32 { for j in 0..4 { for k in 0..16 {
                 C[i][j] = C[i][j] + A[i][k] * B[k][j]; } } } }",
        );
        // Only k (level 2) carries constraining dependences (the C
        // accumulator); i and j are parallel.
        assert!(!g.loop_carries_dependence(0));
        assert!(!g.loop_carries_dependence(1));
        assert!(g.loop_carries_dependence(2));
    }
}
