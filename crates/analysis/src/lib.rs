//! Compiler analyses for DEFACTO-style design space exploration.
//!
//! This crate implements the parallelizing-compiler half of the PLDI 2002
//! paper's analysis stack:
//!
//! - [`access`]: collection of array accesses from a loop-nest body;
//! - [`uniform`]: partitioning of accesses into *uniformly generated sets*
//!   (identical affine coefficient vectors — the unit at which scalar
//!   replacement and custom data layout operate);
//! - [`linalg`]: exact rational linear-system solving used to compute
//!   dependence distances;
//! - [`dependence`]: data-dependence analysis producing distance vectors
//!   with invariant (`Any`) and inconsistent (`Unknown`) components, plus
//!   GCD and Banerjee independence tests for non-uniform pairs;
//! - [`legality`]: direction vectors and the whole-kernel
//!   [`LegalitySummary`] — legal permutations, per-level tilability and
//!   jam safety, carried scalars, packing/narrowing applicability — the
//!   single source of truth the transforms delegate their checks to;
//! - [`range`]: value-range (interval) analysis driving bit-width
//!   narrowing (paper §2.4's "reduced data widths");
//! - [`reuse`]: classification of each uniformly generated set's reuse
//!   pattern (rolling window, outer-loop register chain, hoistable
//!   invariant, or inconsistent), which drives scalar replacement;
//! - [`lint`]: the kernel linter, reporting legality and profitability
//!   problems as structured `DF0xx` diagnostics with source spans.
//!
//! # Example
//!
//! ```
//! use defacto_analysis::prelude::*;
//! use defacto_ir::parse_kernel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let k = parse_kernel(
//!     "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
//!        for j in 0..64 { for i in 0..32 {
//!          D[j] = D[j] + S[i + j] * C[i]; } } }",
//! )?;
//! let nest = k.perfect_nest().unwrap();
//! let table = AccessTable::from_stmts(nest.innermost_body());
//! let deps = analyze_dependences(&table, &nest.vars());
//! // The outer loop j carries no dependence: it can be unrolled for
//! // fully parallel accumulators.
//! assert!(!deps.loop_carries_dependence(0));
//! assert!(deps.loop_carries_dependence(1));
//! # Ok(())
//! # }
//! ```

pub mod access;
pub mod dependence;
pub mod jam;
pub mod legality;
pub mod linalg;
pub mod lint;
pub mod range;
pub mod reuse;
pub mod uniform;

pub use access::{Access, AccessId, AccessTable};
pub use dependence::{
    analyze_dependences, analyze_dependences_with_bounds, banerjee_may_depend, gcd_may_depend,
    CarriedAt, DepKind, Dependence, DependenceGraph, DistElem,
};
pub use jam::{jammed_access_table, jammed_uniform_sets};
pub use legality::{
    carried_scalar_violation, carried_scalars, direction_vector, permutation_violation,
    tile_hoist_violation, unroll_violation, ArrayNarrowing, ArrayPacking, Direction,
    DistanceVector, JamViolation, LegalitySummary,
};
pub use linalg::{solve_affine, Rational, VarSolution};
pub use lint::{lint_kernel, lint_source, LintContext, LintReport, LintRule};
pub use range::{infer_ranges, Interval, RangeInfo};
pub use reuse::{classify_set, classify_set_bounded, ReuseStrategy};
pub use uniform::{uniform_sets, UniformSet};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::access::{Access, AccessId, AccessTable};
    pub use crate::dependence::{
        analyze_dependences, analyze_dependences_with_bounds, CarriedAt, DepKind, Dependence,
        DependenceGraph, DistElem,
    };
    pub use crate::reuse::{classify_set, classify_set_bounded, ReuseStrategy};
    pub use crate::uniform::{uniform_sets, UniformSet};
}
