//! Whole-kernel transformation-legality analysis.
//!
//! [`crate::dependence`] computes *distance vectors*; this module turns
//! them into the classical *direction vectors* (`<`, `=`, `>`, `*`) and
//! derives a per-kernel [`LegalitySummary`]: every ordering fact a loop
//! transformation needs, computed once.
//!
//! Before this pass, each transform carried its own ad-hoc check —
//! interchange validated permutations, unroll-and-jam re-derived jam
//! safety and the carried-scalar rule, register tiling re-checked the
//! hoist crossing, and saturation analysis duplicated the carried-scalar
//! pinning. The summary subsumes all of them: the free predicates in
//! this module ([`unroll_violation`], [`permutation_violation`],
//! [`carried_scalar_violation`], [`tile_hoist_violation`]) are the *one*
//! implementation, and the per-transform checks in `defacto-xform`
//! delegate here. A design space whose axis domains are built from the
//! summary therefore contains only points the transforms provably
//! accept — membership implies transform success, because membership and
//! the transform's own gate are literally the same code.
//!
//! The summary also records the two data-transformation applicability
//! facts the joint space needs: whether bit-width narrowing can shrink
//! any array ([`LegalitySummary::narrowing_applicable`]) and whether
//! data packing can ever share a memory word between accesses
//! ([`LegalitySummary::packing_effective`]).

use crate::access::AccessTable;
use crate::dependence::{analyze_dependences_with_bounds, DependenceGraph, DistElem};
use crate::range::infer_ranges;
use defacto_ir::{Kernel, LValue, Stmt};
use std::collections::BTreeSet;
use std::fmt;

/// One component of a direction vector, derived from a [`DistElem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `<` — the source iteration precedes the sink at this level
    /// (positive exact distance).
    Before,
    /// `=` — both iterations share this level's index (exact zero).
    Equal,
    /// `>` — the source iteration follows the sink (negative exact
    /// distance; only reachable at levels below the carrier).
    After,
    /// `*` — the distance is loop-invariant (`Any`) or not provably
    /// constant (`Unknown`); all three relations are possible.
    Star,
}

impl Direction {
    /// The direction of one distance component.
    pub fn of(d: DistElem) -> Direction {
        match d {
            DistElem::Exact(k) if k > 0 => Direction::Before,
            DistElem::Exact(0) => Direction::Equal,
            DistElem::Exact(_) => Direction::After,
            DistElem::Any | DistElem::Unknown => Direction::Star,
        }
    }

    /// The classical one-character rendering.
    pub fn symbol(self) -> char {
        match self {
            Direction::Before => '<',
            Direction::Equal => '=',
            Direction::After => '>',
            Direction::Star => '*',
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// The direction vector of a distance vector, component-wise.
pub fn direction_vector(distance: &[DistElem]) -> Vec<Direction> {
    distance.iter().map(|&d| Direction::of(d)).collect()
}

/// The dependence that makes an unroll-and-jam or interchange illegal.
///
/// Defined here — next to the predicates that produce it — and
/// re-exported by `defacto-xform` as the payload of its `IllegalJam`
/// error, so the analysis and the transforms share one violation type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JamViolation {
    /// Unroll-and-jam: a dependence carried at the unrolled `level` has a
    /// negative component at a `deeper` level — the jam would execute the
    /// dependent iteration before its source.
    NegativeDeeper {
        /// Array carrying the dependence.
        array: String,
        /// The unrolled level that carries it.
        level: usize,
        /// The deeper level with the negative distance component.
        deeper: usize,
    },
    /// Unroll-and-jam: the deeper component is unknown, so the jam is
    /// conservatively rejected.
    UnknownDeeper {
        /// Array carrying the dependence.
        array: String,
        /// The unrolled level that carries it.
        level: usize,
        /// The deeper level with the unknown distance component.
        deeper: usize,
    },
    /// Interchange: the permutation changes the relative order of the
    /// dependence's may-be-nonzero distance components.
    Reordered {
        /// Array carrying the dependence.
        array: String,
        /// The levels (original order) at which it carries.
        levels: Vec<usize>,
    },
    /// Unroll-and-jam: the body carries scalar state across iterations
    /// (a rotate register chain, or a scalar read before it is written),
    /// and a non-innermost unroll factor would interleave iterations and
    /// reorder that chain.
    CarriedScalar {
        /// A scalar carrying the cross-iteration state.
        scalar: String,
        /// The non-innermost level whose factor exceeds 1.
        level: usize,
    },
    /// Interchange: the body carries scalar state from each iteration to
    /// the next in sequence order, so *any* change to the nest's
    /// iteration order re-threads the chain through different values.
    ScalarOrder {
        /// A scalar carrying the cross-iteration state.
        scalar: String,
    },
}

impl JamViolation {
    /// The array (or carried scalar) whose dependence blocks the
    /// transformation.
    pub fn array(&self) -> &str {
        match self {
            JamViolation::NegativeDeeper { array, .. }
            | JamViolation::UnknownDeeper { array, .. }
            | JamViolation::Reordered { array, .. } => array,
            JamViolation::CarriedScalar { scalar, .. } | JamViolation::ScalarOrder { scalar } => {
                scalar
            }
        }
    }
}

impl fmt::Display for JamViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JamViolation::NegativeDeeper {
                array,
                level,
                deeper,
            } => write!(
                f,
                "dependence on `{array}` carried at level {level} has negative \
                 component at level {deeper}"
            ),
            JamViolation::UnknownDeeper {
                array,
                level,
                deeper,
            } => write!(
                f,
                "dependence on `{array}` carried at level {level} has unknown \
                 component at level {deeper}"
            ),
            JamViolation::Reordered { array, levels } => write!(
                f,
                "dependence on `{array}` carries at levels {levels:?}, \
                 which the permutation reorders"
            ),
            JamViolation::CarriedScalar { scalar, level } => write!(
                f,
                "scalar `{scalar}` carries state across iterations; \
                 unrolling non-innermost level {level} would reorder it"
            ),
            JamViolation::ScalarOrder { scalar } => write!(
                f,
                "scalar `{scalar}` carries state across iterations in sequence \
                 order; permuting the nest would re-thread it"
            ),
        }
    }
}

/// Scalars whose value is carried from one iteration of the innermost
/// body to the next: names read (or rotated) before any unconditional
/// write in straight-line body order. Loop variables in `loop_vars` are
/// iteration-local and never count.
///
/// A `rotate` reads every register of its chain (each receives a
/// neighbour's *old* value), so registers not yet written in the body are
/// live-in — exactly the register-chain state that makes the body's
/// iterations order-sensitive. Jamming any non-innermost loop interleaves
/// iterations of different outer indices and reorders that chain, so
/// unroll-and-jam rejects outer factors when this set is non-empty;
/// innermost-only unrolling replicates copies in original iteration order
/// and stays legal. Writes under an `if` are treated as not happening
/// (conservative: a scalar only leaves the live-in candidate set on a
/// write that certainly executes).
pub fn carried_scalars(body: &[Stmt], loop_vars: &[&str]) -> Vec<String> {
    let mut written: BTreeSet<&str> = BTreeSet::new();
    let mut carried: BTreeSet<String> = BTreeSet::new();
    scan_carried(body, loop_vars, false, &mut written, &mut carried);
    carried.into_iter().collect()
}

fn scan_carried<'a>(
    body: &'a [Stmt],
    loop_vars: &[&str],
    conditional: bool,
    written: &mut BTreeSet<&'a str>,
    carried: &mut BTreeSet<String>,
) {
    let read = |name: &str, written: &BTreeSet<&str>, carried: &mut BTreeSet<String>| {
        if !loop_vars.contains(&name) && !written.contains(name) {
            carried.insert(name.to_string());
        }
    };
    for s in body {
        match s {
            Stmt::Assign { lhs, rhs } => {
                for n in rhs.scalar_reads() {
                    read(n, written, carried);
                }
                match lhs {
                    LValue::Scalar(n) => {
                        if !conditional {
                            written.insert(n.as_str());
                        }
                    }
                    LValue::Array(a) => {
                        for idx in &a.indices {
                            for n in idx.vars() {
                                read(n, written, carried);
                            }
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                for n in cond.scalar_reads() {
                    read(n, written, carried);
                }
                scan_carried(then_body, loop_vars, true, written, carried);
                scan_carried(else_body, loop_vars, true, written, carried);
            }
            Stmt::For(l) => scan_carried(&l.body, loop_vars, true, written, carried),
            Stmt::Rotate(regs) => {
                for r in regs {
                    read(r, written, carried);
                }
                if !conditional {
                    for r in regs {
                        written.insert(r.as_str());
                    }
                }
            }
        }
    }
}

/// The jam-safety core over raw `(array, distance)` pairs: the first
/// violation of unrolling with `factors`, if any.
///
/// Jamming the copies of the inner loops after unrolling loop `l` is
/// illegal when a constraining dependence carried by `l` (at a distance
/// smaller than the unroll factor) has a *negative* component at a deeper
/// level — the jam would execute the dependent iteration before its
/// source. `Unknown` deeper components are conservatively rejected;
/// `Any` components arise from loop-invariant references and are
/// symmetric, hence harmless.
fn jam_violation_in<'a>(
    dists: impl Iterator<Item = (&'a str, &'a [DistElem])> + Clone,
    factors: &[i64],
) -> Option<JamViolation> {
    for (l, &u) in factors.iter().enumerate() {
        if u <= 1 {
            continue;
        }
        for (array, distance) in dists.clone() {
            // Carried by `l`: every shallower component may be zero and
            // the component at `l` may be non-zero.
            if l >= distance.len()
                || !distance[..l].iter().all(|d| d.may_be_zero())
                || !distance[l].may_be_nonzero()
            {
                continue;
            }
            // Distance at the unrolled level must be reachable within the
            // unroll window for the jam to mix the iterations.
            let within_window = match distance[l] {
                DistElem::Exact(k) => k.abs() < u,
                DistElem::Any | DistElem::Unknown => true,
            };
            if !within_window {
                continue;
            }
            for (deeper, &elem) in distance.iter().enumerate().skip(l + 1) {
                match elem {
                    DistElem::Exact(k) if k < 0 => {
                        return Some(JamViolation::NegativeDeeper {
                            array: array.to_string(),
                            level: l,
                            deeper,
                        });
                    }
                    DistElem::Unknown => {
                        return Some(JamViolation::UnknownDeeper {
                            array: array.to_string(),
                            level: l,
                            deeper,
                        });
                    }
                    _ => {}
                }
            }
        }
    }
    None
}

/// The first array-dependence violation of unroll-and-jam with `factors`
/// against a dependence graph, if any. See [`jam_violation_in`] for the
/// rule; this is the one implementation `defacto_xform::unroll_is_legal`
/// and the design-space construction both call.
pub fn unroll_violation(deps: &DependenceGraph, factors: &[i64]) -> Option<JamViolation> {
    jam_violation_in(
        deps.deps()
            .iter()
            .filter(|d| d.kind.constrains())
            .map(|d| (d.array.as_str(), d.distance.as_slice())),
        factors,
    )
}

/// The carried-scalar half of jam legality: a non-empty carried set
/// blocks any non-innermost factor above 1 (the violation names the
/// first such level and the first carried scalar, matching
/// `unroll_and_jam`'s report).
pub fn carried_scalar_violation(carried: &[String], factors: &[i64]) -> Option<JamViolation> {
    if factors.is_empty() {
        return None;
    }
    let level = factors[..factors.len() - 1].iter().position(|&u| u > 1)?;
    carried.first().map(|scalar| JamViolation::CarriedScalar {
        scalar: scalar.clone(),
        level,
    })
}

/// Permutation legality over raw `(array, distance)` pairs.
///
/// The dependence analysis normalizes every dependence so its realizable
/// distance instances are lexicographically positive in the original
/// loop order. Permuting components of an instance preserves its
/// lexicographic sign as long as the *relative order of the components
/// that can be non-zero* is unchanged — each instance's first non-zero
/// component stays first. A permutation is therefore legal iff, for
/// every ordering-constraining dependence, the may-be-nonzero positions
/// of its distance vector appear in the same relative order before and
/// after. (`Exact(0)` components may move freely; `Any`/`Unknown`
/// components are handled soundly because their instance sets were
/// lex-positive to begin with.)
fn permutation_violation_in<'a>(
    dists: impl Iterator<Item = (&'a str, &'a [DistElem])>,
    order: &[usize],
) -> Option<JamViolation> {
    for (array, distance) in dists {
        // Positions that can be non-zero, in original order.
        let hot: Vec<usize> = (0..distance.len())
            .filter(|&l| distance[l].may_be_nonzero())
            .collect();
        if hot.len() <= 1 {
            continue; // a single carrier (or none) permutes freely
        }
        // Their order in the permuted nest.
        let permuted: Vec<usize> = order.iter().copied().filter(|l| hot.contains(l)).collect();
        if permuted != hot {
            return Some(JamViolation::Reordered {
                array: array.to_string(),
                levels: hot,
            });
        }
    }
    None
}

/// The first obstacle to a nest permutation, if any. `order[k]` is the
/// original level placed at position `k`. A non-empty `carried` scalar
/// set blocks every non-identity order outright: the chain threads the
/// iterations in sequence order, and any permutation that changes the
/// traversal re-threads it through different values. Array dependences
/// are then checked for reordering. The one implementation behind
/// `defacto_xform::interchange_is_legal` and
/// [`LegalitySummary::legal_permutations`].
pub fn permutation_violation(
    deps: &DependenceGraph,
    carried: &[String],
    order: &[usize],
) -> Option<JamViolation> {
    if !order.iter().enumerate().all(|(k, &l)| k == l) {
        if let Some(scalar) = carried.first() {
            return Some(JamViolation::ScalarOrder {
                scalar: scalar.clone(),
            });
        }
    }
    permutation_violation_in(
        deps.deps()
            .iter()
            .filter(|d| d.kind.constrains())
            .map(|d| (d.array.as_str(), d.distance.as_slice())),
        order,
    )
}

/// The first obstacle to hoisting a tile loop of `level` to the
/// outermost position: `(crossed_level, name)` of a constraining
/// dependence whose component at a crossed level `0..level` is neither
/// exactly zero nor loop-invariant — or of a carried scalar, which pins
/// the traversal order outright (hoisting over any outer level reorders
/// the iteration sequence the chain threads; level 0 hoists in place and
/// stays legal). The one implementation behind
/// `defacto_xform::tiling::tile_for_registers`'s crossing check and
/// [`LegalitySummary::tilable`].
pub fn tile_hoist_violation(
    deps: &DependenceGraph,
    carried: &[String],
    level: usize,
) -> Option<(usize, String)> {
    if level > 0 {
        if let Some(scalar) = carried.first() {
            return Some((0, scalar.clone()));
        }
    }
    for dep in deps.deps().iter().filter(|d| d.kind.constrains()) {
        for crossed in 0..level.min(dep.distance.len()) {
            match dep.distance[crossed] {
                DistElem::Exact(0) | DistElem::Any => {}
                _ => return Some((crossed, dep.array.clone())),
            }
        }
    }
    None
}

/// One constraining dependence's distance vector, with its derived
/// direction vector, as stored in a [`LegalitySummary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceVector {
    /// Array carrying the dependence.
    pub array: String,
    /// The distance vector (one component per loop level).
    pub distance: Vec<DistElem>,
    /// The derived direction vector.
    pub directions: Vec<Direction>,
}

/// Packing-alignment facts for one array: whether data packing can ever
/// let neighbouring accesses share a memory word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayPacking {
    /// The array's name.
    pub array: String,
    /// Its element width in bits.
    pub elem_bits: u32,
    /// The smallest nonzero last-dimension stride over accesses whose
    /// other subscripts are invariant in the striding loop — the
    /// word-adjacency stride under a row-major layout. `None` when no
    /// access strides the last dimension that way.
    pub min_stride: Option<i64>,
}

impl ArrayPacking {
    /// True when packing into `word_bits`-wide memory words can share a
    /// word between accesses of this array: the elements are narrower
    /// than the word *and* some access walks the last dimension at a
    /// stride smaller than the elements-per-word — otherwise every
    /// access lands in a distinct word and packing is a provable no-op.
    pub fn effective(&self, word_bits: u32) -> bool {
        if self.elem_bits == 0 || self.elem_bits >= word_bits {
            return false;
        }
        let per_word = i64::from(word_bits / self.elem_bits);
        matches!(self.min_stride, Some(s) if s < per_word)
    }
}

/// Narrowing applicability for one array: declared vs inferred width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayNarrowing {
    /// The array's name.
    pub array: String,
    /// Bits of the declared element type.
    pub declared_bits: u32,
    /// Bits required by the inferred (annotation- and flow-derived)
    /// value range.
    pub inferred_bits: u32,
}

impl ArrayNarrowing {
    /// True when narrowing would actually shrink this array's elements.
    pub fn narrowable(&self) -> bool {
        self.inferred_bits < self.declared_bits
    }
}

/// Everything a loop/data transformation needs to know about one kernel's
/// ordering constraints, computed once. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegalitySummary {
    depth: usize,
    trip_counts: Vec<i64>,
    constraining: Vec<DistanceVector>,
    legal_permutations: Vec<Vec<usize>>,
    tilable: Vec<bool>,
    carried_scalars: Vec<String>,
    packing: Vec<ArrayPacking>,
    narrowing: Vec<ArrayNarrowing>,
}

impl LegalitySummary {
    /// Analyze `kernel` from scratch. Returns `None` when the body is not
    /// a perfect loop nest (no transformation applies then anyway).
    pub fn analyze(kernel: &Kernel) -> Option<LegalitySummary> {
        let nest = kernel.perfect_nest()?;
        let table = AccessTable::from_stmts(nest.innermost_body());
        let vars = nest.vars();
        let bounds: Vec<(i64, i64)> = nest
            .loops()
            .iter()
            .map(|l| (l.lower, l.upper - 1))
            .collect();
        let deps = analyze_dependences_with_bounds(&table, &vars, &bounds);
        let carried = carried_scalars(nest.innermost_body(), &vars);
        Some(Self::from_parts(
            kernel,
            &table,
            &vars,
            &nest.trip_counts(),
            &deps,
            carried,
        ))
    }

    /// Build the summary from already-computed per-kernel analyses (the
    /// path `PreparedKernel` uses, so nothing is analyzed twice).
    pub fn from_parts(
        kernel: &Kernel,
        table: &AccessTable,
        vars: &[&str],
        trip_counts: &[i64],
        deps: &DependenceGraph,
        carried_scalars: Vec<String>,
    ) -> LegalitySummary {
        let depth = trip_counts.len();
        let constraining: Vec<DistanceVector> = deps
            .deps()
            .iter()
            .filter(|d| d.kind.constrains())
            .map(|d| DistanceVector {
                array: d.array.clone(),
                distance: d.distance.clone(),
                directions: direction_vector(&d.distance),
            })
            .collect();
        let legal_permutations = permutations(depth)
            .into_iter()
            .filter(|order| permutation_violation(deps, &carried_scalars, order).is_none())
            .collect();
        let tilable = (0..depth)
            .map(|l| tile_hoist_violation(deps, &carried_scalars, l).is_none())
            .collect();
        let packing = packing_facts(kernel, table, vars);
        let narrowing = narrowing_facts(kernel);
        LegalitySummary {
            depth,
            trip_counts: trip_counts.to_vec(),
            constraining,
            legal_permutations,
            tilable,
            carried_scalars,
            packing,
            narrowing,
        }
    }

    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Trip counts of the nest's loops, outermost first.
    pub fn trip_counts(&self) -> &[i64] {
        &self.trip_counts
    }

    /// The constraining dependences' distance/direction vectors, in
    /// dependence-graph order.
    pub fn distance_vectors(&self) -> &[DistanceVector] {
        &self.constraining
    }

    /// Every legal nest permutation, in lexicographic order. The
    /// identity is always first (it reorders nothing).
    pub fn legal_permutations(&self) -> &[Vec<usize>] {
        &self.legal_permutations
    }

    /// Is `order` (original level at position `k`) a legal permutation?
    pub fn permutation_is_legal(&self, order: &[usize]) -> bool {
        self.legal_permutations.iter().any(|p| p == order)
    }

    /// True when only the identity permutation is legal — interchange
    /// has nothing to offer this kernel.
    pub fn identity_only(&self) -> bool {
        self.legal_permutations.len() <= 1
    }

    /// Can the tile loop of `level` be hoisted outermost (register
    /// tiling) without reordering a dependence? Level 0 crosses nothing
    /// and is always tilable.
    pub fn tilable(&self, level: usize) -> bool {
        self.tilable.get(level).copied().unwrap_or(false)
    }

    /// The tilable levels, ascending.
    pub fn tilable_levels(&self) -> Vec<usize> {
        (0..self.depth).filter(|&l| self.tilable(l)).collect()
    }

    /// Scalars carrying state across iterations of the innermost body
    /// (rotate register chains, reads before writes): non-empty means
    /// only innermost unroll factors are jam-legal.
    pub fn carried_scalars(&self) -> &[String] {
        &self.carried_scalars
    }

    /// The first jam violation of unrolling the (unpermuted) nest with
    /// `factors`, array dependences first, then the carried-scalar rule —
    /// the exact gate `unroll_and_jam` applies, in the same order.
    pub fn jam_violation(&self, factors: &[i64]) -> Option<JamViolation> {
        self.jam_violation_under(&identity(self.depth), factors)
    }

    /// Like [`Self::jam_violation`], for the nest permuted by `order`:
    /// `factors[k]` unrolls the loop at *permuted* position `k`. Distance
    /// vectors are permuted alongside; legal permutations keep each
    /// instance's first hot component first, so the permuted vectors
    /// remain lexicographically positive and the jam rule stays sound.
    pub fn jam_violation_under(&self, order: &[usize], factors: &[i64]) -> Option<JamViolation> {
        let permuted: Vec<(String, Vec<DistElem>)> = self
            .constraining
            .iter()
            .map(|dv| {
                (
                    dv.array.clone(),
                    order.iter().map(|&l| dv.distance[l]).collect(),
                )
            })
            .collect();
        jam_violation_in(
            permuted.iter().map(|(a, d)| (a.as_str(), d.as_slice())),
            factors,
        )
        .or_else(|| carried_scalar_violation(&self.carried_scalars, factors))
    }

    /// Per-array packing facts, in declaration order.
    pub fn packing(&self) -> &[ArrayPacking] {
        &self.packing
    }

    /// True when packing into `word_bits`-wide words can share a word
    /// between accesses of at least one array.
    pub fn packing_effective(&self, word_bits: u32) -> bool {
        self.packing.iter().any(|p| p.effective(word_bits))
    }

    /// Per-array narrowing facts, in declaration order.
    pub fn narrowing(&self) -> &[ArrayNarrowing] {
        &self.narrowing
    }

    /// True when bit-width narrowing would shrink at least one array.
    pub fn narrowing_applicable(&self) -> bool {
        self.narrowing.iter().any(ArrayNarrowing::narrowable)
    }
}

fn identity(depth: usize) -> Vec<usize> {
    (0..depth).collect()
}

/// All permutations of `0..depth`, lexicographic (identity first).
fn permutations(depth: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(depth);
    let mut used = vec![false; depth];
    fn rec(depth: usize, cur: &mut Vec<usize>, used: &mut [bool], out: &mut Vec<Vec<usize>>) {
        if cur.len() == depth {
            out.push(cur.clone());
            return;
        }
        for l in 0..depth {
            if !used[l] {
                used[l] = true;
                cur.push(l);
                rec(depth, cur, used, out);
                cur.pop();
                used[l] = false;
            }
        }
    }
    rec(depth, &mut cur, &mut used, &mut out);
    out
}

/// Per-array packing facts: element width and the minimal word-adjacency
/// stride over the table's accesses.
fn packing_facts(kernel: &Kernel, table: &AccessTable, vars: &[&str]) -> Vec<ArrayPacking> {
    kernel
        .arrays()
        .iter()
        .map(|decl| {
            let mut min_stride: Option<i64> = None;
            for acc in table
                .accesses()
                .iter()
                .filter(|a| a.access.array == decl.name)
            {
                let sig = acc.access.coeff_signature(vars);
                let Some(last) = sig.last() else { continue };
                for (col, &c) in last.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    // Word adjacency requires the other subscripts to sit
                    // still while this loop strides the last dimension.
                    let others_still = sig[..sig.len() - 1].iter().all(|row| row[col] == 0);
                    if !others_still {
                        continue;
                    }
                    let s = c.abs();
                    min_stride = Some(min_stride.map_or(s, |m: i64| m.min(s)));
                }
            }
            ArrayPacking {
                array: decl.name.clone(),
                elem_bits: decl.ty.bits(),
                min_stride,
            }
        })
        .collect()
}

/// Per-array narrowing facts from range inference.
fn narrowing_facts(kernel: &Kernel) -> Vec<ArrayNarrowing> {
    let info = infer_ranges(kernel);
    kernel
        .arrays()
        .iter()
        .map(|decl| ArrayNarrowing {
            array: decl.name.clone(),
            declared_bits: decl.ty.bits(),
            inferred_bits: info.array(&decl.name).bits().min(decl.ty.bits()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    const WAVEFRONT: &str = "kernel wf { inout A: i32[9][9];
       for i in 1..8 { for j in 0..7 {
         A[i][j] = A[i - 1][j + 1]; } } }";

    fn summary(src: &str) -> LegalitySummary {
        let k = parse_kernel(src).unwrap();
        LegalitySummary::analyze(&k).expect("perfect nest")
    }

    #[test]
    fn direction_vectors_derive_from_distances() {
        assert_eq!(Direction::of(DistElem::Exact(2)), Direction::Before);
        assert_eq!(Direction::of(DistElem::Exact(0)), Direction::Equal);
        assert_eq!(Direction::of(DistElem::Exact(-1)), Direction::After);
        assert_eq!(Direction::of(DistElem::Any), Direction::Star);
        assert_eq!(Direction::of(DistElem::Unknown), Direction::Star);
        assert_eq!(
            direction_vector(&[DistElem::Exact(1), DistElem::Exact(-1)]),
            vec![Direction::Before, Direction::After]
        );
        assert_eq!(Direction::Before.symbol(), '<');
    }

    #[test]
    fn fir_summary_permits_the_swap() {
        let s = summary(FIR);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.trip_counts(), &[64, 32]);
        // D's accumulator dependence has one hot position: both orders
        // are legal.
        assert_eq!(s.legal_permutations().len(), 2);
        assert!(s.permutation_is_legal(&[0, 1]));
        assert!(s.permutation_is_legal(&[1, 0]));
        assert!(!s.identity_only());
        // No dependence crosses level 0, so both levels are tilable.
        assert!(s.tilable(0));
        assert!(s.tilable(1));
        assert_eq!(s.tilable_levels(), vec![0, 1]);
        assert!(s.carried_scalars().is_empty());
        // Every unroll vector of the divisor space is jam-legal.
        assert!(s.jam_violation(&[8, 4]).is_none());
        assert!(s.jam_violation_under(&[1, 0], &[4, 8]).is_none());
    }

    #[test]
    fn wavefront_summary_pins_identity_and_blocks_jam() {
        let s = summary(WAVEFRONT);
        // Distance (1, -1): both positions hot — only identity survives.
        assert!(s.identity_only());
        assert_eq!(s.legal_permutations(), &[vec![0, 1]]);
        assert!(!s.permutation_is_legal(&[1, 0]));
        // The direction vector reads (<, >).
        let dv = s
            .distance_vectors()
            .iter()
            .find(|d| d.array == "A" && d.directions == vec![Direction::Before, Direction::After])
            .expect("wavefront distance vector");
        assert_eq!(dv.distance, vec![DistElem::Exact(1), DistElem::Exact(-1)]);
        // Hoisting a j-tile across i would reorder it.
        assert!(s.tilable(0));
        assert!(!s.tilable(1));
        // Outer unrolling mixes the recurrence.
        assert!(matches!(
            s.jam_violation(&[2, 1]),
            Some(JamViolation::NegativeDeeper { .. })
        ));
        assert!(s.jam_violation(&[1, 7]).is_none());
    }

    #[test]
    fn summary_predicates_match_the_free_functions() {
        let k = parse_kernel(WAVEFRONT).unwrap();
        let nest = k.perfect_nest().unwrap();
        let table = AccessTable::from_stmts(nest.innermost_body());
        let vars = nest.vars();
        let bounds: Vec<(i64, i64)> = nest
            .loops()
            .iter()
            .map(|l| (l.lower, l.upper - 1))
            .collect();
        let deps = analyze_dependences_with_bounds(&table, &vars, &bounds);
        let s = summary(WAVEFRONT);
        for order in [vec![0, 1], vec![1, 0]] {
            assert_eq!(
                s.permutation_is_legal(&order),
                permutation_violation(&deps, s.carried_scalars(), &order).is_none(),
                "order {order:?}"
            );
        }
        for factors in [[1, 1], [2, 1], [1, 7], [7, 7]] {
            assert_eq!(
                s.jam_violation(&factors),
                unroll_violation(&deps, &factors),
                "factors {factors:?}"
            );
        }
        for level in 0..2 {
            assert_eq!(
                s.tilable(level),
                tile_hoist_violation(&deps, s.carried_scalars(), level).is_none()
            );
        }
    }

    #[test]
    fn carried_scalar_summary_blocks_outer_factors() {
        let s = summary(
            "kernel rc { in A: i32[4][8]; out B: i32[4][8]; var r0: i32; var r1: i32;
               for i in 0..4 { for j in 0..8 {
                 r0 = A[i][j]; rotate(r0, r1); B[i][j] = r0; } } }",
        );
        assert_eq!(s.carried_scalars(), &["r1".to_string()]);
        assert!(matches!(
            s.jam_violation(&[2, 1]),
            Some(JamViolation::CarriedScalar { level: 0, .. })
        ));
        assert!(s.jam_violation(&[1, 2]).is_none());
        // The chain threads iterations in sequence order, so the nest is
        // pinned to the identity permutation even though no *array*
        // dependence constrains it (found by the fuzzer's legality
        // oracle: interchanging the rotate chain diverged semantically).
        assert!(s.identity_only());
        assert_eq!(s.legal_permutations(), &[vec![0, 1]]);
    }

    #[test]
    fn matmul_admits_all_six_orders() {
        let s = summary(
            "kernel mm { in A: i32[8][8]; in B: i32[8][8]; inout C: i32[8][8];
               for i in 0..8 { for j in 0..8 { for k in 0..8 {
                 C[i][j] = C[i][j] + A[i][k] * B[k][j]; } } } }",
        );
        assert_eq!(s.legal_permutations().len(), 6);
        assert_eq!(s.legal_permutations()[0], vec![0, 1, 2]);
    }

    #[test]
    fn packing_facts_track_stride_and_width() {
        // u8 at unit stride: packing shares a 32-bit word between 4
        // neighbouring loads.
        let s = summary(
            "kernel p { in A: u8[64]; out B: i32[64];
               for i in 0..64 { B[i] = A[i]; } }",
        );
        let a = s.packing().iter().find(|p| p.array == "A").unwrap();
        assert_eq!(a.elem_bits, 8);
        assert_eq!(a.min_stride, Some(1));
        assert!(a.effective(32));
        assert!(s.packing_effective(32));
        // The full-width output cannot pack.
        let b = s.packing().iter().find(|p| p.array == "B").unwrap();
        assert!(!b.effective(32));

        // Stride 4 on u8 under a 32-bit word: every access lands in its
        // own word — provably inert.
        let s = summary(
            "kernel q { in A: u8[64]; out B: i32[16];
               for i in 0..16 { B[i] = A[i * 4]; } }",
        );
        let a = s.packing().iter().find(|p| p.array == "A").unwrap();
        assert_eq!(a.min_stride, Some(4));
        assert!(!a.effective(32));
        assert!(!s.packing_effective(32));
    }

    #[test]
    fn narrowing_facts_follow_annotations() {
        let s = summary(
            "kernel n { in A: i32[16] range 0..100; out B: i32[16];
               for i in 0..16 { B[i] = A[i]; } }",
        );
        let a = s.narrowing().iter().find(|n| n.array == "A").unwrap();
        assert_eq!(a.declared_bits, 32);
        assert!(a.inferred_bits < 32, "range 0..100 needs few bits");
        assert!(a.narrowable());
        assert!(s.narrowing_applicable());
        // Without an annotation nothing narrows.
        let s = summary(
            "kernel w { in A: i32[16]; out B: i32[16];
               for i in 0..16 { B[i] = A[i]; } }",
        );
        assert!(!s.narrowing_applicable());
    }
}
