//! Analytic derivation of unrolled-and-jammed analyses.
//!
//! Unroll-and-jam replicates the innermost body once per combination of
//! unroll offsets, substituting `var := var + offset` into each copy. The
//! effect on the *analyses* of that body is entirely predictable from the
//! base body's analyses:
//!
//! - the jammed access table is the base table repeated once per offset
//!   tuple (tuple-major, matching the jammed body's program order), with
//!   each subscript's constant term shifted by `Σ coeff(varₗ)·tupleₗ`;
//! - the jammed uniformly generated sets are the base sets (signatures are
//!   untouched by constant shifts, so sets never merge or split), with
//!   each base member replicated per tuple and its constant offsets
//!   shifted by the signature-weighted tuple.
//!
//! The incremental evaluation path uses these to skip re-collecting and
//! re-partitioning accesses of bodies whose statement count grows with
//! `P(U)`. Unit tests pin both derivations against the from-statements
//! analyses of actually jammed bodies.

use crate::access::{Access, AccessId, AccessTable};
use crate::uniform::UniformSet;

/// The access table of the jammed body obtained by replicating the body
/// of `base` once per offset tuple in `tuples` (in that order), offsetting
/// loop variable `vars[l]` by `tuple[l]` in each copy.
///
/// Equals `AccessTable::from_stmts` of the jammed body, because jamming
/// neither reorders accesses within a copy nor changes their
/// read/write/conditional classification.
pub fn jammed_access_table(base: &AccessTable, vars: &[&str], tuples: &[Vec<i64>]) -> AccessTable {
    let mut accesses = Vec::with_capacity(base.len() * tuples.len());
    for tuple in tuples {
        let deltas: Vec<(&str, i64)> = vars
            .iter()
            .copied()
            .zip(tuple.iter().copied())
            .filter(|&(_, d)| d != 0)
            .collect();
        for a in base.accesses() {
            let access = if deltas.is_empty() {
                a.access.clone()
            } else {
                a.access.map_indices(|e| e.offset_vars(&deltas))
            };
            accesses.push(Access {
                id: AccessId(accesses.len()),
                access,
                is_write: a.is_write,
                conditional: a.conditional,
            });
        }
    }
    AccessTable::from_accesses(accesses)
}

/// The uniformly generated sets of the jammed body, derived from the base
/// body's sets. `base_len` is the base table's access count (the id
/// stride between consecutive copies); `tuples` must be the same offset
/// tuples, in the same order, used to build the jammed body.
///
/// Equals `uniform_sets` over the jammed table: offset substitution
/// preserves every signature, so copy `t` of base member `m` falls into
/// the same set as `m`, with constant offsets shifted per dimension by
/// the signature row dotted with the tuple. Set order is preserved
/// because the first (all-zero) tuple replays the base accesses in base
/// program order.
pub fn jammed_uniform_sets(
    base_sets: &[UniformSet],
    base_len: usize,
    tuples: &[Vec<i64>],
) -> Vec<UniformSet> {
    base_sets
        .iter()
        .map(|s| {
            let mut members = Vec::with_capacity(s.members.len() * tuples.len());
            let mut offsets = Vec::with_capacity(s.offsets.len() * tuples.len());
            for (rank, tuple) in tuples.iter().enumerate() {
                let shift: Vec<i64> = s
                    .signature
                    .iter()
                    .map(|row| row.iter().zip(tuple).map(|(c, t)| c * t).sum())
                    .collect();
                for (m, off) in s.members.iter().zip(&s.offsets) {
                    members.push(AccessId(rank * base_len + m.0));
                    offsets.push(off.iter().zip(&shift).map(|(o, sh)| o + sh).collect());
                }
            }
            UniformSet {
                array: s.array.clone(),
                is_write: s.is_write,
                signature: s.signature.clone(),
                members,
                offsets,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::uniform_sets;
    use defacto_ir::visit::offset_var_stmts;
    use defacto_ir::{parse_kernel, Stmt};

    /// Offset tuples in the jam order (outermost slowest), and the jammed
    /// body built the way unroll-and-jam builds it.
    fn jam(body: &[Stmt], vars: &[&str], factors: &[i64]) -> (Vec<Stmt>, Vec<Vec<i64>>) {
        let mut tuples: Vec<Vec<i64>> = vec![vec![]];
        for &f in factors {
            tuples = tuples
                .iter()
                .flat_map(|t| {
                    (0..f).map(move |o| {
                        let mut t = t.clone();
                        t.push(o);
                        t
                    })
                })
                .collect();
        }
        let mut out = Vec::new();
        for t in &tuples {
            let mut copy = body.to_vec();
            for (l, &off) in t.iter().enumerate() {
                if off != 0 {
                    copy = offset_var_stmts(&copy, vars[l], off);
                }
            }
            out.extend(copy);
        }
        (out, tuples)
    }

    fn check(src: &str, factors: &[i64]) {
        let k = parse_kernel(src).unwrap();
        let nest = k.perfect_nest().unwrap();
        let vars = nest.vars();
        let base = AccessTable::from_stmts(nest.innermost_body());
        let base_sets = uniform_sets(&base, &vars);
        let (jammed_body, tuples) = jam(nest.innermost_body(), &vars, factors);

        let expected_table = AccessTable::from_stmts(&jammed_body);
        let derived_table = jammed_access_table(&base, &vars, &tuples);
        assert_eq!(derived_table, expected_table, "table for {factors:?}");

        let expected_sets = uniform_sets(&expected_table, &vars);
        let derived_sets = jammed_uniform_sets(&base_sets, base.len(), &tuples);
        assert_eq!(derived_sets, expected_sets, "sets for {factors:?}");
    }

    #[test]
    fn fir_jammed_analyses_match_from_stmts() {
        let fir = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
           for j in 0..64 { for i in 0..32 {
             D[j] = D[j] + S[i + j] * C[i]; } } }";
        for factors in [[1, 1], [2, 2], [4, 1], [1, 8], [8, 4]] {
            check(fir, &factors);
        }
    }

    #[test]
    fn conditional_and_scalar_read_bodies_match() {
        // Conditional accesses and 2-D subscripts exercise the
        // classification copying and per-dimension shifts.
        let src = "kernel c { in A: i32[12][12]; inout B: i32[12][12];
           for i in 0..8 { for j in 0..8 {
             if (A[i][j] > 0) { B[i + 1][j + 2] = B[i + 1][j + 2] + A[i][j + 1]; } } } }";
        for factors in [[1, 1], [2, 4], [4, 2]] {
            check(src, &factors);
        }
    }

    #[test]
    fn single_loop_stencil_matches() {
        let src = "kernel st { in A: i16[66]; out B: i16[64];
           for i in 0..64 { B[i] = A[i] + A[i + 1] + A[i + 2]; } }";
        for factors in [[1], [2], [4], [8]] {
            check(src, &factors);
        }
    }
}
