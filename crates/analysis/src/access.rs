//! Collection of array accesses from a statement body.

use defacto_ir::{ArrayAccess, Stmt};

/// Index of an access within an [`AccessTable`], stable for the lifetime of
/// the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessId(pub usize);

/// One array access occurrence in a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Identifier (position in program order).
    pub id: AccessId,
    /// The access expression.
    pub access: ArrayAccess,
    /// True for stores, false for loads.
    pub is_write: bool,
    /// True when the access executes under an `if` (conditional accesses
    /// still occupy a memory slot in the paper's generated code, but the
    /// distinction is kept for diagnostics).
    pub conditional: bool,
}

/// All array accesses of a statement body, in program order.
///
/// The table is the shared input of the uniformly-generated-set, dependence
/// and reuse analyses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessTable {
    accesses: Vec<Access>,
}

impl AccessTable {
    /// Collect accesses from `stmts` recursively (loads in expressions and
    /// `if` conditions, stores on assignment targets).
    pub fn from_stmts(stmts: &[Stmt]) -> Self {
        let mut accesses = Vec::new();
        collect(stmts, false, &mut accesses);
        AccessTable { accesses }
    }

    /// Assemble a table from an explicit access list whose ids are
    /// positional. Used by analytic derivations (see [`crate::jam`]) that
    /// build a body's table without re-walking its statements.
    ///
    /// # Panics
    ///
    /// Debug-asserts that each access's id equals its position.
    pub fn from_accesses(accesses: Vec<Access>) -> Self {
        debug_assert!(accesses.iter().enumerate().all(|(i, a)| a.id.0 == i));
        AccessTable { accesses }
    }

    /// All accesses in program order.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Access by id.
    pub fn get(&self, id: AccessId) -> &Access {
        &self.accesses[id.0]
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True when the body has no array accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Iterator over read accesses.
    pub fn reads(&self) -> impl Iterator<Item = &Access> + '_ {
        self.accesses.iter().filter(|a| !a.is_write)
    }

    /// Iterator over write accesses.
    pub fn writes(&self) -> impl Iterator<Item = &Access> + '_ {
        self.accesses.iter().filter(|a| a.is_write)
    }

    /// Names of arrays accessed, deduplicated, in first-use order.
    pub fn arrays(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for a in &self.accesses {
            if !out.contains(&a.access.array.as_str()) {
                out.push(&a.access.array);
            }
        }
        out
    }
}

fn collect(stmts: &[Stmt], conditional: bool, out: &mut Vec<Access>) {
    // Manual recursion (rather than `walk_stmts`) to thread conditional
    // context.
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                for a in rhs.loads() {
                    push(out, a.clone(), false, conditional);
                }
                if let Some(a) = lhs.as_array() {
                    push(out, a.clone(), true, conditional);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                for a in cond.loads() {
                    push(out, a.clone(), false, conditional);
                }
                collect(then_body, true, out);
                collect(else_body, true, out);
            }
            Stmt::For(l) => collect(&l.body, conditional, out),
            Stmt::Rotate(_) => {}
        }
    }
}

fn push(out: &mut Vec<Access>, access: ArrayAccess, is_write: bool, conditional: bool) {
    let id = AccessId(out.len());
    out.push(Access {
        id,
        access,
        is_write,
        conditional,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;

    #[test]
    fn collects_in_program_order() {
        let k = parse_kernel(
            "kernel t { in A: i32[8]; in B: i32[8]; out C: i32[8];
               for i in 0..8 { C[i] = A[i] + B[i]; } }",
        )
        .unwrap();
        let nest = k.perfect_nest().unwrap();
        let t = AccessTable::from_stmts(nest.innermost_body());
        assert_eq!(t.len(), 3);
        assert_eq!(t.accesses()[0].access.array, "A");
        assert_eq!(t.accesses()[1].access.array, "B");
        assert!(t.accesses()[2].is_write);
        assert_eq!(t.reads().count(), 2);
        assert_eq!(t.writes().count(), 1);
        assert_eq!(t.arrays(), vec!["A", "B", "C"]);
    }

    #[test]
    fn conditional_context_is_tracked() {
        let k = parse_kernel(
            "kernel t { in A: i32[8]; out C: i32[8];
               for i in 0..8 { if (A[i] > 0) { C[i] = A[i]; } } }",
        )
        .unwrap();
        let nest = k.perfect_nest().unwrap();
        let t = AccessTable::from_stmts(nest.innermost_body());
        assert_eq!(t.len(), 3);
        assert!(!t.accesses()[0].conditional); // condition load itself
        assert!(t.accesses()[1].conditional); // A[i] in branch
        assert!(t.accesses()[2].conditional); // C[i] store
    }

    #[test]
    fn empty_body() {
        let t = AccessTable::from_stmts(&[]);
        assert!(t.is_empty());
    }
}
