//! Uniformly generated reference sets.
//!
//! Two affine references to the same array are *uniformly generated* when
//! their subscript expressions have identical coefficients on every loop
//! index variable — they differ only by constant offsets (So et al. §4,
//! following Gannon/Jalby/Gallivan). Uniformly generated sets are the unit
//! at which the system operates:
//!
//! - scalar replacement keeps one memory access per set and serves the
//!   rest from registers;
//! - array renaming (custom data layout) assigns virtual memory ids per
//!   set;
//! - the saturation point is computed from the number of read and write
//!   sets (`R` and `W` in the paper).

use crate::access::{AccessId, AccessTable};

/// A maximal group of same-array, same-direction accesses with identical
/// affine coefficient vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformSet {
    /// Array the set refers to.
    pub array: String,
    /// True for a write set, false for a read set.
    pub is_write: bool,
    /// Per-dimension coefficient vectors over the nest's loop variables
    /// (outermost first) — the set's signature.
    pub signature: Vec<Vec<i64>>,
    /// Members, in program order.
    pub members: Vec<AccessId>,
    /// Per-member constant offsets (one `Vec<i64>` per member, one entry
    /// per array dimension), aligned with `members`.
    pub offsets: Vec<Vec<i64>>,
}

impl UniformSet {
    /// Number of member accesses.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the set has no members (never produced by
    /// [`uniform_sets`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Distinct constant-offset vectors, sorted lexicographically.
    /// Multiple syntactic references with identical offsets collapse here —
    /// they are the *loop-independent* reuse within one iteration.
    pub fn distinct_offsets(&self) -> Vec<Vec<i64>> {
        let mut v = self.offsets.clone();
        v.sort();
        v.dedup();
        v
    }

    /// True when the set's subscripts vary with loop `level` (0-based index
    /// into the `vars` ordering the signature was built with).
    pub fn varies_with(&self, level: usize) -> bool {
        self.signature.iter().any(|dim| dim[level] != 0)
    }

    /// Indices of loops the set varies with.
    pub fn varying_levels(&self) -> Vec<usize> {
        let n = self.signature.first().map(|d| d.len()).unwrap_or(0);
        (0..n).filter(|&l| self.varies_with(l)).collect()
    }

    /// True when the set is invariant in every loop (constant subscripts).
    pub fn is_fully_invariant(&self) -> bool {
        self.varying_levels().is_empty()
    }
}

/// Partition the accesses of `table` into uniformly generated sets.
///
/// Reads and writes are partitioned separately (they are scheduled
/// separately by behavioral synthesis and counted separately in the
/// saturation-point formula). `vars` orders the coefficient vectors,
/// outermost loop first. Sets preserve first-member program order.
pub fn uniform_sets(table: &AccessTable, vars: &[&str]) -> Vec<UniformSet> {
    let mut sets: Vec<UniformSet> = Vec::new();
    for acc in table.accesses() {
        let signature = acc.access.coeff_signature(vars);
        let offsets = acc.access.constant_offsets();
        match sets.iter_mut().find(|s| {
            s.array == acc.access.array && s.is_write == acc.is_write && s.signature == signature
        }) {
            Some(s) => {
                s.members.push(acc.id);
                s.offsets.push(offsets);
            }
            None => sets.push(UniformSet {
                array: acc.access.array.clone(),
                is_write: acc.is_write,
                signature,
                members: vec![acc.id],
                offsets: vec![offsets],
            }),
        }
    }
    sets
}

/// Count the read sets (`R`) and write sets (`W`) of the paper's
/// saturation-point formula — only sets that vary with at least one loop
/// are counted, because invariant accesses are removed from the main loop
/// body by loop-invariant code motion.
pub fn count_varying_sets(sets: &[UniformSet]) -> (usize, usize) {
    let r = sets
        .iter()
        .filter(|s| !s.is_write && !s.is_fully_invariant())
        .count();
    let w = sets
        .iter()
        .filter(|s| s.is_write && !s.is_fully_invariant())
        .count();
    (r, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;

    fn sets_for(src: &str) -> Vec<UniformSet> {
        let k = parse_kernel(src).unwrap();
        let nest = k.perfect_nest().unwrap();
        let table = AccessTable::from_stmts(nest.innermost_body());
        let vars = nest.vars();
        uniform_sets(&table, &vars)
    }

    #[test]
    fn fir_has_four_sets() {
        let sets = sets_for(
            "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
               for j in 0..64 { for i in 0..32 {
                 D[j] = D[j] + S[i + j] * C[i]; } } }",
        );
        // Read sets: D[j], S[i+j], C[i]; write set: D[j].
        assert_eq!(sets.len(), 4);
        let d_read = sets.iter().find(|s| s.array == "D" && !s.is_write).unwrap();
        assert_eq!(d_read.signature, vec![vec![1, 0]]);
        let s_read = sets.iter().find(|s| s.array == "S").unwrap();
        assert_eq!(s_read.signature, vec![vec![1, 1]]);
        let (r, w) = count_varying_sets(&sets);
        assert_eq!((r, w), (3, 1));
    }

    #[test]
    fn offset_shifted_references_group_together() {
        let sets = sets_for(
            "kernel st { in A: i32[66]; out B: i32[64];
               for i in 0..64 {
                 B[i] = A[i] + A[i + 1] + A[i + 2];
               } }",
        );
        let a = sets.iter().find(|s| s.array == "A").unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.distinct_offsets(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn different_coefficients_split_sets() {
        let sets = sets_for(
            "kernel sp { in A: i32[130]; out B: i32[64];
               for i in 0..64 {
                 B[i] = A[i] + A[2*i];
               } }",
        );
        let a_sets: Vec<_> = sets.iter().filter(|s| s.array == "A").collect();
        assert_eq!(a_sets.len(), 2);
    }

    #[test]
    fn duplicate_offsets_collapse_in_distinct() {
        let sets = sets_for(
            "kernel dup { in A: i32[8]; out B: i32[8];
               for i in 0..8 { B[i] = A[i] * A[i]; } }",
        );
        let a = sets.iter().find(|s| s.array == "A").unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.distinct_offsets().len(), 1);
    }

    #[test]
    fn two_dimensional_signatures() {
        let sets = sets_for(
            "kernel mm { in A: i32[32][16]; in B: i32[16][4]; inout C: i32[32][4];
               for i in 0..32 { for j in 0..4 { for k in 0..16 {
                 C[i][j] = C[i][j] + A[i][k] * B[k][j]; } } } }",
        );
        // Read sets: C, A, B; write set: C.
        assert_eq!(sets.len(), 4);
        let a = sets.iter().find(|s| s.array == "A").unwrap();
        // Over (i, j, k): row subscript i -> [1,0,0], col subscript k -> [0,0,1].
        assert_eq!(a.signature, vec![vec![1, 0, 0], vec![0, 0, 1]]);
        assert_eq!(a.varying_levels(), vec![0, 2]);
        assert!(!a.varies_with(1));
        let (r, w) = count_varying_sets(&sets);
        assert_eq!((r, w), (3, 1));
    }

    #[test]
    fn fully_invariant_set_detected() {
        let sets = sets_for(
            "kernel inv { in A: i32[4]; out B: i32[8];
               for i in 0..8 { B[i] = A[0]; } }",
        );
        let a = sets.iter().find(|s| s.array == "A").unwrap();
        assert!(a.is_fully_invariant());
        let (r, _) = count_varying_sets(&sets);
        assert_eq!(r, 0);
    }
}
