//! Exact rational linear algebra for dependence-distance computation.
//!
//! Dependence analysis between two uniformly generated references reduces
//! to solving `M · d = Δ` where `M` is the (dimensions × loops) coefficient
//! matrix of the references and `Δ` the difference of their constant
//! offsets. The solver reports, per loop variable, whether the distance
//! component is a unique rational value, completely unconstrained
//! (the subscripts are invariant in that loop), or coupled to other
//! variables (no constant distance exists).

use std::fmt;

/// An exact rational number with `i128` numerator/denominator.
///
/// The denominator is always positive and the fraction is reduced, so
/// equality is mathematical equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// Construct `num/den`, normalizing sign and reducing.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd_i128(num.abs(), den.abs()).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `v`.
    pub fn from_int(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }

    /// Numerator (after reduction; sign lives here).
    pub fn numerator(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denominator(self) -> i128 {
        self.den
    }

    /// The value as an integer, when it is one.
    pub fn as_integer(self) -> Option<i64> {
        if self.den == 1 {
            i64::try_from(self.num).ok()
        } else {
            None
        }
    }

    /// True for the zero value.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    fn add(self, o: Rational) -> Rational {
        Rational::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }

    fn mul(self, o: Rational) -> Rational {
        Rational::new(self.num * o.num, self.den * o.den)
    }

    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }

    fn div(self, o: Rational) -> Rational {
        assert!(!o.is_zero(), "rational division by zero");
        Rational::new(self.num * o.den, self.den * o.num)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Greatest common divisor of two non-negative `i128`s.
pub(crate) fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Greatest common divisor of two `i64`s (absolute value; `gcd(0,0)=0`).
pub fn gcd_i64(a: i64, b: i64) -> i64 {
    gcd_i128(a as i128, b as i128) as i64
}

/// Per-variable result of [`solve_affine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarSolution {
    /// The variable has exactly one value in every solution.
    Unique(Rational),
    /// The variable does not appear in the system (zero column): any value
    /// solves it. For dependence distances this means the references are
    /// invariant in that loop.
    Invariant,
    /// The variable is constrained but not to a single value (it trades off
    /// against other variables): no constant distance exists.
    Coupled,
}

/// Solve `M · x = rhs` exactly.
///
/// Returns `None` when the system is inconsistent (no solution — for
/// dependence analysis this proves independence), otherwise one
/// [`VarSolution`] per column of `M`.
///
/// # Panics
///
/// Panics if the rows of `M` and `rhs` have mismatched lengths.
pub fn solve_affine(m: &[Vec<i64>], rhs: &[i64]) -> Option<Vec<VarSolution>> {
    assert_eq!(m.len(), rhs.len(), "matrix/rhs row mismatch");
    let rows = m.len();
    let cols = m.first().map(|r| r.len()).unwrap_or(0);
    for r in m {
        assert_eq!(r.len(), cols, "ragged matrix");
    }

    // Augmented rational matrix.
    let mut a: Vec<Vec<Rational>> = (0..rows)
        .map(|i| {
            let mut row: Vec<Rational> = m[i]
                .iter()
                .map(|&v| Rational::from_int(v as i128))
                .collect();
            row.push(Rational::from_int(rhs[i] as i128));
            row
        })
        .collect();

    // Gauss–Jordan to reduced row echelon form.
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; cols];
    let mut pivot_row = 0usize;
    for col in 0..cols {
        // Find a pivot.
        let Some(r) = (pivot_row..rows).find(|&r| !a[r][col].is_zero()) else {
            continue;
        };
        a.swap(pivot_row, r);
        // Normalize pivot row.
        let p = a[pivot_row][col];
        for v in a[pivot_row].iter_mut() {
            *v = v.div(p);
        }
        // Eliminate everywhere else.
        for r2 in 0..rows {
            if r2 != pivot_row && !a[r2][col].is_zero() {
                let f = a[r2][col];
                let pivot = a[pivot_row].clone();
                for (cell, p) in a[r2].iter_mut().zip(&pivot) {
                    *cell = cell.add(p.mul(f).neg());
                }
            }
        }
        pivot_of_col[col] = Some(pivot_row);
        pivot_row += 1;
        if pivot_row == rows {
            break;
        }
    }

    // Inconsistency: a zero row with non-zero rhs.
    for row in &a {
        if row[..cols].iter().all(|v| v.is_zero()) && !row[cols].is_zero() {
            return None;
        }
    }

    // Free columns: not a pivot. A free column that is all-zero in the
    // *original* matrix is Invariant; otherwise it couples with pivots.
    let zero_col: Vec<bool> = (0..cols).map(|c| m.iter().all(|row| row[c] == 0)).collect();

    let mut out = vec![VarSolution::Coupled; cols];
    for col in 0..cols {
        if zero_col[col] {
            out[col] = VarSolution::Invariant;
            continue;
        }
        match pivot_of_col[col] {
            None => {
                // Non-zero free column: coupled.
                out[col] = VarSolution::Coupled;
            }
            Some(r) => {
                // Unique iff the pivot row has no non-zero entries in free,
                // non-invariant columns.
                let coupled = (0..cols).any(|c2| {
                    c2 != col && pivot_of_col[c2].is_none() && !zero_col[c2] && !a[r][c2].is_zero()
                });
                if coupled {
                    out[col] = VarSolution::Coupled;
                } else {
                    out[col] = VarSolution::Unique(a[r][cols]);
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_arithmetic_is_reduced() {
        let r = Rational::new(4, -8);
        assert_eq!(r.numerator(), -1);
        assert_eq!(r.denominator(), 2);
        assert_eq!(Rational::new(3, 1).as_integer(), Some(3));
        assert_eq!(Rational::new(1, 2).as_integer(), None);
        assert_eq!(Rational::new(6, 4), Rational::new(3, 2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn unique_solution() {
        // x + y = 3; x - y = 1  =>  x = 2, y = 1.
        let sol = solve_affine(&[vec![1, 1], vec![1, -1]], &[3, 1]).unwrap();
        assert_eq!(sol[0], VarSolution::Unique(Rational::from_int(2)));
        assert_eq!(sol[1], VarSolution::Unique(Rational::from_int(1)));
    }

    #[test]
    fn invariant_variable() {
        // Column for y is zero: x = 5, y invariant.
        let sol = solve_affine(&[vec![1, 0]], &[5]).unwrap();
        assert_eq!(sol[0], VarSolution::Unique(Rational::from_int(5)));
        assert_eq!(sol[1], VarSolution::Invariant);
    }

    #[test]
    fn coupled_variables() {
        // x + y = 0: both coupled (the S[i+j] case).
        let sol = solve_affine(&[vec![1, 1]], &[0]).unwrap();
        assert_eq!(sol[0], VarSolution::Coupled);
        assert_eq!(sol[1], VarSolution::Coupled);
    }

    #[test]
    fn inconsistent_system() {
        // x = 1 and x = 2.
        assert!(solve_affine(&[vec![1], vec![1]], &[1, 2]).is_none());
        // 0·x = 3.
        assert!(solve_affine(&[vec![0]], &[3]).is_none());
    }

    #[test]
    fn rational_solution_survives() {
        // 2x = 1 => x = 1/2 (dependence analysis will reject non-integers).
        let sol = solve_affine(&[vec![2]], &[1]).unwrap();
        assert_eq!(sol[0], VarSolution::Unique(Rational::new(1, 2)));
    }

    #[test]
    fn redundant_rows_are_fine() {
        // x + y = 2 stated twice, plus x = 1.
        let sol = solve_affine(&[vec![1, 1], vec![1, 1], vec![1, 0]], &[2, 2, 1]).unwrap();
        assert_eq!(sol[0], VarSolution::Unique(Rational::from_int(1)));
        assert_eq!(sol[1], VarSolution::Unique(Rational::from_int(1)));
    }

    #[test]
    fn empty_system_all_invariant() {
        let sol = solve_affine(&[vec![0, 0]], &[0]).unwrap();
        assert_eq!(sol, vec![VarSolution::Invariant, VarSolution::Invariant]);
    }

    #[test]
    fn gcd_helpers() {
        assert_eq!(gcd_i64(12, 18), 6);
        assert_eq!(gcd_i64(-12, 18), 6);
        assert_eq!(gcd_i64(0, 5), 5);
        assert_eq!(gcd_i64(0, 0), 0);
    }
}
