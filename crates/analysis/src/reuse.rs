//! Reuse classification of uniformly generated sets.
//!
//! Scalar replacement decides, per uniformly generated set, how data reuse
//! can be captured in on-chip registers. The classification depends only
//! on the set's coefficient matrix, so it is stable under unrolling (which
//! only changes constant offsets):
//!
//! - **`FullyInvariant`** — constant subscripts; one register loaded before
//!   the nest.
//! - **`Consistent`** — the coefficient matrix restricted to varying loops
//!   has full column rank, so every member pair has a constant reuse
//!   distance. Sub-cases (derivable from the fields):
//!   - invariant in consecutive *innermost* loops → the access hoists out
//!     of them (loop-invariant code motion / store sinking; the FIR `D[j]`
//!     accumulator);
//!   - invariant in a loop *outer* than the deepest varying loop → the
//!     values cycle and are reusable across that outer loop with a
//!     register chain loaded on its first (peeled) iteration (the FIR
//!     `C[i]` coefficients);
//!   - otherwise → a rolling window along the deepest varying loop
//!     (stencil rows in JAC/SOBEL).
//! - **`InconsistentOnly`** — rank-deficient on the varying loops (e.g.
//!   `S[i+j]`): reuse distances are not constant per loop, so only
//!   same-iteration (loop-independent) duplicates can be eliminated.

use crate::uniform::UniformSet;

/// How a uniformly generated set's reuse can be exploited in registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReuseStrategy {
    /// Constant subscripts: a single register suffices.
    FullyInvariant,
    /// Constant per-loop reuse distances.
    Consistent {
        /// Deepest loop level the subscripts vary with.
        deepest_varying: usize,
        /// Number of consecutive innermost loops the set is invariant in
        /// (the access hoists/sinks out of these).
        hoist_inner: usize,
        /// The outermost loop level that is invariant *and* shallower than
        /// `deepest_varying`, if any: values recur across iterations of
        /// that loop and a register chain can hold them.
        outer_reuse: Option<usize>,
    },
    /// Rank-deficient coefficients on the varying loops: only
    /// loop-independent (same-address, same-iteration) reuse exists.
    InconsistentOnly,
}

impl ReuseStrategy {
    /// True when loop-carried reuse can be captured in registers.
    pub fn has_carried_reuse(&self) -> bool {
        !matches!(self, ReuseStrategy::InconsistentOnly)
    }
}

/// Classify a uniformly generated set against a nest of `levels` loops.
///
/// `levels` is the nest depth; the set's signature must have been built
/// over the same loop ordering (outermost first). Consistency is decided
/// by the coefficient rank alone; use [`classify_set_bounded`] when trip
/// counts are available (it additionally recognizes mixed-radix subscripts
/// such as the `C[8·t + i]` produced by tiling).
pub fn classify_set(set: &UniformSet, levels: usize) -> ReuseStrategy {
    classify_impl(set, levels, None)
}

/// Like [`classify_set`] but with per-loop trip counts (outermost first),
/// enabling the mixed-radix uniqueness test: `8·t + i` with `i ∈ [0,8)`
/// determines `t` and `i` uniquely even though the coefficient matrix is
/// rank-deficient.
pub fn classify_set_bounded(set: &UniformSet, trips: &[i64]) -> ReuseStrategy {
    classify_impl(set, trips.len(), Some(trips))
}

fn classify_impl(set: &UniformSet, levels: usize, trips: Option<&[i64]>) -> ReuseStrategy {
    let varying = set.varying_levels();
    if varying.is_empty() {
        return ReuseStrategy::FullyInvariant;
    }
    // Full column rank on varying columns ⇔ constant distances; the
    // bounded mixed-radix test recovers consistency for rank-deficient
    // subscripts whose coefficients dominate the inner ranges.
    let consistent = full_column_rank(&set.signature, &varying)
        || trips.is_some_and(|t| radix_determined(&set.signature, &varying, t));
    if !consistent {
        return ReuseStrategy::InconsistentOnly;
    }
    let deepest_varying = *varying.last().expect("nonempty");
    let hoist_inner = levels - 1 - deepest_varying;
    let outer_reuse = (0..deepest_varying).find(|l| !varying.contains(l));
    ReuseStrategy::Consistent {
        deepest_varying,
        hoist_inner,
        outer_reuse,
    }
}

/// Iterative pinning with the mixed-radix dominance condition: a
/// subscript row determines its (not-yet-pinned) variables uniquely when,
/// sorted by decreasing |coefficient|, each coefficient strictly dominates
/// the maximal combined magnitude of the smaller terms
/// (`|c_k| > Σ_{l>k} |c_l|·(N_l − 1)`). Rows pin variables; pinned
/// variables drop out of other rows; repeat to fixpoint.
fn radix_determined(signature: &[Vec<i64>], varying: &[usize], trips: &[i64]) -> bool {
    let mut pinned: Vec<bool> = varying.iter().map(|_| false).collect();
    loop {
        let mut progress = false;
        for row in signature {
            // Unpinned varying variables appearing in this row.
            let active: Vec<(usize, i64)> = varying
                .iter()
                .enumerate()
                .filter(|(vi, &l)| !pinned[*vi] && row[l] != 0)
                .map(|(vi, &l)| (vi, row[l]))
                .collect();
            if active.is_empty() {
                continue;
            }
            let mut sorted = active.clone();
            sorted.sort_by_key(|(_, c)| std::cmp::Reverse(c.abs()));
            let dominates = (0..sorted.len()).all(|k| {
                let tail: i64 = sorted[k + 1..]
                    .iter()
                    .map(|(vi, c)| {
                        let level = varying[*vi];
                        c.abs() * (trips.get(level).copied().unwrap_or(i64::MAX / 4) - 1)
                    })
                    .sum();
                sorted[k].1.abs() > tail
            });
            if dominates {
                for (vi, _) in &active {
                    if !pinned[*vi] {
                        pinned[*vi] = true;
                        progress = true;
                    }
                }
            }
        }
        if pinned.iter().all(|&p| p) {
            return true;
        }
        if !progress {
            return false;
        }
    }
}

/// Rank check of the signature restricted to `cols`, by fraction-free
/// Gaussian elimination over `i128`.
fn full_column_rank(signature: &[Vec<i64>], cols: &[usize]) -> bool {
    let mut m: Vec<Vec<i128>> = signature
        .iter()
        .map(|row| cols.iter().map(|&c| row[c] as i128).collect())
        .collect();
    let ncols = cols.len();
    let nrows = m.len();
    let mut rank = 0usize;
    #[allow(clippy::explicit_counter_loop)]
    for col in 0..ncols {
        let Some(pivot) = (rank..nrows).find(|&r| m[r][col] != 0) else {
            return false; // this column is linearly dependent on earlier ones
        };
        m.swap(rank, pivot);
        let p = m[rank][col];
        let pivot_row = m[rank].clone();
        for (r, row) in m.iter_mut().enumerate() {
            if r != rank && row[col] != 0 {
                let f = row[col];
                for (cell, pv) in row.iter_mut().zip(&pivot_row) {
                    *cell = *cell * p - pv * f;
                }
            }
        }
        rank += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessTable;
    use crate::uniform::uniform_sets;
    use defacto_ir::parse_kernel;

    fn classify(src: &str, array: &str, is_write: bool) -> (ReuseStrategy, usize) {
        let k = parse_kernel(src).unwrap();
        let nest = k.perfect_nest().unwrap();
        let table = AccessTable::from_stmts(nest.innermost_body());
        let vars = nest.vars();
        let sets = uniform_sets(&table, &vars);
        let set = sets
            .iter()
            .find(|s| s.array == array && s.is_write == is_write)
            .unwrap_or_else(|| panic!("no set for {array}"));
        (classify_set(set, nest.depth()), nest.depth())
    }

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn fir_d_hoists_out_of_inner_loop() {
        let (s, _) = classify(FIR, "D", false);
        assert_eq!(
            s,
            ReuseStrategy::Consistent {
                deepest_varying: 0,
                hoist_inner: 1,
                outer_reuse: None,
            }
        );
    }

    #[test]
    fn fir_c_has_outer_reuse_across_j() {
        let (s, _) = classify(FIR, "C", false);
        assert_eq!(
            s,
            ReuseStrategy::Consistent {
                deepest_varying: 1,
                hoist_inner: 0,
                outer_reuse: Some(0),
            }
        );
    }

    #[test]
    fn fir_s_is_inconsistent() {
        let (s, _) = classify(FIR, "S", false);
        assert_eq!(s, ReuseStrategy::InconsistentOnly);
    }

    #[test]
    fn stencil_is_windowed() {
        let (s, _) = classify(
            "kernel st { in A: i16[66]; out B: i16[64];
               for i in 1..63 { B[i] = A[i - 1] + A[i] + A[i + 1]; } }",
            "A",
            false,
        );
        // Varies with the only loop; no hoisting, no outer reuse: a
        // rolling window.
        assert_eq!(
            s,
            ReuseStrategy::Consistent {
                deepest_varying: 0,
                hoist_inner: 0,
                outer_reuse: None,
            }
        );
    }

    const MM: &str = "kernel mm { in A: i32[32][16]; in B: i32[16][4]; inout C: i32[32][4];
       for i in 0..32 { for j in 0..4 { for k in 0..16 {
         C[i][j] = C[i][j] + A[i][k] * B[k][j]; } } } }";

    #[test]
    fn matmul_classification() {
        // C[i][j]: varies (i,j), invariant in k (innermost) → hoist 1.
        let (c, _) = classify(MM, "C", false);
        assert_eq!(
            c,
            ReuseStrategy::Consistent {
                deepest_varying: 1,
                hoist_inner: 1,
                outer_reuse: None,
            }
        );
        // A[i][k]: varies (i,k), invariant in j → outer reuse across j.
        let (a, _) = classify(MM, "A", false);
        assert_eq!(
            a,
            ReuseStrategy::Consistent {
                deepest_varying: 2,
                hoist_inner: 0,
                outer_reuse: Some(1),
            }
        );
        // B[k][j]: varies (j,k), invariant in i → outer reuse across i.
        let (b, _) = classify(MM, "B", false);
        assert_eq!(
            b,
            ReuseStrategy::Consistent {
                deepest_varying: 2,
                hoist_inner: 0,
                outer_reuse: Some(0),
            }
        );
    }

    #[test]
    fn fully_invariant() {
        let (s, _) = classify(
            "kernel inv { in A: i32[4]; out B: i32[8];
               for i in 0..8 { B[i] = A[2]; } }",
            "A",
            false,
        );
        assert_eq!(s, ReuseStrategy::FullyInvariant);
    }

    #[test]
    fn bounded_classification_recognizes_tiled_subscripts() {
        use crate::access::AccessTable;
        use crate::uniform::uniform_sets;
        // C[8*t + i] over (t, j, i) with trips (4, 64, 8): rank-deficient
        // but radix-determined.
        let k = defacto_ir::parse_kernel(
            "kernel t { in C: i32[32]; out B: i32[64];
               for t in 0..4 { for j in 0..64 { for i in 0..8 {
                 B[j] = B[j] + C[8*t + i]; } } } }",
        )
        .unwrap();
        let nest = k.perfect_nest().unwrap();
        let table = AccessTable::from_stmts(nest.innermost_body());
        let vars = nest.vars();
        let sets = uniform_sets(&table, &vars);
        let c = sets.iter().find(|s| s.array == "C").unwrap();
        // Rank-only classification gives up...
        assert_eq!(classify_set(c, 3), ReuseStrategy::InconsistentOnly);
        // ...but the bounded test recognizes outer reuse across j.
        assert_eq!(
            classify_set_bounded(c, &[4, 64, 8]),
            ReuseStrategy::Consistent {
                deepest_varying: 2,
                hoist_inner: 0,
                outer_reuse: Some(1),
            }
        );
        // With a too-large inner range the radix condition fails.
        assert_eq!(
            classify_set_bounded(c, &[4, 64, 9]),
            ReuseStrategy::InconsistentOnly
        );
    }

    #[test]
    fn diagonal_2d_access_is_inconsistent() {
        // A[i+j][j] over (i,j): columns [1,1] and [0,1] — full rank, so
        // consistent; but A[i+j][i+j] is rank 1 on two varying loops.
        let (s1, _) = classify(
            "kernel d1 { in A: i32[16][16]; out B: i32[8][8];
               for i in 0..8 { for j in 0..8 { B[i][j] = A[i + j][j]; } } }",
            "A",
            false,
        );
        assert!(matches!(s1, ReuseStrategy::Consistent { .. }));
        let (s2, _) = classify(
            "kernel d2 { in A: i32[16][16]; out B: i32[8][8];
               for i in 0..8 { for j in 0..8 { B[i][j] = A[i + j][i + j]; } } }",
            "A",
            false,
        );
        assert_eq!(s2, ReuseStrategy::InconsistentOnly);
    }
}
