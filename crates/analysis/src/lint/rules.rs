//! The kernel-level lint rules (`DF005`–`DF008`, `DF010`–`DF012`).

use super::{LintContext, LintRule};
use crate::access::AccessTable;
use crate::dependence::{analyze_dependences_with_bounds, DependenceGraph, DistElem};
use crate::legality::LegalitySummary;
use crate::range::Interval;
use crate::uniform::uniform_sets;
use defacto_ir::diag::{codes, Diagnostic};
use defacto_ir::stmt::collect_accesses;
use defacto_ir::{ArrayAccess, Expr, LValue, Stmt};
use std::collections::{HashMap, HashSet};

/// All kernel-level rules, in reporting order.
pub fn all() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(OutOfBoundsAccess),
        Box::new(UnusedDecl),
        Box::new(JamBlocked),
        Box::new(WriteWriteConflict),
        Box::new(DegenerateLoop),
        Box::new(InterchangePinned),
        Box::new(PackingInert),
    ]
}

/// `DF005`: a subscript's value range, computed from the loop bounds by
/// interval arithmetic, falls outside the declared extent.
///
/// Accesses under an `if` are skipped — the guard may be exactly what
/// keeps them in bounds — while accesses in a `?:` are checked, since the
/// reference interpreter evaluates both arms.
pub struct OutOfBoundsAccess;

impl LintRule for OutOfBoundsAccess {
    fn code(&self) -> &'static str {
        codes::OUT_OF_BOUNDS
    }

    fn name(&self) -> &'static str {
        "out-of-bounds-access"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let mut env: HashMap<String, Interval> = HashMap::new();
        check_bounds_stmts(ctx, ctx.kernel.body(), &mut env, &mut diags);
        diags
    }
}

fn check_bounds_stmts(
    ctx: &LintContext<'_>,
    stmts: &[Stmt],
    env: &mut HashMap<String, Interval>,
    diags: &mut Vec<Diagnostic>,
) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                if let LValue::Array(a) = lhs {
                    check_bounds_access(ctx, a, env, diags);
                }
                check_bounds_expr(ctx, rhs, env, diags);
            }
            Stmt::If { cond, .. } => {
                // The condition always evaluates; the guarded bodies are
                // skipped (see rule docs).
                check_bounds_expr(ctx, cond, env, diags);
            }
            Stmt::For(l) => {
                if l.trip_count() > 0 {
                    let max = l.lower + (l.trip_count() - 1) * l.step;
                    env.insert(l.var.clone(), Interval::new(l.lower, max));
                    check_bounds_stmts(ctx, &l.body, env, diags);
                    env.remove(&l.var);
                }
            }
            Stmt::Rotate(_) => {}
        }
    }
}

fn check_bounds_expr(
    ctx: &LintContext<'_>,
    e: &Expr,
    env: &HashMap<String, Interval>,
    diags: &mut Vec<Diagnostic>,
) {
    match e {
        Expr::Int(_) | Expr::Scalar(_) => {}
        Expr::Load(a) => check_bounds_access(ctx, a, env, diags),
        Expr::Unary(_, e) => check_bounds_expr(ctx, e, env, diags),
        Expr::Binary(_, a, b) => {
            check_bounds_expr(ctx, a, env, diags);
            check_bounds_expr(ctx, b, env, diags);
        }
        Expr::Select(c, t, f) => {
            check_bounds_expr(ctx, c, env, diags);
            check_bounds_expr(ctx, t, env, diags);
            check_bounds_expr(ctx, f, env, diags);
        }
    }
}

fn check_bounds_access(
    ctx: &LintContext<'_>,
    access: &ArrayAccess,
    env: &HashMap<String, Interval>,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(decl) = ctx.kernel.array(&access.array) else {
        return; // undeclared arrays are the validator's problem
    };
    for (d, idx) in access.indices.iter().enumerate() {
        let Some(&extent) = decl.dims.get(d) else {
            continue;
        };
        let mut range = Interval::point(idx.constant_term());
        let mut symbolic = false;
        for v in idx.vars() {
            match env.get(v) {
                Some(&iv) => range = range.add(iv.mul(Interval::point(idx.coeff(v)))),
                None => {
                    symbolic = true;
                    break;
                }
            }
        }
        if symbolic {
            continue;
        }
        if range.lo < 0 || range.hi >= extent as i64 {
            diags.push(
                Diagnostic::error(
                    codes::OUT_OF_BOUNDS,
                    format!(
                        "subscript {d} of `{}` spans {}..={} over the loop bounds, \
                         outside the declared extent {extent}",
                        access.array, range.lo, range.hi
                    ),
                )
                .with_span_opt(ctx.spans.and_then(|s| s.access(access)))
                .with_help(format!(
                    "shrink the loop bounds or grow `{}` to at least {} elements",
                    access.array,
                    range.hi + 1
                )),
            );
        }
    }
}

/// `DF006`: a declared array or scalar is never referenced by the body.
pub struct UnusedDecl;

impl LintRule for UnusedDecl {
    fn code(&self) -> &'static str {
        codes::UNUSED_DECL
    }

    fn name(&self) -> &'static str {
        "unused-declaration"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let used_arrays: HashSet<String> = collect_accesses(ctx.kernel.body())
            .into_iter()
            .map(|(a, _)| a.array)
            .collect();
        for a in ctx.kernel.arrays() {
            if !used_arrays.contains(&a.name) {
                diags.push(
                    Diagnostic::warning(
                        codes::UNUSED_DECL,
                        format!("array `{}` is declared but never accessed", a.name),
                    )
                    .with_span_opt(ctx.spans.and_then(|s| s.decl(&a.name)))
                    .with_help("remove the declaration or reference the array"),
                );
            }
        }
        let mut used_scalars = HashSet::new();
        collect_scalar_uses(ctx.kernel.body(), &mut used_scalars);
        for s in ctx.kernel.scalars() {
            if !used_scalars.contains(s.name.as_str()) {
                diags.push(
                    Diagnostic::warning(
                        codes::UNUSED_DECL,
                        format!("scalar `{}` is declared but never used", s.name),
                    )
                    .with_span_opt(ctx.spans.and_then(|sp| sp.decl(&s.name)))
                    .with_help("remove the declaration or reference the scalar"),
                );
            }
        }
        diags
    }
}

fn collect_scalar_uses(stmts: &[Stmt], out: &mut HashSet<String>) {
    fn expr(e: &Expr, out: &mut HashSet<String>) {
        match e {
            Expr::Int(_) | Expr::Load(_) => {}
            Expr::Scalar(n) => {
                out.insert(n.clone());
            }
            Expr::Unary(_, e) => expr(e, out),
            Expr::Binary(_, a, b) => {
                expr(a, out);
                expr(b, out);
            }
            Expr::Select(c, t, f) => {
                expr(c, out);
                expr(t, out);
                expr(f, out);
            }
        }
    }
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                if let LValue::Scalar(n) = lhs {
                    out.insert(n.clone());
                }
                expr(rhs, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr(cond, out);
                collect_scalar_uses(then_body, out);
                collect_scalar_uses(else_body, out);
            }
            Stmt::For(l) => collect_scalar_uses(&l.body, out),
            Stmt::Rotate(regs) => out.extend(regs.iter().cloned()),
        }
    }
}

/// `DF007`: the dependence structure blocks unroll-and-jam at *every*
/// level that would jam inner loops, so the search can only unroll the
/// innermost loop and most of the design space collapses.
pub struct JamBlocked;

impl LintRule for JamBlocked {
    fn code(&self) -> &'static str {
        codes::JAM_BLOCKED
    }

    fn name(&self) -> &'static str {
        "jam-blocked-everywhere"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(nest) = ctx.kernel.perfect_nest() else {
            return Vec::new();
        };
        let depth = nest.depth();
        if depth < 2 {
            return Vec::new(); // nothing to jam in a 1-deep nest
        }
        let table = AccessTable::from_stmts(nest.innermost_body());
        let vars = nest.vars();
        let bounds: Vec<(i64, i64)> = nest
            .loops()
            .iter()
            .map(|l| (l.lower, l.upper - 1))
            .collect();
        let deps = analyze_dependences_with_bounds(&table, &vars, &bounds);
        // A level is jammable when unrolling it (alone, by 2) keeps all
        // dependences legal; mirror `defacto_xform::unroll_is_legal`.
        let blocked: Vec<usize> = (0..depth - 1)
            .filter(|&l| nest.loop_at(l).trip_count() >= 2 && jam_violation(&deps, l).is_some())
            .collect();
        let jammable = (0..depth - 1)
            .any(|l| nest.loop_at(l).trip_count() >= 2 && jam_violation(&deps, l).is_none());
        if jammable || blocked.is_empty() {
            return Vec::new();
        }
        let (array, _) = jam_violation(&deps, blocked[0]).expect("blocked level has a violation");
        vec![Diagnostic::warning(
            codes::JAM_BLOCKED,
            format!(
                "dependences on `{array}` block unroll-and-jam at every loop level; \
                 only innermost unrolling remains"
            ),
        )
        .with_span_opt(ctx.spans.and_then(|s| s.loop_header(&nest.loop_at(0).var)))
        .with_help("restructure the recurrence (e.g. skew or interchange the nest) to free a loop")]
    }
}

/// The first dependence that makes jamming illegal after unrolling level
/// `l` by 2, if any: carried at `l` within the unroll window with a
/// negative or unknown component at a deeper level.
fn jam_violation(deps: &DependenceGraph, l: usize) -> Option<(String, usize)> {
    for dep in deps.deps().iter().filter(|d| d.kind.constrains()) {
        if !dep.may_be_carried_by(l) {
            continue;
        }
        let within_window = match dep.distance[l] {
            DistElem::Exact(k) => k.abs() < 2,
            DistElem::Any | DistElem::Unknown => true,
        };
        if !within_window {
            continue;
        }
        for deeper in l + 1..dep.distance.len() {
            match dep.distance[deeper] {
                DistElem::Exact(k) if k < 0 => return Some((dep.array.clone(), deeper)),
                DistElem::Unknown => return Some((dep.array.clone(), deeper)),
                _ => {}
            }
        }
    }
    None
}

/// `DF008`: two or more distinct uniformly generated write sets target
/// one array, so redundant-write elimination cannot collapse the array's
/// stores and scalar replacement keeps all of them in memory traffic.
pub struct WriteWriteConflict;

impl LintRule for WriteWriteConflict {
    fn code(&self) -> &'static str {
        codes::WRITE_WRITE_CONFLICT
    }

    fn name(&self) -> &'static str {
        "write-write-conflict"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(nest) = ctx.kernel.perfect_nest() else {
            return Vec::new();
        };
        let table = AccessTable::from_stmts(nest.innermost_body());
        let vars = nest.vars();
        let sets = uniform_sets(&table, &vars);
        let mut write_sets_per_array: HashMap<&str, usize> = HashMap::new();
        for set in sets.iter().filter(|s| s.is_write) {
            *write_sets_per_array.entry(set.array.as_str()).or_default() += 1;
        }
        let mut conflicted: Vec<&str> = write_sets_per_array
            .iter()
            .filter(|(_, &n)| n >= 2)
            .map(|(&a, _)| a)
            .collect();
        conflicted.sort_unstable();
        conflicted
            .into_iter()
            .map(|array| {
                let span = ctx.spans.and_then(|s| {
                    collect_accesses(nest.innermost_body())
                        .iter()
                        .find(|(a, w)| *w && a.array == array)
                        .and_then(|(a, _)| s.access(a))
                });
                Diagnostic::warning(
                    codes::WRITE_WRITE_CONFLICT,
                    format!(
                        "array `{array}` is written through multiple distinct references; \
                         redundant-write elimination cannot collapse its stores"
                    ),
                )
                .with_span_opt(span)
                .with_help("write each array element through a single reference shape")
            })
            .collect()
    }
}

/// `DF010`: a loop whose bounds give a zero trip count (reversed or
/// empty range). The interpreter runs such a loop zero times and the
/// estimator prices it as free, so the two *agree* — but the design
/// space built over its trip count collapses to nothing and every
/// downstream estimate silently excludes the loop's body. Validation
/// already rejects non-positive steps; this rule closes the
/// reversed-bound half of the family.
pub struct DegenerateLoop;

impl LintRule for DegenerateLoop {
    fn code(&self) -> &'static str {
        codes::DEGENERATE_LOOP
    }

    fn name(&self) -> &'static str {
        "degenerate-loop"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let mut stack: Vec<&Stmt> = ctx.kernel.body().iter().collect();
        while let Some(s) = stack.pop() {
            match s {
                Stmt::For(l) => {
                    if l.trip_count() == 0 {
                        diags.push(
                            Diagnostic::error(
                                codes::DEGENERATE_LOOP,
                                format!(
                                    "loop `{}` over {}..{} step {} never executes",
                                    l.var, l.lower, l.upper, l.step
                                ),
                            )
                            .with_span_opt(ctx.spans.and_then(|sp| sp.loop_header(&l.var)))
                            .with_help(
                                "make the upper bound exceed the lower bound, or delete the loop",
                            ),
                        );
                    }
                    stack.extend(l.body.iter());
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    stack.extend(then_body.iter());
                    stack.extend(else_body.iter());
                }
                Stmt::Assign { .. } | Stmt::Rotate(_) => {}
            }
        }
        diags.sort_by_key(|d| d.primary.map(|s| s.start));
        diags
    }
}

/// `DF011`: the dependence structure of a multi-loop nest admits only
/// the identity permutation, so asking the joint design space for an
/// interchange axis enumerates nothing beyond the original order.
pub struct InterchangePinned;

impl LintRule for InterchangePinned {
    fn code(&self) -> &'static str {
        codes::INTERCHANGE_PINNED
    }

    fn name(&self) -> &'static str {
        "interchange-pinned"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(summary) = LegalitySummary::analyze(ctx.kernel) else {
            return Vec::new();
        };
        if summary.depth() < 2 || !summary.identity_only() {
            return Vec::new();
        }
        let carrier = summary
            .distance_vectors()
            .iter()
            .map(|d| d.array.as_str())
            .next()
            .unwrap_or("?");
        let outer = ctx
            .kernel
            .perfect_nest()
            .map(|n| n.loop_at(0).var.clone())
            .unwrap_or_default();
        vec![Diagnostic::warning(
            codes::INTERCHANGE_PINNED,
            format!(
                "dependences on `{carrier}` pin the {}-deep nest to its original loop \
                 order; only the identity permutation is legal",
                summary.depth()
            ),
        )
        .with_span_opt(ctx.spans.and_then(|s| s.loop_header(&outer)))
        .with_help(
            "drop the interchange axis for this kernel, or skew the recurrence to free \
             a loop order",
        )]
    }
}

/// `DF012`: an array's elements are narrower than the memory word, so
/// packing looks attractive, yet its last-dimension access stride (or
/// the absence of any unit-direction walk) means no two accesses can
/// ever share a word — packing is a provable no-op there.
///
/// The check uses the 32-bit memory word both shipped board models
/// expose; a custom word width changes profitability, not the stride
/// geometry this rule reports.
pub struct PackingInert;

/// The memory word width both shipped board models use.
const LINT_WORD_BITS: u32 = 32;

impl LintRule for PackingInert {
    fn code(&self) -> &'static str {
        codes::PACKING_INERT
    }

    fn name(&self) -> &'static str {
        "packing-inert"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(summary) = LegalitySummary::analyze(ctx.kernel) else {
            return Vec::new();
        };
        summary
            .packing()
            .iter()
            .filter(|p| {
                p.elem_bits > 0 && p.elem_bits < LINT_WORD_BITS && !p.effective(LINT_WORD_BITS)
            })
            .map(|p| {
                let per_word = LINT_WORD_BITS / p.elem_bits;
                let reason = match p.min_stride {
                    Some(s) => format!(
                        "its last dimension is walked at stride {s}, so consecutive \
                         accesses land {s} elements apart and never share a \
                         {per_word}-element word"
                    ),
                    None => "no access walks its last dimension, so packed neighbours \
                             are never requested together"
                        .to_string(),
                };
                let span = ctx.spans.and_then(|s| s.decl(&p.array));
                Diagnostic::warning(
                    codes::PACKING_INERT,
                    format!(
                        "packing `{}` ({}-bit elements in a {LINT_WORD_BITS}-bit word) \
                         is a provable no-op: {reason}",
                        p.array, p.elem_bits
                    ),
                )
                .with_span_opt(span)
                .with_help(
                    "drop the packing axis for this array, or restructure the access to \
                     walk the last dimension with unit stride",
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint_source;

    #[test]
    fn out_of_bounds_constant_access_is_reported() {
        let src = "kernel oob { in A: i32[16]; out B: i32[16];
               for i in 0..16 { B[i] = A[i + 4]; } }";
        let report = lint_source(src);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == codes::OUT_OF_BOUNDS)
            .expect("DF005 reported");
        assert!(d.is_error());
        assert!(d.message.contains("4..=19"), "{}", d.message);
        assert!(d.primary.is_some());
    }

    #[test]
    fn negative_subscript_is_reported() {
        let report = lint_source(
            "kernel neg { in A: i32[16]; out B: i32[16];
               for i in 0..16 { B[i] = A[i - 1]; } }",
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::OUT_OF_BOUNDS));
    }

    #[test]
    fn guarded_access_is_not_reported() {
        // The `if` keeps the access in bounds; the rule must stay silent.
        let report = lint_source(
            "kernel g { in A: i32[16]; out B: i32[16];
               for i in 0..16 { if (i > 0) { B[i] = A[i - 1]; } } }",
        );
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code == codes::OUT_OF_BOUNDS),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn stencil_with_shifted_bounds_is_clean() {
        // jac-style bounds: 1..33 keeps i-1 and i+1 inside [0, 34).
        let report = lint_source(
            "kernel j { in A: i16[34]; out B: i16[34];
               for i in 1..33 { B[i] = (A[i - 1] + A[i + 1]) / 2; } }",
        );
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn unused_array_and_scalar_are_warned() {
        let report = lint_source(
            "kernel u { in A: i32[4]; in T: i32[4]; out B: i32[4]; var t: i32;
               for i in 0..4 { B[i] = A[i]; } }",
        );
        let unused: Vec<&str> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == codes::UNUSED_DECL)
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(unused.len(), 2, "{unused:?}");
        assert!(unused.iter().any(|m| m.contains("`T`")));
        assert!(unused.iter().any(|m| m.contains("`t`")));
        assert!(!report.has_errors(), "DF006 is a warning");
    }

    #[test]
    fn wavefront_recurrence_blocks_all_jamming() {
        let report = lint_source(
            "kernel wf { inout A: i32[9][9];
               for i in 0..8 { for j in 1..8 {
                 A[i][j] = A[i + 1][j - 1] + 1; } } }",
        );
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == codes::JAM_BLOCKED),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn fir_jams_fine() {
        let report = lint_source(
            "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
               for j in 0..64 { for i in 0..32 {
                 D[j] = D[j] + S[i + j] * C[i]; } } }",
        );
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::JAM_BLOCKED));
    }

    #[test]
    fn distinct_write_references_conflict() {
        let report = lint_source(
            "kernel ww { out A: i32[66]; in B: i32[66];
               for i in 0..32 { A[i] = B[i]; A[2*i] = B[i + 1]; } }",
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == codes::WRITE_WRITE_CONFLICT)
            .expect("DF008 reported");
        assert!(!d.is_error(), "DF008 is a warning");
        assert!(d.message.contains("`A`"));
    }

    #[test]
    fn pinned_interchange_is_reported() {
        // The (+1, -1) recurrence forbids swapping i and j.
        let report = lint_source(
            "kernel wf { inout A: i32[9][9];
               for i in 0..8 { for j in 1..8 {
                 A[i][j] = A[i + 1][j - 1] + 1; } } }",
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == codes::INTERCHANGE_PINNED)
            .expect("DF011 reported");
        assert!(!d.is_error(), "DF011 is a warning");
        assert!(d.message.contains("identity permutation"), "{}", d.message);
    }

    #[test]
    fn interchangeable_nest_is_not_pinned() {
        let report = lint_source(
            "kernel mm { in A: i32[8][8]; in B: i32[8][8]; inout C: i32[8][8];
               for i in 0..8 { for j in 0..8 {
                 C[i][j] = C[i][j] + A[i][j] * B[j][i]; } } }",
        );
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code == codes::INTERCHANGE_PINNED),
            "{:?}",
            report.diagnostics
        );
        // A 1-deep nest has nothing to interchange; the rule stays silent.
        let report = lint_source(
            "kernel one { in A: i32[8]; out B: i32[8];
               for i in 0..8 { B[i] = A[i]; } }",
        );
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::INTERCHANGE_PINNED));
    }

    #[test]
    fn strided_narrow_access_makes_packing_inert() {
        // 8-bit elements, 4 per 32-bit word, but stride 4 means each
        // access opens a fresh word.
        let report = lint_source(
            "kernel p { in A: u8[64]; out B: i32[16];
               for i in 0..16 { B[i] = A[i * 4]; } }",
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == codes::PACKING_INERT)
            .expect("DF012 reported");
        assert!(!d.is_error(), "DF012 is a warning");
        assert!(d.message.contains("`A`"), "{}", d.message);
        assert!(d.message.contains("stride 4"), "{}", d.message);
    }

    #[test]
    fn unit_stride_narrow_access_packs_fine() {
        let report = lint_source(
            "kernel p { in A: u8[16]; out B: i32[16];
               for i in 0..16 { B[i] = A[i]; } }",
        );
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code == codes::PACKING_INERT),
            "{:?}",
            report.diagnostics
        );
        // Full-width elements have nothing to pack; the rule stays silent.
        let report = lint_source(
            "kernel w { in A: i32[64]; out B: i32[16];
               for i in 0..16 { B[i] = A[i * 4]; } }",
        );
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::PACKING_INERT));
    }

    #[test]
    fn single_write_reference_is_clean() {
        let report = lint_source(
            "kernel sw { out A: i32[32]; in B: i32[32];
               for i in 0..32 { A[i] = B[i] * 2; } }",
        );
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::WRITE_WRITE_CONFLICT));
    }
}
