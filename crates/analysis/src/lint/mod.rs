//! Kernel lint: front-end legality and profitability checks.
//!
//! The lint driver runs two kinds of checks and reports everything as
//! structured [`Diagnostic`]s with stable `DF0xx` codes:
//!
//! - **front-end mapping** — parse and validation failures from
//!   [`defacto_ir`] become `DF001`–`DF004` (and `DF1xx` for structural
//!   validation), with byte-offset spans into the source;
//! - **rules** — checks over a successfully parsed kernel
//!   ([`rules::all`]): out-of-bounds constant accesses (`DF005`), unused
//!   declarations (`DF006`), dependence structure that blocks every jam
//!   (`DF007`) and write-write conflicts that defeat scalar replacement's
//!   redundant-write elimination (`DF008`).
//!
//! The capacity rule `DF009` needs synthesis estimates and therefore
//! lives upstack in the `defacto` core crate, which composes it with this
//! driver.

pub mod rules;

use defacto_ir::diag::{codes, Diagnostic};
use defacto_ir::span::{Span, SpanMap};
use defacto_ir::{parse_kernel_with_spans, IrError, Kernel};
use std::collections::BTreeMap;

/// Everything a lint rule may inspect.
pub struct LintContext<'a> {
    /// The parsed kernel.
    pub kernel: &'a Kernel,
    /// Source spans, when the kernel came from text.
    pub spans: Option<&'a SpanMap>,
    /// The source text itself, for excerpt rendering.
    pub source: Option<&'a str>,
}

/// One lint rule: a stable code plus a check over the kernel.
pub trait LintRule {
    /// The `DF0xx` code this rule reports.
    fn code(&self) -> &'static str;
    /// Short kebab-case rule name (used in reports).
    fn name(&self) -> &'static str;
    /// Run the rule, returning any diagnostics.
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic>;
}

/// The outcome of linting one kernel.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All diagnostics, in rule order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of diagnostics per code, for suite-level reporting.
    pub rule_hits: BTreeMap<String, usize>,
}

impl LintReport {
    /// Record one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        *self.rule_hits.entry(d.code.to_string()).or_default() += 1;
        self.diagnostics.push(d);
    }

    /// Whether any diagnostic is an error (lint should fail).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Number of errors.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }

    /// Number of warnings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Fold another report's diagnostics into this one.
    pub fn merge(&mut self, other: LintReport) {
        for d in other.diagnostics {
            self.push(d);
        }
    }
}

/// Lint kernel source text.
///
/// A kernel that fails to parse or validate yields exactly one diagnostic
/// describing the failure; a parsed kernel is run through every rule in
/// [`rules::all`].
pub fn lint_source(src: &str) -> LintReport {
    let mut report = LintReport::default();
    match parse_kernel_with_spans(src) {
        Err(err) => report.push(diagnostic_from_ir_error(&err, Some(src))),
        Ok((kernel, spans)) => {
            let ctx = LintContext {
                kernel: &kernel,
                spans: Some(&spans),
                source: Some(src),
            };
            run_rules(&ctx, &mut report);
        }
    }
    report
}

/// Lint an already-parsed kernel (no source text, so no spans).
pub fn lint_kernel(kernel: &Kernel) -> LintReport {
    let mut report = LintReport::default();
    let ctx = LintContext {
        kernel,
        spans: None,
        source: None,
    };
    run_rules(&ctx, &mut report);
    report
}

fn run_rules(ctx: &LintContext<'_>, report: &mut LintReport) {
    for rule in rules::all() {
        for d in rule.check(ctx) {
            report.push(d);
        }
    }
}

/// Map an [`IrError`] from parsing or validation onto a coded diagnostic.
///
/// Parse-stage failures carry positions, so the diagnostic points into
/// `src` when it is available; targeted parser messages (symbolic loop
/// bounds, C-style control-flow keywords) get their dedicated codes.
pub fn diagnostic_from_ir_error(err: &IrError, src: Option<&str>) -> Diagnostic {
    match err {
        IrError::Parse { line, col, msg } => {
            let code = if msg.starts_with("unsupported control flow") {
                codes::UNSUPPORTED_CONTROL_FLOW
            } else if msg.contains("must be a compile-time constant") {
                codes::NON_CONSTANT_BOUND
            } else {
                codes::SYNTAX
            };
            let mut d = Diagnostic::error(code, msg.clone());
            if let Some(src) = src {
                d = d.with_span(Span::from_line_col(src, *line, *col, backticked_len(msg)));
            }
            if code == codes::NON_CONSTANT_BOUND {
                d = d.with_help("loop bounds must be integer literals; specialize the kernel");
            }
            d
        }
        IrError::NonAffine { expr, span } => Diagnostic::error(
            codes::NON_AFFINE,
            format!("subscript expression is not affine: {expr}"),
        )
        .with_span(*span)
        .with_help("subscripts must be sums of constant-coefficient loop variables"),
        IrError::Undeclared(n) => {
            Diagnostic::error(codes::V_UNDECLARED, format!("use of undeclared name `{n}`"))
        }
        IrError::Redeclared(n) => Diagnostic::error(
            codes::V_DUPLICATE_DECL,
            format!("name `{n}` declared more than once"),
        ),
        IrError::DimensionMismatch {
            array,
            declared,
            used,
        } => Diagnostic::error(
            codes::V_ARITY,
            format!("array `{array}` has {declared} dimension(s) but was accessed with {used}"),
        ),
        IrError::OutOfBounds { array, index, len } => Diagnostic::error(
            codes::OUT_OF_BOUNDS,
            format!("access to `{array}` out of bounds: element {index} of {len}"),
        ),
        IrError::MalformedLoop(m) => {
            Diagnostic::error(codes::V_LOOP_FORM, format!("malformed loop: {m}"))
        }
        IrError::Invalid(m) => Diagnostic::error(codes::SYNTAX, format!("invalid kernel: {m}")),
    }
    .with_span_opt(match err {
        IrError::Undeclared(n) | IrError::Redeclared(n) => src.and_then(|s| find_name_span(s, n)),
        _ => None,
    })
}

/// Length of the first `` `…` `` quotation in a message, for sizing the
/// caret under the offending token; 1 when there is none.
fn backticked_len(msg: &str) -> usize {
    let mut parts = msg.split('`');
    parts.next();
    parts.next().map_or(1, str::len)
}

/// Best-effort span for a name in source text (used for validation errors
/// that do not carry positions): the first whole-word occurrence.
fn find_name_span(src: &str, name: &str) -> Option<Span> {
    let is_word = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(rel) = src[from..].find(name) {
        let at = from + rel;
        let before_ok = at == 0 || !src[..at].chars().next_back().is_some_and(is_word);
        let after_ok = !src[at + name.len()..].chars().next().is_some_and(is_word);
        if before_ok && after_ok {
            let line = src[..at].matches('\n').count() + 1;
            let col = src[..at]
                .rsplit('\n')
                .next()
                .map_or(0, |l| l.chars().count())
                + 1;
            return Some(Span::new(at, at + name.len(), line, col));
        }
        from = at + name.len().max(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_failure_maps_to_df001_with_span() {
        let report = lint_source("kernel x {\n  in A i32[4];\n}");
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, codes::SYNTAX);
        assert!(d.is_error());
        assert_eq!(d.primary.unwrap().line, 2);
        assert_eq!(report.rule_hits.get("DF001"), Some(&1));
    }

    #[test]
    fn non_affine_maps_to_df002_with_exact_span() {
        let src = "kernel x { in A: i32[16]; out B: i32[4];
               for i in 0..4 { B[i] = A[i * i]; } }";
        let report = lint_source(src);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, codes::NON_AFFINE);
        let s = d.primary.unwrap();
        assert_eq!(&src[s.start..s.end], "i * i");
    }

    #[test]
    fn symbolic_bound_maps_to_df003() {
        let report = lint_source("kernel x { in A: i32[4]; for i in 0..n { A[i] = A[i]; } }");
        assert_eq!(report.diagnostics[0].code, codes::NON_CONSTANT_BOUND);
        assert!(report.diagnostics[0].primary.is_some());
    }

    #[test]
    fn control_flow_keyword_maps_to_df004() {
        let report = lint_source("kernel x { in A: i32[4]; for i in 0..4 { while (1) { } } }");
        assert_eq!(report.diagnostics[0].code, codes::UNSUPPORTED_CONTROL_FLOW);
        assert!(report.diagnostics[0].primary.is_some());
    }

    #[test]
    fn duplicate_decl_maps_to_df105() {
        let report =
            lint_source("kernel x { in A: i32[4]; in A: i32[8]; for i in 0..4 { A[i] = A[i]; } }");
        assert_eq!(report.diagnostics[0].code, codes::V_DUPLICATE_DECL);
    }

    #[test]
    fn clean_kernel_reports_nothing() {
        let report = lint_source(
            "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
               for j in 0..64 { for i in 0..32 {
                 D[j] = D[j] + S[i + j] * C[i]; } } }",
        );
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert!(!report.has_errors());
    }

    #[test]
    fn backticked_len_measures_quoted_token() {
        assert_eq!(backticked_len("found `abc`"), 3);
        assert_eq!(backticked_len("no quote"), 1);
    }

    #[test]
    fn find_name_span_matches_whole_words() {
        let src = "kernel AB { in A: i32[4]; }";
        let s = find_name_span(src, "A").unwrap();
        assert_eq!(&src[s.start..s.end], "A");
        assert_eq!(s.start, 15); // the declaration, not the prefix of `AB`
    }
}
