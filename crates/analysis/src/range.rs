//! Value-range (interval) analysis for bit-width narrowing.
//!
//! The paper's target domain "possibly can benefit from non-standard
//! numeric formats (reduced data widths)" (§2.4). When the programmer
//! annotates input arrays with value ranges (`in S: i32[96] range
//! -1000..1000;`), this analysis propagates intervals through the kernel
//! and bounds every expression, letting behavioral synthesis bind
//! narrower (smaller, faster) operators than the declared C types
//! suggest.
//!
//! The analysis is a classic forward interval propagation:
//!
//! - loop variables range over their bounds;
//! - array loads take the annotation (or the element type's full range),
//!   joined with any value the kernel stores into the array;
//! - scalar assignments join; the self-update `s = s ± e` is widened by
//!   the trip product of its enclosing loops (a sound bound on how often
//!   the accumulation can run);
//! - everything is clamped to the declared type — the hardware wraps at
//!   that width anyway, so the declared range is always sound.

use defacto_ir::{ArrayKind, BinOp, Expr, Kernel, LValue, ScalarType, Stmt, UnOp};
use std::collections::HashMap;

/// An inclusive integer interval.
///
/// The arithmetic methods (`add`, `sub`, `mul`, ...) intentionally share
/// names with the `std::ops` traits: they are the interval-arithmetic
/// counterparts of those operations, taking `self` by value like the
/// traits would. Operator syntax is deliberately not provided — interval
/// results are often further clamped, and the explicit method chain keeps
/// that visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: i64,
    /// Largest possible value.
    pub hi: i64,
}

#[allow(clippy::should_implement_trait)]
impl Interval {
    /// Construct `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty interval {lo}..{hi}");
        Interval { lo, hi }
    }

    /// The single value `v`.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The full range of a scalar type.
    pub fn of_type(ty: ScalarType) -> Self {
        let bits = ty.bits();
        if ty.is_signed() {
            Interval {
                lo: -(1i64 << (bits - 1)),
                hi: (1i64 << (bits - 1)) - 1,
            }
        } else {
            Interval {
                lo: 0,
                hi: (1i64 << bits) - 1,
            }
        }
    }

    /// Smallest interval containing both.
    pub fn union(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Interval sum (saturating — intervals here model hardware values
    /// already clamped to ≤32-bit types, so saturation is unreachable in
    /// practice and merely guards the arithmetic).
    pub fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(o.lo),
            hi: self.hi.saturating_add(o.hi),
        }
    }

    /// Interval difference.
    pub fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(o.hi),
            hi: self.hi.saturating_sub(o.lo),
        }
    }

    /// Interval negation.
    pub fn neg(self) -> Interval {
        Interval {
            lo: self.hi.saturating_neg(),
            hi: self.lo.saturating_neg(),
        }
    }

    /// Interval absolute value.
    pub fn abs(self) -> Interval {
        if self.lo >= 0 {
            self
        } else if self.hi <= 0 {
            self.neg()
        } else {
            Interval {
                lo: 0,
                hi: self.hi.max(self.lo.saturating_neg()),
            }
        }
    }

    /// Interval product (four corners).
    pub fn mul(self, o: Interval) -> Interval {
        let corners = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval {
            lo: *corners.iter().min().expect("nonempty"),
            hi: *corners.iter().max().expect("nonempty"),
        }
    }

    /// Conservative interval for truncating division: magnitudes can only
    /// shrink (or stay, for divisor ±1), and division by zero yields 0 in
    /// the kernel semantics.
    pub fn div(self, o: Interval) -> Interval {
        if o.lo == o.hi && o.lo != 0 {
            let corners = [self.lo / o.lo, self.hi / o.lo];
            let mut r = Interval {
                lo: *corners.iter().min().expect("nonempty"),
                hi: *corners.iter().max().expect("nonempty"),
            };
            // Truncation passes through zero for mixed-sign numerators.
            if self.lo <= 0 && self.hi >= 0 {
                r = r.union(Interval::point(0));
            }
            return r;
        }
        // Unknown divisor: |result| ≤ |numerator|, plus 0 (div-by-zero).
        let m = self.lo.abs().max(self.hi.abs());
        Interval { lo: -m, hi: m }.union(Interval::point(0))
    }

    /// Conservative remainder: bounded by the divisor's magnitude and
    /// carrying the numerator's sign possibilities.
    pub fn rem(self, o: Interval) -> Interval {
        let m = o.lo.abs().max(o.hi.abs()).saturating_sub(1).max(0);
        let lo = if self.lo < 0 { -m } else { 0 };
        let hi = if self.hi > 0 { m } else { 0 };
        Interval { lo, hi }.union(Interval::point(0))
    }

    /// Clamp into the representable range of `ty` (sound because the
    /// datapath wraps at that width).
    pub fn clamp_to(self, ty: ScalarType) -> Interval {
        let t = Interval::of_type(ty);
        // If the interval exceeds the type at either end, wrapping can
        // produce any value of the type.
        if self.lo < t.lo || self.hi > t.hi {
            t
        } else {
            self
        }
    }

    /// Bits needed to represent every value of the interval in two's
    /// complement (at least 1).
    pub fn bits(self) -> u32 {
        fn unsigned_bits(v: i64) -> u32 {
            debug_assert!(v >= 0);
            (64 - v.leading_zeros()).max(1)
        }
        if self.lo >= 0 {
            unsigned_bits(self.hi)
        } else {
            // Signed: enough magnitude bits for both ends plus sign.
            let neg_bits = unsigned_bits((self.lo.saturating_add(1)).saturating_neg());
            let pos_bits = unsigned_bits(self.hi.max(0));
            neg_bits.max(pos_bits) + 1
        }
    }
}

/// The inferred value ranges of a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeInfo {
    /// Scalar and loop-variable ranges.
    vars: HashMap<String, Interval>,
    /// Per-array element ranges.
    arrays: HashMap<String, Interval>,
    /// Accumulation bases: the range a variable/array had before any
    /// self-update widening — keeps the trip-product widening idempotent
    /// across fixpoint passes.
    var_base: HashMap<String, Interval>,
    array_base: HashMap<String, Interval>,
}

impl RangeInfo {
    /// The interval of a scalar or loop variable (full `i32` range when
    /// unknown).
    pub fn var(&self, name: &str) -> Interval {
        self.vars
            .get(name)
            .copied()
            .unwrap_or_else(|| Interval::of_type(ScalarType::I32))
    }

    /// The element interval of an array.
    pub fn array(&self, name: &str) -> Interval {
        self.arrays
            .get(name)
            .copied()
            .unwrap_or_else(|| Interval::of_type(ScalarType::I32))
    }

    /// Bound an expression's value given the inferred environment.
    pub fn expr(&self, e: &Expr) -> Interval {
        match e {
            Expr::Int(v) => Interval::point(*v),
            Expr::Scalar(n) => self.var(n),
            Expr::Load(a) => self.array(&a.array),
            Expr::Unary(op, inner) => {
                let r = self.expr(inner);
                match op {
                    UnOp::Neg => r.neg(),
                    UnOp::Abs => r.abs(),
                    // Bitwise complement of an n-bit value stays n-bit-ish;
                    // conservative: -hi-1 .. -lo-1.
                    UnOp::Not => Interval::new(
                        r.hi.saturating_neg().saturating_sub(1),
                        r.lo.saturating_neg().saturating_sub(1),
                    ),
                }
            }
            Expr::Binary(op, a, b) => {
                let ra = self.expr(a);
                let rb = self.expr(b);
                match op {
                    BinOp::Add => ra.add(rb),
                    BinOp::Sub => ra.sub(rb),
                    BinOp::Mul => ra.mul(rb),
                    BinOp::Div => ra.div(rb),
                    BinOp::Rem => ra.rem(rb),
                    BinOp::Shl => {
                        if rb.lo == rb.hi && (0..32).contains(&rb.lo) {
                            ra.mul(Interval::point(1i64 << rb.lo))
                        } else {
                            Interval::of_type(ScalarType::I32)
                        }
                    }
                    BinOp::Shr => {
                        if rb.lo == rb.hi && (0..32).contains(&rb.lo) {
                            ra.div(Interval::point(1i64 << rb.lo))
                        } else {
                            ra.union(Interval::point(0))
                        }
                    }
                    // Comparisons are 1-bit flags.
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        Interval::new(0, 1)
                    }
                    // Bitwise: bounded by the magnitude cover of both.
                    BinOp::And | BinOp::Or | BinOp::Xor => {
                        if ra.lo >= 0 && rb.lo >= 0 {
                            let m = (1i64 << ra.union(rb).bits().min(62)) - 1;
                            Interval::new(0, m)
                        } else {
                            let bits = ra.union(rb).bits().min(62);
                            Interval::new(-(1i64 << (bits - 1)).max(1), (1i64 << bits) - 1)
                        }
                    }
                }
            }
            Expr::Select(_, t, f) => self.expr(t).union(self.expr(f)),
        }
    }

    /// Bits needed for an expression's value.
    pub fn expr_bits(&self, e: &Expr) -> u32 {
        self.expr(e).bits()
    }
}

/// Infer value ranges for `kernel`.
///
/// Runs three forward passes (enough for the loop-carried joins of this
/// domain to stabilize under the accumulator widening); any still-growing
/// scalar is clamped to its declared type, which the wrapping hardware
/// makes sound.
pub fn infer_ranges(kernel: &Kernel) -> RangeInfo {
    let mut info = RangeInfo {
        vars: HashMap::new(),
        arrays: HashMap::new(),
        var_base: HashMap::new(),
        array_base: HashMap::new(),
    };
    // Arrays: annotation, or type range. Output arrays additionally join
    // stored values below (annotations on pure inputs are authoritative).
    for a in kernel.arrays() {
        let base = match (a.range, a.kind) {
            (Some((lo, hi)), _) => Interval::new(lo, hi),
            // Unannotated outputs start empty-ish (stores will widen);
            // zero is always present (workspaces are zero-initialized).
            (None, ArrayKind::Out) => Interval::point(0),
            (None, _) => Interval::of_type(a.ty),
        };
        info.arrays.insert(a.name.clone(), base);
        info.array_base.insert(a.name.clone(), base);
    }
    // Scalars start at zero (interpreter semantics).
    for s in kernel.scalars() {
        info.vars.insert(s.name.clone(), Interval::point(0));
        info.var_base.insert(s.name.clone(), Interval::point(0));
    }

    for _ in 0..3 {
        walk(kernel.body(), kernel, 1, &mut info);
    }
    info
}

fn walk(stmts: &[Stmt], kernel: &Kernel, trip_product: i64, info: &mut RangeInfo) {
    for s in stmts {
        match s {
            Stmt::For(l) => {
                let trips = l.trip_count().max(1);
                if trips > 1 {
                    info.vars
                        .insert(l.var.clone(), Interval::new(l.lower, l.upper - 1));
                } else {
                    info.vars.insert(l.var.clone(), Interval::point(l.lower));
                }
                walk(&l.body, kernel, trip_product.saturating_mul(trips), info);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                walk(then_body, kernel, trip_product, info);
                walk(else_body, kernel, trip_product, info);
            }
            Stmt::Rotate(regs) => {
                // Rotation permutes values: every register can hold any of
                // the chain's values.
                let all = regs
                    .iter()
                    .map(|r| info.var(r))
                    .reduce(Interval::union)
                    .unwrap_or(Interval::point(0));
                for r in regs {
                    info.vars.insert(r.clone(), all);
                }
            }
            Stmt::Assign { lhs, rhs } => {
                let self_update = self_update_delta(lhs, rhs);
                let value = match &self_update {
                    // s = s ± e executed up to `trip_product` times: widen
                    // the pre-accumulation base by the accumulated delta
                    // (the base, not the current value, keeps repeated
                    // passes idempotent).
                    Some(delta) => {
                        let d = info.expr(delta);
                        let spread = Interval::new(
                            d.lo.saturating_mul(trip_product).min(0),
                            d.hi.saturating_mul(trip_product).max(0),
                        );
                        match lhs {
                            LValue::Scalar(n) => info
                                .var_base
                                .get(n)
                                .copied()
                                .unwrap_or_else(|| info.var(n))
                                .add(spread),
                            LValue::Array(a) => info
                                .array_base
                                .get(&a.array)
                                .copied()
                                .unwrap_or_else(|| info.array(&a.array))
                                .add(spread),
                        }
                    }
                    None => info.expr(rhs),
                };
                match lhs {
                    LValue::Scalar(n) => {
                        let ty = kernel.scalar(n).map(|d| d.ty).unwrap_or(ScalarType::I32);
                        let joined = info.var(n).union(value).clamp_to(ty);
                        info.vars.insert(n.clone(), joined);
                        if self_update.is_none() {
                            let base = info
                                .var_base
                                .get(n)
                                .copied()
                                .unwrap_or(Interval::point(0))
                                .union(value)
                                .clamp_to(ty);
                            info.var_base.insert(n.clone(), base);
                        }
                    }
                    LValue::Array(a) => {
                        let ty = kernel
                            .array(&a.array)
                            .map(|d| d.ty)
                            .unwrap_or(ScalarType::I32);
                        let joined = info.array(&a.array).union(value).clamp_to(ty);
                        info.arrays.insert(a.array.clone(), joined);
                        if self_update.is_none() {
                            let base = info
                                .array_base
                                .get(&a.array)
                                .copied()
                                .unwrap_or(Interval::point(0))
                                .union(value)
                                .clamp_to(ty);
                            info.array_base.insert(a.array.clone(), base);
                        }
                    }
                }
            }
        }
    }
}

/// Detect `target = target ± e` (the accumulator pattern), returning `e`.
fn self_update_delta(lhs: &LValue, rhs: &Expr) -> Option<Expr> {
    let is_target = |e: &Expr| -> bool {
        match (lhs, e) {
            (LValue::Scalar(n), Expr::Scalar(m)) => n == m,
            (LValue::Array(a), Expr::Load(b)) => a == b,
            _ => false,
        }
    };
    match rhs {
        Expr::Binary(BinOp::Add, a, b) if is_target(a) => Some((**b).clone()),
        Expr::Binary(BinOp::Add, a, b) if is_target(b) => Some((**a).clone()),
        Expr::Binary(BinOp::Sub, a, b) if is_target(a) => Some(Expr::Unary(UnOp::Neg, b.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;

    #[test]
    fn interval_arithmetic() {
        let a = Interval::new(-3, 5);
        let b = Interval::new(2, 4);
        assert_eq!(a.add(b), Interval::new(-1, 9));
        assert_eq!(a.sub(b), Interval::new(-7, 3));
        assert_eq!(a.mul(b), Interval::new(-12, 20));
        assert_eq!(a.neg(), Interval::new(-5, 3));
        assert_eq!(a.abs(), Interval::new(0, 5));
        assert_eq!(Interval::new(-7, -2).abs(), Interval::new(2, 7));
        assert_eq!(a.union(b), Interval::new(-3, 5));
        assert_eq!(
            Interval::new(-9, 9).div(Interval::point(4)),
            Interval::new(-2, 2)
        );
    }

    #[test]
    fn interval_bits() {
        assert_eq!(Interval::new(0, 0).bits(), 1);
        assert_eq!(Interval::new(0, 1).bits(), 1);
        assert_eq!(Interval::new(0, 255).bits(), 8);
        assert_eq!(Interval::new(0, 256).bits(), 9);
        assert_eq!(Interval::new(-128, 127).bits(), 8);
        assert_eq!(Interval::new(-129, 0).bits(), 9);
        assert_eq!(Interval::new(-1, 1).bits(), 2);
        assert_eq!(Interval::of_type(ScalarType::I16).bits(), 16);
        assert_eq!(Interval::of_type(ScalarType::U8).bits(), 8);
    }

    #[test]
    fn type_ranges_and_clamping() {
        assert_eq!(Interval::of_type(ScalarType::I8), Interval::new(-128, 127));
        assert_eq!(Interval::of_type(ScalarType::U16), Interval::new(0, 65535));
        // Overflowing intervals clamp to the whole type.
        let wide = Interval::new(-1, 40000);
        assert_eq!(
            wide.clamp_to(ScalarType::I16),
            Interval::of_type(ScalarType::I16)
        );
        let narrow = Interval::new(-5, 100);
        assert_eq!(narrow.clamp_to(ScalarType::I16), narrow);
    }

    #[test]
    fn annotated_fir_narrows_products() {
        let k = parse_kernel(
            "kernel fir {
               in S: i32[96] range -1000..1000;
               in C: i32[32] range -50..50;
               inout D: i32[64];
               for j in 0..64 { for i in 0..32 {
                 D[j] = D[j] + S[i + j] * C[i]; } } }",
        )
        .unwrap();
        let info = infer_ranges(&k);
        assert_eq!(info.array("S"), Interval::new(-1000, 1000));
        // The product is bounded by ±50,000 → 17 bits.
        use defacto_ir::{AffineExpr, Expr};
        let product = Expr::mul(
            Expr::load1("S", AffineExpr::var("i")),
            Expr::load1("C", AffineExpr::var("i")),
        );
        let r = info.expr(&product);
        assert_eq!(r, Interval::new(-50_000, 50_000));
        assert!(info.expr_bits(&product) <= 17);
        // The accumulator D: 2048 × product widened, clamped to i32 —
        // narrower than 32 bits would only hold with smaller trip counts,
        // but it must at least stay sound.
        assert!(info.array("D").bits() <= 32);
    }

    #[test]
    fn loop_variables_range_over_bounds() {
        let k = parse_kernel(
            "kernel lv { out B: i32[64];
               for i in 0..64 { B[i] = i; } }",
        )
        .unwrap();
        let info = infer_ranges(&k);
        assert_eq!(info.var("i"), Interval::new(0, 63));
        assert_eq!(info.var("i").bits(), 6);
        // Stored values are the loop variable's range (∪ initial zero).
        assert_eq!(info.array("B"), Interval::new(0, 63));
    }

    #[test]
    fn accumulator_widening_is_bounded_by_trips() {
        let k = parse_kernel(
            "kernel acc {
               in A: i32[16] range 0..3;
               out B: i32[1];
               var s: i32;
               for i in 0..16 { s = s + A[i]; }
               for t in 0..1 { B[t] = s; }
             }",
        )
        .unwrap();
        let info = infer_ranges(&k);
        // s ≤ 16 × 3 = 48.
        let s = info.var("s");
        assert!(s.hi >= 48, "{s:?}");
        assert!(s.hi <= 48, "{s:?}");
        assert_eq!(s.lo, 0);
        assert!(s.bits() <= 7);
    }

    #[test]
    fn comparisons_are_single_bit() {
        let k = parse_kernel(
            "kernel c { in A: u8[8]; inout M: i16[8] range 0..0;
               for i in 0..8 { M[i] = M[i] + (A[i] == 97); } }",
        )
        .unwrap();
        let info = infer_ranges(&k);
        use defacto_ir::{AffineExpr, BinOp, Expr};
        let cmp = Expr::bin(
            BinOp::Eq,
            Expr::load1("A", AffineExpr::var("i")),
            Expr::Int(97),
        );
        assert_eq!(info.expr(&cmp), Interval::new(0, 1));
        // M accumulates ≤ 8 ones.
        assert!(info.array("M").hi <= 8);
    }

    #[test]
    fn unannotated_arrays_use_type_ranges() {
        let k = parse_kernel(
            "kernel u { in A: i16[8]; out B: i32[8];
               for i in 0..8 { B[i] = A[i] * A[i]; } }",
        )
        .unwrap();
        let info = infer_ranges(&k);
        assert_eq!(info.array("A"), Interval::of_type(ScalarType::I16));
        use defacto_ir::{AffineExpr, Expr};
        let sq = Expr::mul(
            Expr::load1("A", AffineExpr::var("i")),
            Expr::load1("A", AffineExpr::var("i")),
        );
        // 16-bit × 16-bit: the +2^30 corner forces a full 32 bits.
        assert!(info.expr_bits(&sq) <= 32);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn inverted_interval_panics() {
        let _ = Interval::new(3, 2);
    }
}
