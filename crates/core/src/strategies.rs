//! Alternative search strategies, for comparison with the paper's
//! balance-guided algorithm.
//!
//! The paper argues that balance monotonicity makes a tiny guided search
//! competitive with much more expensive exploration. These baselines
//! quantify the claim: a budgeted uniform **random search** and a
//! divisor-neighbourhood **hill climb**, both optimizing the paper's
//! criteria directly (min cycles among fitting designs; ties to the
//! smaller design).

use crate::error::Result;
use crate::explorer::EvaluatedDesign;
use crate::space::DesignSpace;
use defacto_synth::Estimate;
use defacto_xform::UnrollVector;
use std::cmp::Ordering;
use std::collections::HashSet;

/// Outcome of one baseline strategy run.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// The best design found (by the paper's criteria).
    pub selected: EvaluatedDesign,
    /// Every design evaluated, in visit order (unique).
    pub evaluated: Vec<EvaluatedDesign>,
}

/// Ranking order implementing the paper's optimization criteria: fitting
/// designs first, then fewer cycles, then fewer slices, then the
/// lexicographically smaller vector (for determinism). Compares factor
/// slices in place rather than cloning a key vector per comparison.
fn criteria_cmp(a: &EvaluatedDesign, b: &EvaluatedDesign) -> Ordering {
    (!a.estimate.fits, a.estimate.cycles, a.estimate.slices)
        .cmp(&(!b.estimate.fits, b.estimate.cycles, b.estimate.slices))
        .then_with(|| a.unroll.factors().cmp(b.unroll.factors()))
}

fn best_of(evaluated: &[EvaluatedDesign]) -> EvaluatedDesign {
    evaluated
        .iter()
        .min_by(|a, b| criteria_cmp(a, b))
        .expect("at least one design evaluated")
        .clone()
}

/// Uniform random search: evaluate `budget` distinct designs drawn with
/// a deterministic xorshift stream from `seed`.
///
/// # Errors
///
/// Propagates evaluation failures.
///
/// # Panics
///
/// Panics if the space is empty.
pub fn random_search<E>(
    space: &DesignSpace,
    seed: u64,
    budget: usize,
    mut eval: E,
) -> Result<StrategyOutcome>
where
    E: FnMut(&UnrollVector) -> Result<Estimate>,
{
    assert!(space.size() > 0, "empty design space");
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let mut next = move || {
        // xorshift64*
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        rng.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut seen: HashSet<UnrollVector> = HashSet::new();
    let mut evaluated = Vec::new();
    let budget = budget.min(space.size() as usize);
    let mut guard = 0usize;
    while evaluated.len() < budget && guard < budget * 64 {
        guard += 1;
        let u = UnrollVector(
            (0..space.levels())
                .map(|l| {
                    let f = space.factors_at(l);
                    f[(next() % f.len() as u64) as usize]
                })
                .collect(),
        );
        if !seen.insert(u.clone()) {
            continue;
        }
        let est = eval(&u)?;
        evaluated.push(EvaluatedDesign {
            unroll: u,
            estimate: est,
        });
    }
    Ok(StrategyOutcome {
        selected: best_of(&evaluated),
        evaluated,
    })
}

/// Hill climbing over the divisor lattice: from `start`, repeatedly move
/// to the best improving neighbour (one loop's factor stepped to the
/// next or previous divisor), until no neighbour improves or `max_steps`
/// moves were taken.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn hill_climb<E>(
    space: &DesignSpace,
    start: &UnrollVector,
    max_steps: usize,
    mut eval: E,
) -> Result<StrategyOutcome>
where
    E: FnMut(&UnrollVector) -> Result<Estimate>,
{
    let mut evaluated: Vec<EvaluatedDesign> = Vec::new();
    let mut seen: HashSet<UnrollVector> = HashSet::new();
    let visit = |u: &UnrollVector,
                 evaluated: &mut Vec<EvaluatedDesign>,
                 seen: &mut HashSet<UnrollVector>,
                 eval: &mut E|
     -> Result<Option<EvaluatedDesign>> {
        if !seen.insert(u.clone()) {
            return Ok(evaluated.iter().find(|d| &d.unroll == u).cloned());
        }
        let est = eval(u)?;
        let d = EvaluatedDesign {
            unroll: u.clone(),
            estimate: est,
        };
        evaluated.push(d.clone());
        Ok(Some(d))
    };

    let mut current = visit(start, &mut evaluated, &mut seen, &mut eval)?.expect("start evaluates");
    for _ in 0..max_steps {
        let mut best_neighbor: Option<EvaluatedDesign> = None;
        for l in 0..space.levels() {
            let factors = space.factors_at(l);
            let pos = factors
                .iter()
                .position(|&f| f == current.unroll.factors()[l])
                .expect("current is in the space");
            for delta in [-1i64, 1] {
                let np = pos as i64 + delta;
                if np < 0 || np as usize >= factors.len() {
                    continue;
                }
                let mut f = current.unroll.factors().to_vec();
                f[l] = factors[np as usize];
                let u = UnrollVector(f);
                if let Some(d) = visit(&u, &mut evaluated, &mut seen, &mut eval)? {
                    if best_neighbor
                        .as_ref()
                        .map(|b| criteria_cmp(&d, b) == Ordering::Less)
                        .unwrap_or(true)
                    {
                        best_neighbor = Some(d);
                    }
                }
            }
        }
        match best_neighbor {
            Some(n) if criteria_cmp(&n, &current) == Ordering::Less => current = n,
            _ => break,
        }
    }
    Ok(StrategyOutcome {
        selected: best_of(&evaluated),
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;
    use defacto_ir::parse_kernel;
    use defacto_ir::Kernel;

    fn fir() -> Kernel {
        parse_kernel(
            "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
               for j in 0..64 { for i in 0..32 {
                 D[j] = D[j] + S[i + j] * C[i]; } } }",
        )
        .unwrap()
    }

    #[test]
    fn random_search_respects_budget_and_is_deterministic() {
        let k = fir();
        let ex = Explorer::new(&k);
        let (_, space) = ex.analyze().unwrap();
        let run = |seed| random_search(&space, seed, 8, |u| Ok(ex.evaluate(u)?.estimate)).unwrap();
        let a = run(7);
        let b = run(7);
        assert_eq!(a.selected.unroll, b.selected.unroll);
        assert!(a.evaluated.len() <= 8);
        assert!(a.selected.estimate.fits);
        let c = run(8);
        // A different seed explores a different sample (almost surely).
        assert_ne!(
            a.evaluated
                .iter()
                .map(|d| d.unroll.clone())
                .collect::<Vec<_>>(),
            c.evaluated
                .iter()
                .map(|d| d.unroll.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn hill_climb_improves_on_its_start() {
        let k = fir();
        let ex = Explorer::new(&k);
        let (_, space) = ex.analyze().unwrap();
        let start = space.base_vector();
        let out = hill_climb(&space, &start, 32, |u| Ok(ex.evaluate(u)?.estimate)).unwrap();
        let base = ex.evaluate(&start).unwrap();
        assert!(out.selected.estimate.cycles < base.estimate.cycles);
        assert!(out.selected.estimate.fits);
        // Every evaluated point is inside the space.
        for d in &out.evaluated {
            assert!(space.contains(&d.unroll), "{}", d.unroll);
        }
    }

    #[test]
    fn hill_climb_stops_at_local_optimum() {
        let k = fir();
        let ex = Explorer::new(&k);
        let (_, space) = ex.analyze().unwrap();
        let out = hill_climb(&space, &space.base_vector(), 1000, |u| {
            Ok(ex.evaluate(u)?.estimate)
        })
        .unwrap();
        // Terminates well before exhausting the space.
        assert!(out.evaluated.len() < space.size() as usize);
    }

    #[test]
    fn strategies_never_select_unfitting_designs_when_fitting_exist() {
        let k = fir();
        let ex = Explorer::new(&k);
        let (_, space) = ex.analyze().unwrap();
        let out = random_search(&space, 3, 12, |u| Ok(ex.evaluate(u)?.estimate)).unwrap();
        if out.evaluated.iter().any(|d| d.estimate.fits) {
            assert!(out.selected.estimate.fits);
        }
    }
}
