//! The [`Explorer`] facade: one builder tying together transformation,
//! estimation, saturation analysis and the Figure-2 search.

use crate::engine::{CacheKey, EvalEngine, EvalStats};
use crate::error::Result;
use crate::saturation::{saturation_analysis, SaturationInfo};
use crate::search::{
    doubling_frontier, run_search_instrumented, SearchConfig, SearchResult, VisitOutcome,
};
use crate::space::{Axis, DesignSpace, JointPoint};
use crate::strategy::{strategy_for, StrategyContext, StrategyKind};
use crate::trace::{NullSink, TraceEvent, TraceSink};
use defacto_cache::{AnalysisSummary, ContextKey, PersistentCache, SelectionRecord};
use defacto_ir::{ContentHash, Kernel};
use defacto_synth::{
    estimate_opts, AnalyticBand, AnalyticModel, Estimate, FpgaDevice, JointAnalyticModel,
    MemoryModel, SynthesisOptions,
};
use defacto_xform::{
    transform, PreparedKernel, TransformOptions, TransformedDesign, UnrollVector, VariantCache,
};
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Evaluation fidelity policy (see DESIGN.md §10).
///
/// Tier 0 is the closed-form analytic band from
/// [`defacto_synth::analytic`]: no body copying, no DFG, no scheduling.
/// Tier 1 is the full transform + behavioral-estimate pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Every point pays the full tier-1 pipeline (the default).
    #[default]
    Full,
    /// Sweeps rank the whole space at tier 0 first and promote only the
    /// points the analytic band cannot rule out; searches replay the
    /// Figure-2 algorithm at tier 1 unchanged while recording tier-0
    /// verdicts. Selected designs are identical to [`Fidelity::Full`]
    /// (the band provably brackets the full estimate).
    Multi,
    /// Everything stays at tier 0: estimates are synthetic band
    /// midpoints. Fast and approximate — selections may differ from
    /// [`Fidelity::Full`].
    Analytic,
}

impl Fidelity {
    /// Stable lower-case label, for JSON output and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Fidelity::Full => "full",
            Fidelity::Multi => "multi",
            Fidelity::Analytic => "analytic",
        }
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Fidelity {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "full" => Ok(Fidelity::Full),
            "multi" => Ok(Fidelity::Multi),
            "analytic" => Ok(Fidelity::Analytic),
            other => Err(format!(
                "unknown fidelity `{other}` (expected full|multi|analytic)"
            )),
        }
    }
}

/// Tier-0 accounting of one multi-fidelity run.
#[derive(Debug, Clone, Copy, Default)]
struct TierCounts {
    evaluated: u64,
    promoted: u64,
    pruned: u64,
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EvaluatedDesign {
    /// The unroll-factor vector.
    pub unroll: UnrollVector,
    /// Its behavioral-synthesis estimate.
    pub estimate: Estimate,
}

/// One evaluated joint-space point (see [`Explorer::joint_sweep`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedJointDesign {
    /// The multi-axis coordinate.
    pub point: JointPoint,
    /// Its behavioral-synthesis estimate.
    pub estimate: Estimate,
}

/// Outcome of a guided joint exploration (see
/// [`Explorer::joint_explore`]).
#[derive(Debug, Clone)]
pub struct JointSearchResult {
    /// Which strategy ran.
    pub strategy: StrategyKind,
    /// The selected design — [`crate::exhaustive::best_joint_performance`]
    /// over the evaluated set; `None` when nothing evaluated fits.
    pub selected: Option<EvaluatedJointDesign>,
    /// Every tier-1-evaluated design, in the strategy's decision order.
    pub evaluated: Vec<EvaluatedJointDesign>,
    /// Points a tier-0 bound excluded without a tier-1 evaluation.
    pub pruned: u64,
    /// Optimality-gap bound in cycles (see
    /// [`crate::strategy::GuidedOutcome::gap_cycles`]).
    pub gap_cycles: Option<u64>,
    /// Size of the joint space searched.
    pub space_points: u64,
    /// Evaluation counters for this call (`strategy_visited` and
    /// `bounded_pruned` filled in).
    pub stats: EvalStats,
}

/// Design-space explorer for one kernel.
///
/// Defaults match the paper's platform: 4 pipelined WildStar memories and
/// a Virtex-1000 at 40 ns, with every transformation enabled.
#[derive(Debug, Clone)]
pub struct Explorer<'k> {
    kernel: &'k Kernel,
    kernel_hash: u64,
    mem: MemoryModel,
    device: FpgaDevice,
    opts: TransformOptions,
    synthesis: SynthesisOptions,
    config: SearchConfig,
    explore_override: Option<Vec<bool>>,
    engine: Arc<EvalEngine>,
    sink: Arc<dyn TraceSink>,
    /// Everything besides the unroll vector that determines an estimate,
    /// hashed once per configuration change instead of once per cache
    /// lookup.
    context_hash: u64,
    /// Like `context_hash` but *excluding* the kernel — the persistent
    /// store pairs it with the canonical kernel hash instead, so
    /// alpha-renamed or decl-reordered kernels share on-disk entries.
    persist_context: u64,
    /// Canonical content hash of the kernel (see [`defacto_ir::canon`]),
    /// computed on first persistent-store use.
    canonical: OnceLock<ContentHash>,
    /// Optional persistent content-addressed store consulted between the
    /// engine's memo cache and a full evaluation.
    store: Option<Arc<PersistentCache>>,
    /// Point-invariant pipeline artifacts, prepared lazily on the first
    /// evaluation and shared (clones included) across workers.
    prepared: OnceLock<Option<Arc<PreparedKernel>>>,
    /// Evaluation fidelity policy.
    fidelity: Fidelity,
    /// Joint-space axes, when multi-axis exploration was requested with
    /// [`Explorer::axes`]. `None` keeps every path identical to the
    /// classic unroll-only explorer.
    axes: Option<Vec<Axis>>,
    /// The tier-0 analytic model, built lazily from the prepared kernel
    /// and invalidated whenever the evaluation context changes. `None`
    /// inside means the model declined the configuration (designer
    /// resource constraints) — fidelity falls back to tier 1.
    analytic: OnceLock<Option<Arc<AnalyticModel>>>,
    /// Prepared kernel variants keyed by `(permutation, tile)`, built
    /// lazily on the first joint evaluation. Like `prepared`, a pure
    /// function of the kernel — never invalidated.
    variants: OnceLock<Option<Arc<VariantCache>>>,
    /// The tier-0 model family over joint points, built lazily and
    /// invalidated with the evaluation context like `analytic`.
    joint_model: OnceLock<Option<Arc<JointAnalyticModel>>>,
}

impl<'k> Explorer<'k> {
    /// Start exploring `kernel` with the paper's default platform.
    pub fn new(kernel: &'k Kernel) -> Self {
        // The kernel's printed form identifies it in cache keys; two
        // explorers over structurally identical kernels share entries.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        kernel.to_string().hash(&mut h);
        let mut ex = Explorer {
            kernel,
            kernel_hash: h.finish(),
            mem: MemoryModel::wildstar_pipelined(),
            device: FpgaDevice::virtex1000(),
            opts: TransformOptions::default(),
            synthesis: SynthesisOptions::default(),
            config: SearchConfig::default(),
            explore_override: None,
            engine: Arc::new(EvalEngine::default()),
            sink: Arc::new(NullSink),
            context_hash: 0,
            persist_context: 0,
            canonical: OnceLock::new(),
            store: None,
            prepared: OnceLock::new(),
            fidelity: Fidelity::Full,
            axes: None,
            analytic: OnceLock::new(),
            variants: OnceLock::new(),
            joint_model: OnceLock::new(),
        };
        ex.refresh_context();
        ex
    }

    /// Recompute the context hash and drop the cached tier-0 model; call
    /// after any builder change that affects estimates.
    fn refresh_context(&mut self) {
        self.context_hash = self.compute_context_hash();
        self.persist_context = self.compute_persist_context();
        self.analytic = OnceLock::new();
        self.joint_model = OnceLock::new();
    }

    /// Record every search decision into `sink` (see [`crate::trace`]).
    /// Traces are deterministic: the same exploration produces the same
    /// events at any worker count.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Use exactly `n` evaluation worker threads (a fresh engine; the
    /// default engine honours `DEFACTO_THREADS`, then host parallelism).
    pub fn threads(mut self, n: usize) -> Self {
        self.engine = Arc::new(EvalEngine::new(n));
        self
    }

    /// Share an evaluation engine (and its memo cache) with other
    /// explorers.
    pub fn engine(mut self, engine: Arc<EvalEngine>) -> Self {
        self.engine = engine;
        self
    }

    /// The evaluation engine in use.
    pub fn engine_ref(&self) -> &Arc<EvalEngine> {
        &self.engine
    }

    /// Use a different memory model (the number of memories propagates to
    /// the transformation options).
    pub fn memory(mut self, mem: MemoryModel) -> Self {
        self.opts.num_memories = mem.num_memories;
        self.mem = mem;
        self.refresh_context();
        self
    }

    /// Target a different device.
    pub fn device(mut self, device: FpgaDevice) -> Self {
        self.device = device;
        self.refresh_context();
        self
    }

    /// The device being targeted.
    pub fn device_ref(&self) -> &FpgaDevice {
        &self.device
    }

    /// The kernel being explored.
    pub fn kernel_ref(&self) -> &Kernel {
        self.kernel
    }

    /// Run the IR verifier on every transformation pass's output (see
    /// [`TransformOptions::verify_each_pass`]): a pass that emits
    /// malformed IR fails the evaluation instead of skewing estimates.
    pub fn verify_each_pass(mut self, on: bool) -> Self {
        self.opts.verify_each_pass = on;
        self.refresh_context();
        self
    }

    /// Override the transformation options (e.g. for ablations). The
    /// memory count is forced back in sync with the memory model.
    pub fn options(mut self, opts: TransformOptions) -> Self {
        self.opts = TransformOptions {
            num_memories: self.mem.num_memories,
            ..opts
        };
        self.refresh_context();
        self
    }

    /// Override the synthesis-side options: designer operator bounds
    /// (paper §2.3) and bit-width narrowing (paper §2.4).
    pub fn synthesis(mut self, synthesis: SynthesisOptions) -> Self {
        self.synthesis = synthesis;
        self.refresh_context();
        self
    }

    /// Enable/disable bit-width narrowing from value-range analysis.
    pub fn bitwidth_narrowing(mut self, on: bool) -> Self {
        self.synthesis.bitwidth_narrowing = on;
        self.refresh_context();
        self
    }

    /// Tolerance band around `B = 1` that counts as balanced.
    pub fn balance_tolerance(mut self, tol: f64) -> Self {
        self.config.balance_tolerance = tol;
        self
    }

    /// Force the per-loop exploration flags (outermost first), overriding
    /// the saturation analysis' choice of memory-varying loops.
    pub fn explore_levels(mut self, levels: &[bool]) -> Self {
        self.explore_override = Some(levels.to_vec());
        self
    }

    /// Select the evaluation fidelity (see [`Fidelity`]). The tier-0
    /// model is built lazily on first use; configurations it declines
    /// (designer resource constraints) silently fall back to
    /// [`Fidelity::Full`] behavior.
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// The fidelity policy in effect.
    pub fn fidelity_ref(&self) -> Fidelity {
        self.fidelity
    }

    /// Select the joint-space axes for [`Explorer::joint_space`] and
    /// [`Explorer::joint_sweep`]. Search ([`Explorer::explore`]) and the
    /// classic sweep are unaffected — they always work the unroll axis —
    /// so selections stay bit-identical whether or not axes are set.
    pub fn axes(mut self, axes: &[Axis]) -> Self {
        self.axes = Some(axes.to_vec());
        self
    }

    /// The joint-space axes in effect (`None` until [`Explorer::axes`]
    /// is called; [`Explorer::joint_space`] then defaults to unroll
    /// only).
    pub fn axes_ref(&self) -> Option<&[Axis]> {
        self.axes.as_deref()
    }

    /// The tier-0 analytic model for the current context, if the kernel
    /// prepares and the model admits the configuration.
    fn analytic_model(&self) -> Option<&Arc<AnalyticModel>> {
        self.analytic
            .get_or_init(|| {
                let prepared = self.prepared()?.clone();
                AnalyticModel::new(
                    prepared,
                    self.mem.clone(),
                    self.device.clone(),
                    self.opts.clone(),
                    self.synthesis.clone(),
                )
                .map(Arc::new)
            })
            .as_ref()
    }

    /// The shared prepared-variant cache for joint evaluation, if the
    /// kernel normalizes into a perfect nest.
    fn variant_cache(&self) -> Option<&Arc<VariantCache>> {
        self.variants
            .get_or_init(|| VariantCache::new(self.kernel).ok().map(Arc::new))
            .as_ref()
    }

    /// The tier-0 joint model family for the current context, if the
    /// kernel's variants prepare and the model admits the configuration.
    fn joint_analytic_model(&self) -> Option<&Arc<JointAnalyticModel>> {
        self.joint_model
            .get_or_init(|| {
                let variants = self.variant_cache()?.clone();
                JointAnalyticModel::new(
                    variants,
                    self.mem.clone(),
                    self.device.clone(),
                    self.opts.clone(),
                    self.synthesis.clone(),
                )
                .map(Arc::new)
            })
            .as_ref()
    }

    /// The transformation options in effect.
    pub fn transform_options(&self) -> &TransformOptions {
        &self.opts
    }

    /// Transform the kernel at one unroll vector.
    ///
    /// # Errors
    ///
    /// Propagates transformation failures (e.g. non-dividing factors).
    pub fn design(&self, unroll: &UnrollVector) -> Result<TransformedDesign> {
        match self.prepared() {
            // Bit-identical to the scratch pipeline (enforced by the
            // incremental-equivalence property test) but skips the
            // point-invariant work.
            Some(p) => Ok(p.transform(unroll, &self.opts)?),
            // Preparation fails exactly when every point would fail;
            // running the scratch pipeline reproduces the per-point error.
            None => Ok(transform(self.kernel, unroll, &self.opts)?),
        }
    }

    fn prepared(&self) -> Option<&Arc<PreparedKernel>> {
        self.prepared
            .get_or_init(|| PreparedKernel::prepare(self.kernel).ok().map(Arc::new))
            .as_ref()
    }

    /// Seed the point-invariant pipeline artifacts — e.g. from
    /// [`PreparedKernel::prepare_reusing`] during incremental
    /// re-exploration. The caller must have prepared *this* kernel;
    /// seeding a foreign preparation is unsound. No-op if an evaluation
    /// already prepared lazily.
    pub fn with_prepared(self, prepared: Arc<PreparedKernel>) -> Self {
        let _ = self.prepared.set(Some(prepared));
        self
    }

    /// The shared point-invariant artifacts, if any evaluation (or
    /// [`Explorer::with_prepared`]) has produced them.
    pub fn prepared_arc(&self) -> Option<Arc<PreparedKernel>> {
        self.prepared.get().and_then(Clone::clone)
    }

    /// Offset-copy cache statistics `(hits, misses)` of the prepared
    /// evaluation path, if any design has been evaluated yet.
    pub fn prepared_stats(&self) -> Option<(u64, u64)> {
        self.prepared
            .get()
            .and_then(Option::as_ref)
            .map(|p| p.copy_cache_stats())
    }

    /// Hash of everything besides the unroll vector that determines an
    /// estimate: the kernel, the transform and synthesis options, the
    /// memory model, and the device's capacity and clock. The device
    /// *name* is excluded so renamed-but-identical devices (the
    /// multi-FPGA mapper's `XCV1000#0`) still share cache entries.
    ///
    /// Recomputed eagerly by the builder methods that change an input,
    /// and cached in `self.context_hash` for the per-lookup fast path.
    fn compute_context_hash(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.kernel_hash.hash(&mut h);
        self.opts.hash(&mut h);
        self.synthesis.hash(&mut h);
        self.mem.hash(&mut h);
        self.device.capacity_slices.hash(&mut h);
        self.device.clock_ns.hash(&mut h);
        h.finish()
    }

    /// The platform-and-options half of the persistent-store key. The
    /// kernel is deliberately excluded — the store keys on the canonical
    /// content hash instead, so structurally identical kernels (alpha
    /// renames, reordered declarations, shifted-but-equivalent bounds)
    /// share entries across processes.
    fn compute_persist_context(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.opts.hash(&mut h);
        self.synthesis.hash(&mut h);
        self.mem.hash(&mut h);
        self.device.capacity_slices.hash(&mut h);
        self.device.clock_ns.hash(&mut h);
        h.finish()
    }

    /// Attach a persistent content-addressed store (see
    /// [`defacto_cache::PersistentCache`]): engine-memo misses consult it
    /// before evaluating, evaluations are written back, and
    /// [`Explorer::explore`] records its selection for warm starts.
    /// Search traces and selections are unaffected — a store hit is
    /// indistinguishable from a prefetch-warmed memo entry.
    pub fn persistent(mut self, store: Arc<PersistentCache>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached persistent store, if any.
    pub fn persistent_ref(&self) -> Option<&Arc<PersistentCache>> {
        self.store.as_ref()
    }

    /// Canonical content hash of the kernel (computed once).
    pub fn canonical_hash(&self) -> ContentHash {
        *self
            .canonical
            .get_or_init(|| defacto_ir::content_hash(self.kernel))
    }

    /// The persistent-store key of this explorer's configuration.
    pub fn persist_key(&self) -> ContextKey {
        ContextKey {
            kernel: self.canonical_hash(),
            context: self.persist_context,
        }
    }

    fn cache_key(&self, unroll: &UnrollVector) -> CacheKey {
        CacheKey {
            unroll: unroll.clone(),
            context: self.context_hash,
        }
    }

    /// Evaluate one unroll vector: transform + behavioral-synthesis
    /// estimate, memoized in the engine's cache (estimation is
    /// deterministic, so a hit is indistinguishable from re-evaluating).
    ///
    /// Under [`Fidelity::Analytic`] the estimate is the synthetic tier-0
    /// band midpoint instead (recognizable by
    /// `estimate.provenance.segments == 0`); tier-0 results never enter
    /// the engine's memo cache, so mixed-fidelity explorers sharing an
    /// engine cannot cross-contaminate.
    ///
    /// # Errors
    ///
    /// Propagates transformation failures.
    pub fn evaluate(&self, unroll: &UnrollVector) -> Result<EvaluatedDesign> {
        if self.fidelity == Fidelity::Analytic {
            if let Some(model) = self.analytic_model() {
                let band = model.evaluate(unroll)?;
                return Ok(EvaluatedDesign {
                    unroll: unroll.clone(),
                    estimate: model.synthetic_estimate(&band),
                });
            }
        }
        let (estimate, _) = self.evaluate_inner(unroll)?;
        Ok(EvaluatedDesign {
            unroll: unroll.clone(),
            estimate,
        })
    }

    /// The tier-1 evaluation path: engine memo cache, then the
    /// persistent store (when attached), then transform + estimate.
    /// Fresh evaluations are written back to the store; the returned
    /// flag is true when *any* cache layer answered.
    fn evaluate_inner(&self, unroll: &UnrollVector) -> Result<(Estimate, bool)> {
        let eval = || {
            let design = self.design(unroll)?;
            Ok(estimate_opts(
                &design,
                &self.mem,
                &self.device,
                &self.synthesis,
            ))
        };
        match &self.store {
            None => self
                .engine
                .evaluate_cached_flagged(&self.cache_key(unroll), eval),
            Some(store) => {
                let key = self.persist_key();
                let (estimate, hit) = self.engine.evaluate_cached_tiered(
                    &self.cache_key(unroll),
                    || store.lookup_estimate(key, unroll.factors()),
                    eval,
                )?;
                if !hit {
                    store.insert_estimate(key, unroll.factors(), &estimate);
                }
                Ok((estimate, hit))
            }
        }
    }

    /// [`Explorer::evaluate`], also reporting whether a cache layer
    /// answered. This is the search's single cache layer and hit/miss
    /// source of truth.
    fn evaluate_flagged(&self, unroll: &UnrollVector) -> Result<VisitOutcome> {
        let (estimate, cache_hit) = self.evaluate_inner(unroll)?;
        Ok(VisitOutcome {
            estimate,
            cache_hit,
        })
    }

    /// Saturation analysis and the design space for this configuration.
    ///
    /// # Errors
    ///
    /// Fails when the kernel is not a perfect loop nest.
    pub fn analyze(&self) -> Result<(SaturationInfo, DesignSpace)> {
        saturation_analysis(self.kernel, &self.opts, self.explore_override.as_deref())
    }

    /// Run the paper's Figure-2 search.
    ///
    /// With more than one worker, the doubling frontier (the chain of
    /// points the search visits while compute bound) is speculatively
    /// evaluated in one parallel batch first; the serial algorithm then
    /// replays over the warm cache, so the visited sequence, selected
    /// design and termination reason are bit-identical to a
    /// single-threaded run. `result.stats` reports the engine-wide
    /// counters for this call, speculative evaluations included.
    ///
    /// Fidelity: under [`Fidelity::Multi`] the visited sequence,
    /// selection and termination stay bit-identical to
    /// [`Fidelity::Full`] — the search replays at tier 1 — but each
    /// first visit is preceded by a [`TraceEvent::TierPromote`]
    /// recording the tier-0 verdict (`forced` when the analytic band
    /// would not have kept the point on its own), and the per-tier
    /// stats are filled in. Under [`Fidelity::Analytic`] the search
    /// itself runs on synthetic tier-0 estimates — fast, approximate,
    /// and possibly selecting a different design.
    ///
    /// # Errors
    ///
    /// Propagates analysis or evaluation failures.
    pub fn explore(&self) -> Result<SearchResult> {
        let started = Instant::now();
        let before = self.engine.counters();
        let (sat, space) = self.analyze()?;
        if self.fidelity == Fidelity::Analytic {
            if let Some(model) = self.analytic_model() {
                let model = model.clone();
                return self.explore_analytic(started, &sat, &space, &model);
            }
        }
        if self.engine.threads() > 1 || self.sink.enabled() {
            let frontier = doubling_frontier(&space, &sat);
            // The frontier is a pure function of the space, so the event
            // is identical whether or not a prefetch actually runs —
            // traces stay byte-identical across worker counts.
            if self.sink.enabled() {
                self.sink.record(&TraceEvent::Frontier {
                    points: frontier.clone(),
                });
            }
            if self.engine.threads() > 1 {
                // Speculative: a frontier point past where the serial
                // search stops may legitimately fail to evaluate; the
                // replay below surfaces any error the serial algorithm
                // would actually hit.
                for outcome in self.engine.parallel_map(&frontier, |u| self.evaluate(u)) {
                    drop(outcome);
                }
            }
        }
        let tier0 = match self.fidelity {
            Fidelity::Multi => self.analytic_model().cloned(),
            _ => None,
        };
        let mut counts = TierCounts::default();
        let mut promoted: HashSet<UnrollVector> = HashSet::new();
        let mut result = run_search_instrumented(
            &space,
            &sat,
            &self.config,
            |u| {
                if let Some(model) = &tier0 {
                    if promoted.insert(u.clone()) {
                        // The Figure-2 replay must stay bit-identical to
                        // the full-fidelity run, so every point it visits
                        // is promoted to tier 1; the band records whether
                        // tier 0 would have kept it on its own merits.
                        let forced = match model.evaluate(u) {
                            Ok(band) => {
                                counts.evaluated += 1;
                                !band.fits_possible
                            }
                            Err(_) => true,
                        };
                        counts.promoted += 1;
                        if self.sink.enabled() {
                            self.sink.record(&TraceEvent::TierPromote {
                                unroll: u.clone(),
                                forced,
                            });
                        }
                    }
                }
                self.evaluate_flagged(u)
            },
            self.sink.as_ref(),
        )?;
        result.stats = self.engine.stats_since(before, started.elapsed());
        result.stats.tier0_evaluated = counts.evaluated;
        result.stats.tier0_promoted = counts.promoted;
        self.persist_result(&result);
        Ok(result)
    }

    /// Record the search outcome (and a summary of the point-invariant
    /// analyses) into the persistent store, then flush it. Best-effort:
    /// persistence failures never fail a search.
    fn persist_result(&self, result: &SearchResult) {
        let Some(store) = &self.store else { return };
        let key = self.persist_key();
        store.record_selection(
            key,
            &SelectionRecord {
                unroll: result.selected.unroll.factors().to_vec(),
                termination: crate::trace::termination_label(result.termination).to_string(),
                visited: result.visited.len() as u64,
                space: result.space_size,
            },
        );
        if let Some(prepared) = self.prepared() {
            let canonical = defacto_ir::canonicalize(self.kernel);
            if let Some(innermost) = canonical.subtree("innermost") {
                let sets = prepared.base_sets();
                store.record_analysis(
                    key.kernel,
                    innermost,
                    &AnalysisSummary {
                        depth: prepared.depth(),
                        accesses: sets.iter().map(|s| s.members.len()).sum(),
                        read_sets: sets.iter().filter(|s| !s.is_write).count(),
                        write_sets: sets.iter().filter(|s| s.is_write).count(),
                        carried: prepared.carried_scalars().len(),
                    },
                );
            }
        }
        let _ = store.flush();
    }

    /// The tier-0-only search: the Figure-2 algorithm over synthetic
    /// band-midpoint estimates, with a local memo standing in for the
    /// engine's cache (tier-0 results stay out of the shared cache).
    fn explore_analytic(
        &self,
        started: Instant,
        sat: &SaturationInfo,
        space: &DesignSpace,
        model: &Arc<AnalyticModel>,
    ) -> Result<SearchResult> {
        if self.sink.enabled() {
            self.sink.record(&TraceEvent::Frontier {
                points: doubling_frontier(space, sat),
            });
        }
        let mut memo: HashMap<UnrollVector, Estimate> = HashMap::new();
        let mut result = run_search_instrumented(
            space,
            sat,
            &self.config,
            |u| {
                if let Some(e) = memo.get(u) {
                    return Ok(VisitOutcome {
                        estimate: e.clone(),
                        cache_hit: true,
                    });
                }
                let band = model.evaluate(u)?;
                let e = model.synthetic_estimate(&band);
                memo.insert(u.clone(), e.clone());
                Ok(VisitOutcome {
                    estimate: e,
                    cache_hit: false,
                })
            },
            self.sink.as_ref(),
        )?;
        // The search-level counters measured tier-0 work; reattribute.
        let tier0_evaluated = result.stats.evaluated;
        result.stats = EvalStats {
            evaluated: 0,
            cache_hits: 0,
            wall: started.elapsed(),
            eval_wall: Duration::ZERO,
            workers: self.engine.threads(),
            tier0_evaluated,
            ..EvalStats::default()
        };
        Ok(result)
    }

    /// Build the typed multi-axis design space for the axes selected
    /// with [`Explorer::axes`] (unroll only when unset). Axis domains
    /// are constructed from the kernel's
    /// [`LegalitySummary`](defacto_analysis::LegalitySummary), so every
    /// member is statically proven legal before anything is evaluated —
    /// see [`DesignSpace::with_axes`].
    ///
    /// # Errors
    ///
    /// Fails when the kernel is not a perfect loop nest or does not
    /// prepare.
    pub fn joint_space(&self) -> Result<DesignSpace> {
        let axes = match &self.axes {
            Some(a) => a.clone(),
            None => vec![Axis::Unroll],
        };
        let (info, _) = self.analyze()?;
        let prepared = match self.prepared() {
            Some(p) => p.clone(),
            // Preparation fails deterministically; reproduce its error.
            None => match PreparedKernel::prepare(self.kernel) {
                Err(e) => return Err(e.into()),
                Ok(p) => Arc::new(p),
            },
        };
        let nest = self
            .kernel
            .perfect_nest()
            .expect("saturation analysis accepted the nest");
        Ok(DesignSpace::with_axes(
            &nest.trip_counts(),
            &info.unrollable,
            prepared.legality(),
            &axes,
            self.mem.width_bits,
        ))
    }

    /// Evaluate every point of the joint multi-axis space (see
    /// [`Explorer::joint_space`]), fanned out across the engine's
    /// workers, in the space's enumeration order. One
    /// [`TraceEvent::AxisVisit`] is emitted per point, in order, when
    /// tracing is enabled.
    ///
    /// With axes unset or `[Axis::Unroll]`, the evaluated designs carry
    /// exactly the classic space's unroll vectors in [`DesignSpace::iter`]
    /// order with estimates identical to [`Explorer::sweep`].
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures. A transform failure on any
    /// enumerated point is a soundness bug — membership is supposed to
    /// imply transform success — and surfaces here as the transform's
    /// typed error rather than being skipped.
    pub fn joint_sweep(&self) -> Result<Vec<EvaluatedJointDesign>> {
        let space = self.joint_space()?;
        let points: Vec<JointPoint> = space.joint_points().to_vec();
        let results = self
            .engine
            .parallel_map(&points, |p| self.evaluate_joint(p));
        let mut sweep = Vec::with_capacity(points.len());
        for r in results {
            sweep.push(r?);
        }
        if self.sink.enabled() {
            for d in &sweep {
                self.sink.record(&TraceEvent::AxisVisit {
                    point: d.point.clone(),
                    balance: d.estimate.balance,
                    cycles: d.estimate.cycles,
                    slices: d.estimate.slices,
                    fits: d.estimate.fits,
                });
            }
        }
        Ok(sweep)
    }

    /// Search the joint multi-axis space with a pluggable
    /// [`SearchStrategy`](crate::SearchStrategy) instead of enumerating
    /// it (see [`crate::strategy`]).
    ///
    /// [`StrategyKind::BranchAndBound`] selects **bit-identically** to
    /// [`Explorer::joint_sweep`] +
    /// [`crate::exhaustive::best_joint_performance`] while typically
    /// paying a small fraction of its tier-1 evaluations — the tier-0
    /// joint bands prove every pruned point loses.
    /// [`StrategyKind::CoordinateDescent`] additionally reports
    /// `gap_cycles`, a proven bound on how far its selection can be
    /// from optimal. The decision sequence, trace and selection are
    /// deterministic at any worker count.
    ///
    /// # Errors
    ///
    /// Propagates space-construction and evaluation failures.
    pub fn joint_explore(&self, kind: StrategyKind) -> Result<JointSearchResult> {
        let started = Instant::now();
        let before = self.engine.counters();
        let space = self.joint_space()?;
        let cx = ExplorerStrategyCx {
            ex: self,
            points: space.joint_points().to_vec(),
            seed: self.joint_seed(&space),
            model: self.joint_analytic_model().cloned(),
            bands_priced: Cell::new(0),
        };
        let outcome = strategy_for(kind).run(&cx)?;
        let selected = crate::exhaustive::best_joint_performance(&outcome.evaluated).cloned();
        let mut stats = self.engine.stats_since(before, started.elapsed());
        stats.strategy_visited = outcome.evaluated.len() as u64;
        stats.bounded_pruned = outcome.pruned;
        stats.tier0_evaluated = cx.bands_priced.get();
        stats.tier0_pruned = outcome.pruned;
        Ok(JointSearchResult {
            strategy: kind,
            selected,
            evaluated: outcome.evaluated,
            pruned: outcome.pruned,
            gap_cycles: outcome.gap_cycles,
            space_points: space.joint_size(),
            stats,
        })
    }

    /// The Figure-2 saturation point as a joint coordinate (unroll at
    /// `u_init`, identity order, untiled, flags off), when it is a
    /// member of the joint space — the guided strategies' starting
    /// incumbent.
    fn joint_seed(&self, space: &DesignSpace) -> Option<JointPoint> {
        let (info, _) = self.analyze().ok()?;
        let factors = info.u_init.factors();
        let candidate = JointPoint {
            unroll: factors.to_vec(),
            permutation: (0..factors.len()).collect(),
            tile: None,
            narrow: false,
            pack: false,
        };
        space.contains_joint(&candidate).then_some(candidate)
    }

    /// Evaluate one joint point: apply its interchange/tiling to the
    /// kernel, run the classic unroll pipeline on the variant, and
    /// estimate with the point's narrowing/packing flags overriding the
    /// explorer's synthesis options.
    ///
    /// The variant (and its point-invariant preparation) comes from the
    /// shared [`VariantCache`] — bit-identical to the former scratch
    /// pipeline (the [`PreparedKernel::transform`] equivalence contract)
    /// but derived once per variant instead of once per point. Under
    /// [`Fidelity::Analytic`] the estimate is the joint tier-0 band
    /// midpoint instead (`provenance.segments == 0`).
    fn evaluate_joint(&self, p: &JointPoint) -> Result<EvaluatedJointDesign> {
        let unroll = joint_unroll(p);
        if self.fidelity == Fidelity::Analytic {
            if let Some(m) = self.joint_analytic_model() {
                if let Some(band) = m.band(&p.permutation, p.tile, p.narrow, p.pack, &unroll) {
                    if let Some(estimate) =
                        m.synthetic_estimate(&p.permutation, p.tile, p.narrow, p.pack, &band)
                    {
                        return Ok(EvaluatedJointDesign {
                            point: p.clone(),
                            estimate,
                        });
                    }
                }
            }
        }
        let design = match self.variant_cache() {
            Some(cache) => {
                let variant = cache.get(&p.permutation, p.tile)?;
                match &variant.prepared {
                    Some(prepared) => prepared.transform(&unroll, &self.opts)?,
                    // A variant that does not prepare falls back to the
                    // scratch pipeline (same result, reproduced error).
                    None => transform(&variant.kernel, &unroll, &self.opts)?,
                }
            }
            None => transform(&self.joint_variant(p)?, &unroll, &self.opts)?,
        };
        let mut synthesis = self.synthesis.clone();
        if p.narrow {
            synthesis.bitwidth_narrowing = true;
        }
        if p.pack {
            synthesis.pack_small_types = true;
        }
        let estimate = estimate_opts(&design, &self.mem, &self.device, &synthesis);
        Ok(EvaluatedJointDesign {
            point: p.clone(),
            estimate,
        })
    }

    /// The kernel variant a joint point's non-unroll loop axes describe.
    fn joint_variant(&self, p: &JointPoint) -> Result<Kernel> {
        let mut variant = defacto_xform::normalize_loops(self.kernel)?;
        if !p.identity_permutation() {
            variant = defacto_xform::interchange(&variant, &p.permutation)?;
        }
        if let Some((level, tile)) = p.tile {
            variant = defacto_xform::tiling::tile_for_registers(&variant, level, tile)?;
        }
        Ok(variant)
    }

    /// Execute the transformed design at `unroll` on concrete inputs
    /// through the reference interpreter — functional verification of the
    /// exact hardware-bound code, with its memory-traffic profile.
    ///
    /// # Errors
    ///
    /// Propagates transformation and interpretation failures.
    pub fn simulate(
        &self,
        unroll: &UnrollVector,
        inputs: &[(&str, Vec<i64>)],
    ) -> Result<(defacto_ir::Workspace, defacto_ir::ExecStats)> {
        let design = self.design(unroll)?;
        defacto_ir::run_with_inputs(&design.kernel, inputs)
            .map_err(|e| crate::DseError::Xform(defacto_xform::XformError::Ir(e)))
    }

    /// Evaluate *every* design in the space (the exhaustive baseline the
    /// paper's figures plot), fanned out across the engine's workers.
    /// Results are returned in the space's iteration order regardless of
    /// worker count.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn sweep(&self) -> Result<Vec<EvaluatedDesign>> {
        Ok(self.sweep_with_stats()?.0)
    }

    /// [`Explorer::sweep`], also reporting the evaluation counters for
    /// this call.
    ///
    /// Fidelity: under [`Fidelity::Multi`] the whole space is ranked at
    /// tier 0 first and only the points the analytic band cannot rule
    /// out are promoted to tier 1 (see [`Explorer::multi_sweep`]); the
    /// pruned points appear in the output with synthetic tier-0
    /// estimates (`provenance.segments == 0`), placed so
    /// [`crate::exhaustive::best_performance`] selects the same design
    /// as a full sweep, bit-identically. Under [`Fidelity::Analytic`]
    /// every estimate is a synthetic tier-0 band midpoint.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn sweep_with_stats(&self) -> Result<(Vec<EvaluatedDesign>, EvalStats)> {
        let started = Instant::now();
        let before = self.engine.counters();
        let (_, space) = self.analyze()?;
        let model = match self.fidelity {
            Fidelity::Full => None,
            Fidelity::Multi | Fidelity::Analytic => self.analytic_model().cloned(),
        };
        let (sweep, counts) = match (self.fidelity, model) {
            (Fidelity::Analytic, Some(model)) => self.analytic_sweep(&space, &model)?,
            (Fidelity::Multi, Some(model)) => self.multi_sweep(&space, &model)?,
            // Full fidelity, or the model declined the configuration.
            _ => (
                crate::exhaustive::parallel_sweep(&space, &self.engine, |u| self.evaluate(u))?,
                TierCounts::default(),
            ),
        };
        let mut stats = self.engine.stats_since(before, started.elapsed());
        stats.tier0_evaluated = counts.evaluated;
        stats.tier0_promoted = counts.promoted;
        stats.tier0_pruned = counts.pruned;
        Ok((sweep, stats))
    }

    /// Tier-0-only sweep: a synthetic band-midpoint estimate per point,
    /// fanned out across the engine's workers but bypassing its memo
    /// cache and counters.
    fn analytic_sweep(
        &self,
        space: &DesignSpace,
        model: &Arc<AnalyticModel>,
    ) -> Result<(Vec<EvaluatedDesign>, TierCounts)> {
        let points: Vec<UnrollVector> = space.iter().collect();
        let results = self.engine.parallel_map(&points, |u| {
            let band = model.evaluate(u)?;
            Ok(EvaluatedDesign {
                unroll: u.clone(),
                estimate: model.synthetic_estimate(&band),
            })
        });
        let mut sweep = Vec::with_capacity(points.len());
        for r in results {
            sweep.push(r?);
        }
        let counts = TierCounts {
            evaluated: sweep.len() as u64,
            promoted: 0,
            pruned: 0,
        };
        Ok((sweep, counts))
    }

    /// The multi-fidelity sweep. Tier-0 bands are computed for the whole
    /// space in one parallel pass, then a point is pruned iff the band
    /// *proves* it cannot be selected by
    /// [`crate::exhaustive::best_performance`]:
    ///
    /// - `slices_lo > capacity`: the point certainly does not fit, so
    ///   its synthetic stand-in (`fits == false`) is filtered exactly
    ///   like its true estimate would be; or
    /// - `cycles_lo > T`, where `T` is the exact tier-1 cycle count of a
    ///   *probe*: a point whose band says `fits_certain`, evaluated in
    ///   full before the pass. The full-sweep winner is at least as fast
    ///   as any fitting point, so `winner.cycles ≤ T`, while the pruned
    ///   point's synthetic cycles (≥ its `cycles_lo`) are *strictly*
    ///   greater — never selected, never even tied. Probing with an
    ///   exact count instead of a band upper bound is what makes the
    ///   threshold bite; two probes are taken (the certainly-fitting
    ///   bands with the smallest `cycles_lo` and smallest `cycles_hi`)
    ///   and the faster one wins.
    ///
    /// Everything else is promoted to a full tier-1 evaluation (points
    /// whose band errored are force-promoted), so the selected design is
    /// bit-identical to a [`Fidelity::Full`] sweep. Probes satisfy the
    /// keep rule by construction (`slices_lo ≤ cap`, `cycles_lo ≤ T`),
    /// so they are among the promoted points and their early evaluation
    /// is just a warm cache entry. [`TraceEvent`]s are emitted serially
    /// in space iteration order for the auditor.
    fn multi_sweep(
        &self,
        space: &DesignSpace,
        model: &Arc<AnalyticModel>,
    ) -> Result<(Vec<EvaluatedDesign>, TierCounts)> {
        let points: Vec<UnrollVector> = space.iter().collect();
        let bands: Vec<Option<AnalyticBand>> = self
            .engine
            .parallel_map(&points, |u| Ok(model.evaluate(u).ok()))
            .into_iter()
            .map(|r| r.unwrap_or(None))
            .collect();
        let mut counts = TierCounts {
            evaluated: bands.iter().flatten().count() as u64,
            ..TierCounts::default()
        };
        let certain = || {
            points
                .iter()
                .zip(&bands)
                .filter_map(|(u, b)| b.as_ref().filter(|b| b.fits_certain).map(|b| (u, b)))
        };
        let probes: Vec<&UnrollVector> = [
            certain().min_by_key(|(_, b)| b.cycles_lo).map(|(u, _)| u),
            certain().min_by_key(|(_, b)| b.cycles_hi).map(|(u, _)| u),
        ]
        .into_iter()
        .flatten()
        .collect();
        let mut threshold = u64::MAX;
        for probe in probes {
            let d = self.evaluate(probe)?;
            if d.estimate.fits {
                threshold = threshold.min(d.estimate.cycles);
            }
        }
        let cap = self.device.capacity_slices;
        let keep_flags: Vec<(bool, bool)> = bands
            .iter()
            .map(|band| match band {
                // Band evaluation failed: promote unconditionally so the
                // tier-1 pass reproduces whatever the full sweep does.
                None => (true, true),
                Some(b) => (!(b.slices_lo > cap || b.cycles_lo > threshold), false),
            })
            .collect();
        if self.sink.enabled() {
            for ((u, band), &(keep, forced)) in points.iter().zip(&bands).zip(&keep_flags) {
                if keep {
                    self.sink.record(&TraceEvent::TierPromote {
                        unroll: u.clone(),
                        forced,
                    });
                } else {
                    let b = band.as_ref().expect("pruned points have bands");
                    self.sink.record(&TraceEvent::TierPrune {
                        unroll: u.clone(),
                        slices_lo: b.slices_lo,
                        cycles_lo: b.cycles_lo,
                    });
                }
            }
        }
        let kept: Vec<UnrollVector> = points
            .iter()
            .zip(&keep_flags)
            .filter(|(_, &(keep, _))| keep)
            .map(|(u, _)| u.clone())
            .collect();
        counts.promoted = kept.len() as u64;
        counts.pruned = (points.len() - kept.len()) as u64;
        let mut full = Vec::with_capacity(kept.len());
        for r in self.engine.parallel_map(&kept, |u| self.evaluate(u)) {
            full.push(r?);
        }
        // Reassemble in space iteration order: promoted points carry
        // tier-1 estimates, pruned points their tier-0 stand-ins.
        let mut full_iter = full.into_iter();
        let mut sweep = Vec::with_capacity(points.len());
        for ((u, band), (keep, _)) in points.into_iter().zip(bands).zip(keep_flags) {
            if keep {
                sweep.push(full_iter.next().expect("one tier-1 result per kept point"));
            } else {
                let band = band.expect("pruned points have bands");
                sweep.push(EvaluatedDesign {
                    unroll: u,
                    estimate: model.synthetic_estimate(&band),
                });
            }
        }
        Ok((sweep, counts))
    }
}

/// The unroll vector a joint point's variant pipeline is transformed
/// with: register tiling deepens the nest by one, and tiled points are
/// enumerated at all-ones unroll.
fn joint_unroll(p: &JointPoint) -> UnrollVector {
    match p.tile {
        Some(_) => UnrollVector::ones(p.unroll.len() + 1),
        None => UnrollVector(p.unroll.clone()),
    }
}

/// The explorer-backed [`StrategyContext`]: tier-1 batches fan out
/// across the engine's workers (order-preserving, so the strategy's
/// serial commit order — and the trace — is identical at any worker
/// count), tier-0 bands come from the joint model family, and records
/// go to the trace sink.
struct ExplorerStrategyCx<'a, 'k> {
    ex: &'a Explorer<'k>,
    points: Vec<JointPoint>,
    seed: Option<JointPoint>,
    model: Option<Arc<JointAnalyticModel>>,
    /// Bands actually priced (a `Some` per point), for `tier0_evaluated`.
    bands_priced: Cell<u64>,
}

impl StrategyContext for ExplorerStrategyCx<'_, '_> {
    fn points(&self) -> &[JointPoint] {
        &self.points
    }

    fn seed(&self) -> Option<JointPoint> {
        self.seed.clone()
    }

    fn evaluate_batch(&self, points: &[JointPoint]) -> Result<Vec<EvaluatedJointDesign>> {
        self.ex
            .engine
            .parallel_map(points, |p| self.ex.evaluate_joint(p))
            .into_iter()
            .collect()
    }

    fn bound_batch(&self, points: &[JointPoint]) -> Vec<Option<AnalyticBand>> {
        let Some(model) = &self.model else {
            return vec![None; points.len()];
        };
        let bands: Vec<Option<AnalyticBand>> = self
            .ex
            .engine
            .parallel_map(points, |p| {
                Ok(model.band(&p.permutation, p.tile, p.narrow, p.pack, &joint_unroll(p)))
            })
            .into_iter()
            .map(|r| r.unwrap_or(None))
            .collect();
        self.bands_priced
            .set(self.bands_priced.get() + bands.iter().flatten().count() as u64);
        bands
    }

    fn record_step(&self, design: &EvaluatedJointDesign, incumbent: Option<u64>) {
        if self.ex.sink.enabled() {
            self.ex.sink.record(&TraceEvent::StrategyStep {
                point: design.point.clone(),
                cycles: design.estimate.cycles,
                slices: design.estimate.slices,
                fits: design.estimate.fits,
                incumbent,
            });
        }
    }

    fn record_prune(&self, point: &JointPoint, band: &AnalyticBand, threshold: Option<u64>) {
        if self.ex.sink.enabled() {
            self.ex.sink.record(&TraceEvent::BoundPrune {
                point: point.clone(),
                cycles_lo: band.cycles_lo,
                slices_lo: band.slices_lo,
                threshold,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn evaluate_baseline() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let d = ex.evaluate(&UnrollVector(vec![1, 1])).unwrap();
        assert!(d.estimate.cycles > 0);
        assert!(d.estimate.fits);
    }

    #[test]
    fn explore_fir_pipelined_selects_fast_small_design() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let result = ex.explore().unwrap();
        let base = ex.evaluate(&UnrollVector(vec![1, 1])).unwrap();
        // The selected design is substantially faster than the baseline.
        let speedup = base.estimate.cycles as f64 / result.selected.estimate.cycles as f64;
        assert!(speedup > 2.0, "speedup {speedup}");
        assert!(result.selected.estimate.fits);
        // Only a fraction of the 42-point space is visited.
        assert!(
            result.visited.len() < 12,
            "visited {}",
            result.visited.len()
        );
    }

    #[test]
    fn explore_is_deterministic() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let a = ex.explore().unwrap();
        let b = ex.explore().unwrap();
        assert_eq!(a.selected.unroll, b.selected.unroll);
        assert_eq!(a.visited.len(), b.visited.len());
    }

    #[test]
    fn non_pipelined_fir_is_memory_bound_at_init() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k).memory(MemoryModel::wildstar_non_pipelined());
        let r = ex.explore().unwrap();
        // The paper: without pipelining, FIR designs are always memory
        // bound; the search stops at (or near) the saturation point.
        assert!(r.selected.estimate.balance < 1.0 + 0.10);
    }

    #[test]
    fn unroll_only_joint_sweep_matches_the_classic_sweep() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let classic = ex.sweep().unwrap();
        // Axes unset defaults to unroll only.
        let joint = ex.joint_sweep().unwrap();
        assert_eq!(joint.len(), classic.len());
        for (j, c) in joint.iter().zip(&classic) {
            assert!(j.point.is_unroll_only());
            assert_eq!(j.point.unroll_vector(), c.unroll);
            assert_eq!(j.estimate, c.estimate, "at {}", c.unroll);
        }
        // The winners agree bit for bit.
        let best_joint = crate::exhaustive::best_joint_performance(&joint).unwrap();
        let best_classic = crate::exhaustive::best_performance(&classic).unwrap();
        assert_eq!(best_joint.point.unroll_vector(), best_classic.unroll);
        assert_eq!(best_joint.estimate, best_classic.estimate);
    }

    #[test]
    fn all_axes_joint_sweep_traces_and_audits_clean() {
        let k = parse_kernel(FIR).unwrap();
        let sink = Arc::new(crate::trace::MemorySink::new());
        let ex = Explorer::new(&k).axes(&Axis::ALL).trace(sink.clone());
        let space = ex.joint_space().unwrap();
        let sweep = ex.joint_sweep().unwrap();
        assert_eq!(sweep.len() as u64, space.joint_size());
        // FIR: both orders legal, tiles on both levels, no flag axes.
        assert!(sweep.iter().any(|d| !d.point.identity_permutation()));
        assert!(sweep.iter().any(|d| d.point.tile.is_some()));
        // Every point transformed and estimated: that *is* the
        // membership-soundness contract, certified by the auditor.
        let report = crate::audit::audit_joint_trace(&sink.events(), &space);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn branch_and_bound_joint_explore_matches_exhaustive_with_fewer_evals() {
        let k = parse_kernel(FIR).unwrap();
        let sink = Arc::new(crate::trace::MemorySink::new());
        let ex = Explorer::new(&k).axes(&Axis::ALL).trace(sink.clone());
        let sweep = ex.joint_sweep().unwrap();
        let exhaustive_best = crate::exhaustive::best_joint_performance(&sweep).unwrap();
        let r = ex.joint_explore(StrategyKind::BranchAndBound).unwrap();
        // Bit-identical selection...
        let selected = r.selected.as_ref().unwrap();
        assert_eq!(selected.point, exhaustive_best.point);
        assert_eq!(selected.estimate, exhaustive_best.estimate);
        // ...at a fraction of the tier-1 evaluations.
        assert_eq!(r.space_points as usize, sweep.len());
        assert_eq!(
            r.stats.strategy_visited + r.stats.bounded_pruned,
            r.space_points
        );
        // FIR alone measures ~4.7x; the >=5x headline is the paper-suite
        // aggregate, gated by `bench_joint --check` on BENCH_joint.json.
        assert!(
            r.stats.strategy_visited * 4 <= r.space_points,
            "visited {} of {}",
            r.stats.strategy_visited,
            r.space_points
        );
        assert_eq!(r.gap_cycles, Some(0));
        // The strategy trace certifies the run: incumbents monotone,
        // pruned subtrees exclude the winner.
        let space = ex.joint_space().unwrap();
        let report =
            crate::audit::audit_strategy_trace(&sink.events(), &space, Some(&selected.point));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn coordinate_descent_selection_is_within_its_reported_gap() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k).axes(&Axis::ALL);
        let sweep = ex.joint_sweep().unwrap();
        let exhaustive_best = crate::exhaustive::best_joint_performance(&sweep).unwrap();
        let r = ex.joint_explore(StrategyKind::CoordinateDescent).unwrap();
        let selected = r.selected.as_ref().unwrap();
        assert!(selected.estimate.fits);
        let gap = r.gap_cycles.expect("CD reports a gap when a design fits");
        assert!(
            selected.estimate.cycles - exhaustive_best.estimate.cycles <= gap,
            "selected {} vs optimum {} exceeds reported gap {gap}",
            selected.estimate.cycles,
            exhaustive_best.estimate.cycles
        );
        assert!(r.stats.strategy_visited < r.space_points);
    }

    #[test]
    fn joint_explore_is_deterministic_across_worker_counts() {
        let k = parse_kernel(FIR).unwrap();
        for kind in [
            StrategyKind::BranchAndBound,
            StrategyKind::CoordinateDescent,
        ] {
            let serial = Explorer::new(&k)
                .axes(&Axis::ALL)
                .threads(1)
                .joint_explore(kind)
                .unwrap();
            let parallel = Explorer::new(&k)
                .axes(&Axis::ALL)
                .threads(8)
                .joint_explore(kind)
                .unwrap();
            assert_eq!(serial.selected, parallel.selected, "{kind}");
            assert_eq!(serial.evaluated, parallel.evaluated, "{kind}");
            assert_eq!(serial.pruned, parallel.pruned, "{kind}");
            assert_eq!(serial.gap_cycles, parallel.gap_cycles, "{kind}");
        }
    }

    #[test]
    fn exhaustive_joint_explore_matches_the_sweep() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k).axes(&Axis::ALL);
        let sweep = ex.joint_sweep().unwrap();
        let r = ex.joint_explore(StrategyKind::Exhaustive).unwrap();
        assert_eq!(r.evaluated, sweep);
        assert_eq!(r.pruned, 0);
        assert_eq!(r.stats.strategy_visited, r.space_points);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn evaluated_design_serde_round_trips() {
        let k = parse_kernel(FIR).unwrap();
        let d = Explorer::new(&k)
            .evaluate(&UnrollVector(vec![2, 2]))
            .unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: EvaluatedDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn simulate_runs_the_transformed_design() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let s: Vec<i64> = (0..96).map(|x| x % 13).collect();
        let c: Vec<i64> = (0..32).map(|x| x % 7).collect();
        let (ws, stats) = ex
            .simulate(
                &UnrollVector(vec![4, 2]),
                &[("S", s.clone()), ("C", c.clone())],
            )
            .unwrap();
        assert_eq!(
            ws.array("D").unwrap(),
            defacto_kernels::fir::reference(&s, &c).as_slice()
        );
        // Scalar replacement cut the traffic relative to 4 accesses per
        // original iteration.
        assert!(stats.memory_accesses() < 4 * 2048);
    }

    #[test]
    fn small_device_space_constrains() {
        let k = parse_kernel(FIR).unwrap();
        let tiny = FpgaDevice {
            name: "tiny".into(),
            capacity_slices: 2500,
            clock_ns: 40,
        };
        let ex = Explorer::new(&k).device(tiny.clone());
        let r = ex.explore().unwrap();
        assert!(r.selected.estimate.fits);
        assert!(r.selected.estimate.slices <= tiny.capacity_slices);
    }

    #[test]
    fn fidelity_labels_round_trip() {
        for f in [Fidelity::Full, Fidelity::Multi, Fidelity::Analytic] {
            assert_eq!(f.label().parse::<Fidelity>().unwrap(), f);
        }
        assert!("sideways".parse::<Fidelity>().is_err());
    }

    #[test]
    fn multi_sweep_selects_the_full_sweep_design() {
        let k = parse_kernel(FIR).unwrap();
        let full_ex = Explorer::new(&k).threads(1);
        let multi_ex = Explorer::new(&k).threads(1).fidelity(Fidelity::Multi);
        let (full, full_stats) = full_ex.sweep_with_stats().unwrap();
        let (multi, multi_stats) = multi_ex.sweep_with_stats().unwrap();
        assert_eq!(full.len(), multi.len());
        let fw = crate::exhaustive::best_performance(&full).unwrap();
        let mw = crate::exhaustive::best_performance(&multi).unwrap();
        assert_eq!(fw.unroll, mw.unroll);
        // The winner was promoted, so its estimate is the tier-1 one —
        // bit-identical to the full sweep's.
        assert_eq!(fw.estimate, mw.estimate);
        assert_eq!(full_stats.tier0_evaluated, 0);
        assert_eq!(multi_stats.tier0_evaluated, 42);
        assert_eq!(
            multi_stats.tier0_promoted + multi_stats.tier0_pruned,
            multi_stats.tier0_evaluated
        );
        assert!(
            multi_stats.tier0_pruned > 0,
            "expected the band to prune part of the FIR space"
        );
        // Only promoted points paid tier 1: each missed the memo cache
        // exactly once (probes re-resolve as cache hits).
        assert_eq!(multi_stats.evaluated, multi_stats.tier0_promoted);
        assert!(multi_stats.cache_hits <= 2, "{}", multi_stats.cache_hits);
    }

    #[test]
    fn analytic_sweep_is_all_tier0() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k).threads(1).fidelity(Fidelity::Analytic);
        let (sweep, stats) = ex.sweep_with_stats().unwrap();
        assert_eq!(sweep.len(), 42);
        // Synthetic estimates are recognizable by an empty schedule
        // provenance, and tier-0 work never touches the engine.
        assert!(sweep.iter().all(|d| d.estimate.provenance.segments == 0));
        assert_eq!(stats.evaluated, 0);
        assert_eq!(stats.tier0_evaluated, 42);
        assert_eq!(ex.engine_ref().cache().len(), 0);
    }

    #[test]
    fn multi_explore_matches_full_explore() {
        let k = parse_kernel(FIR).unwrap();
        let full = Explorer::new(&k).explore().unwrap();
        let ex = Explorer::new(&k).fidelity(Fidelity::Multi);
        let multi = ex.explore().unwrap();
        assert_eq!(full.selected.unroll, multi.selected.unroll);
        assert_eq!(full.selected.estimate, multi.selected.estimate);
        assert_eq!(full.visited, multi.visited);
        // Every distinct visited point was promoted (and band-priced).
        let distinct: std::collections::HashSet<_> =
            multi.visited.iter().map(|v| &v.unroll).collect();
        assert_eq!(multi.stats.tier0_promoted, distinct.len() as u64);
        assert_eq!(multi.stats.tier0_evaluated, multi.stats.tier0_promoted);
        assert_eq!(multi.stats.tier0_pruned, 0);
    }

    #[test]
    fn analytic_explore_runs_on_synthetic_estimates() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k).fidelity(Fidelity::Analytic);
        let r = ex.explore().unwrap();
        assert_eq!(r.selected.estimate.provenance.segments, 0);
        assert!(r.stats.tier0_evaluated > 0);
        assert_eq!(r.stats.evaluated, 0);
        // Tier-0 search results stay out of the shared memo cache.
        assert_eq!(ex.engine_ref().cache().len(), 0);
    }

    /// A second sweep through the same explorer answers entirely from the
    /// memo cache: `evaluated == 0`, `cache_hits == points`, hit rate 1.
    /// (An exhaustive *cold* sweep legitimately reports a 0 hit rate —
    /// every point is distinct — which is what `bench_sweep`'s warm pass
    /// measures.)
    #[test]
    fn warm_resweep_hits_cache_for_every_point() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k).threads(1);
        let (cold, cold_stats) = ex.sweep_with_stats().unwrap();
        assert_eq!(cold_stats.evaluated, 42);
        assert_eq!(cold_stats.cache_hits, 0);
        assert_eq!(cold_stats.cache_hit_rate(), 0.0);
        let (warm, warm_stats) = ex.sweep_with_stats().unwrap();
        assert_eq!(cold, warm);
        assert_eq!(warm_stats.evaluated, 0);
        assert_eq!(warm_stats.cache_hits, 42);
        assert_eq!(warm_stats.cache_hit_rate(), 1.0);
    }
}
