//! The [`Explorer`] facade: one builder tying together transformation,
//! estimation, saturation analysis and the Figure-2 search.

use crate::engine::{CacheKey, EvalEngine, EvalStats};
use crate::error::Result;
use crate::saturation::{saturation_analysis, SaturationInfo};
use crate::search::{
    doubling_frontier, run_search_instrumented, SearchConfig, SearchResult, VisitOutcome,
};
use crate::space::DesignSpace;
use crate::trace::{NullSink, TraceEvent, TraceSink};
use defacto_ir::Kernel;
use defacto_synth::{estimate_opts, Estimate, FpgaDevice, MemoryModel, SynthesisOptions};
use defacto_xform::{transform, PreparedKernel, TransformOptions, TransformedDesign, UnrollVector};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EvaluatedDesign {
    /// The unroll-factor vector.
    pub unroll: UnrollVector,
    /// Its behavioral-synthesis estimate.
    pub estimate: Estimate,
}

/// Design-space explorer for one kernel.
///
/// Defaults match the paper's platform: 4 pipelined WildStar memories and
/// a Virtex-1000 at 40 ns, with every transformation enabled.
#[derive(Debug, Clone)]
pub struct Explorer<'k> {
    kernel: &'k Kernel,
    kernel_hash: u64,
    mem: MemoryModel,
    device: FpgaDevice,
    opts: TransformOptions,
    synthesis: SynthesisOptions,
    config: SearchConfig,
    explore_override: Option<Vec<bool>>,
    engine: Arc<EvalEngine>,
    sink: Arc<dyn TraceSink>,
    /// Everything besides the unroll vector that determines an estimate,
    /// hashed once per configuration change instead of once per cache
    /// lookup.
    context_hash: u64,
    /// Point-invariant pipeline artifacts, prepared lazily on the first
    /// evaluation and shared (clones included) across workers.
    prepared: OnceLock<Option<Arc<PreparedKernel>>>,
}

impl<'k> Explorer<'k> {
    /// Start exploring `kernel` with the paper's default platform.
    pub fn new(kernel: &'k Kernel) -> Self {
        // The kernel's printed form identifies it in cache keys; two
        // explorers over structurally identical kernels share entries.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        kernel.to_string().hash(&mut h);
        let mut ex = Explorer {
            kernel,
            kernel_hash: h.finish(),
            mem: MemoryModel::wildstar_pipelined(),
            device: FpgaDevice::virtex1000(),
            opts: TransformOptions::default(),
            synthesis: SynthesisOptions::default(),
            config: SearchConfig::default(),
            explore_override: None,
            engine: Arc::new(EvalEngine::default()),
            sink: Arc::new(NullSink),
            context_hash: 0,
            prepared: OnceLock::new(),
        };
        ex.context_hash = ex.compute_context_hash();
        ex
    }

    /// Record every search decision into `sink` (see [`crate::trace`]).
    /// Traces are deterministic: the same exploration produces the same
    /// events at any worker count.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Use exactly `n` evaluation worker threads (a fresh engine; the
    /// default engine honours `DEFACTO_THREADS`, then host parallelism).
    pub fn threads(mut self, n: usize) -> Self {
        self.engine = Arc::new(EvalEngine::new(n));
        self
    }

    /// Share an evaluation engine (and its memo cache) with other
    /// explorers.
    pub fn engine(mut self, engine: Arc<EvalEngine>) -> Self {
        self.engine = engine;
        self
    }

    /// The evaluation engine in use.
    pub fn engine_ref(&self) -> &Arc<EvalEngine> {
        &self.engine
    }

    /// Use a different memory model (the number of memories propagates to
    /// the transformation options).
    pub fn memory(mut self, mem: MemoryModel) -> Self {
        self.opts.num_memories = mem.num_memories;
        self.mem = mem;
        self.context_hash = self.compute_context_hash();
        self
    }

    /// Target a different device.
    pub fn device(mut self, device: FpgaDevice) -> Self {
        self.device = device;
        self.context_hash = self.compute_context_hash();
        self
    }

    /// The device being targeted.
    pub fn device_ref(&self) -> &FpgaDevice {
        &self.device
    }

    /// The kernel being explored.
    pub fn kernel_ref(&self) -> &Kernel {
        self.kernel
    }

    /// Run the IR verifier on every transformation pass's output (see
    /// [`TransformOptions::verify_each_pass`]): a pass that emits
    /// malformed IR fails the evaluation instead of skewing estimates.
    pub fn verify_each_pass(mut self, on: bool) -> Self {
        self.opts.verify_each_pass = on;
        self.context_hash = self.compute_context_hash();
        self
    }

    /// Override the transformation options (e.g. for ablations). The
    /// memory count is forced back in sync with the memory model.
    pub fn options(mut self, opts: TransformOptions) -> Self {
        self.opts = TransformOptions {
            num_memories: self.mem.num_memories,
            ..opts
        };
        self.context_hash = self.compute_context_hash();
        self
    }

    /// Override the synthesis-side options: designer operator bounds
    /// (paper §2.3) and bit-width narrowing (paper §2.4).
    pub fn synthesis(mut self, synthesis: SynthesisOptions) -> Self {
        self.synthesis = synthesis;
        self.context_hash = self.compute_context_hash();
        self
    }

    /// Enable/disable bit-width narrowing from value-range analysis.
    pub fn bitwidth_narrowing(mut self, on: bool) -> Self {
        self.synthesis.bitwidth_narrowing = on;
        self.context_hash = self.compute_context_hash();
        self
    }

    /// Tolerance band around `B = 1` that counts as balanced.
    pub fn balance_tolerance(mut self, tol: f64) -> Self {
        self.config.balance_tolerance = tol;
        self
    }

    /// Force the per-loop exploration flags (outermost first), overriding
    /// the saturation analysis' choice of memory-varying loops.
    pub fn explore_levels(mut self, levels: &[bool]) -> Self {
        self.explore_override = Some(levels.to_vec());
        self
    }

    /// The transformation options in effect.
    pub fn transform_options(&self) -> &TransformOptions {
        &self.opts
    }

    /// Transform the kernel at one unroll vector.
    ///
    /// # Errors
    ///
    /// Propagates transformation failures (e.g. non-dividing factors).
    pub fn design(&self, unroll: &UnrollVector) -> Result<TransformedDesign> {
        match self.prepared() {
            // Bit-identical to the scratch pipeline (enforced by the
            // incremental-equivalence property test) but skips the
            // point-invariant work.
            Some(p) => Ok(p.transform(unroll, &self.opts)?),
            // Preparation fails exactly when every point would fail;
            // running the scratch pipeline reproduces the per-point error.
            None => Ok(transform(self.kernel, unroll, &self.opts)?),
        }
    }

    fn prepared(&self) -> Option<&Arc<PreparedKernel>> {
        self.prepared
            .get_or_init(|| PreparedKernel::prepare(self.kernel).ok().map(Arc::new))
            .as_ref()
    }

    /// Offset-copy cache statistics `(hits, misses)` of the prepared
    /// evaluation path, if any design has been evaluated yet.
    pub fn prepared_stats(&self) -> Option<(u64, u64)> {
        self.prepared
            .get()
            .and_then(Option::as_ref)
            .map(|p| p.copy_cache_stats())
    }

    /// Hash of everything besides the unroll vector that determines an
    /// estimate: the kernel, the transform and synthesis options, the
    /// memory model, and the device's capacity and clock. The device
    /// *name* is excluded so renamed-but-identical devices (the
    /// multi-FPGA mapper's `XCV1000#0`) still share cache entries.
    ///
    /// Recomputed eagerly by the builder methods that change an input,
    /// and cached in `self.context_hash` for the per-lookup fast path.
    fn compute_context_hash(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.kernel_hash.hash(&mut h);
        self.opts.hash(&mut h);
        self.synthesis.hash(&mut h);
        self.mem.hash(&mut h);
        self.device.capacity_slices.hash(&mut h);
        self.device.clock_ns.hash(&mut h);
        h.finish()
    }

    fn cache_key(&self, unroll: &UnrollVector) -> CacheKey {
        CacheKey {
            unroll: unroll.clone(),
            context: self.context_hash,
        }
    }

    /// Evaluate one unroll vector: transform + behavioral-synthesis
    /// estimate, memoized in the engine's cache (estimation is
    /// deterministic, so a hit is indistinguishable from re-evaluating).
    ///
    /// # Errors
    ///
    /// Propagates transformation failures.
    pub fn evaluate(&self, unroll: &UnrollVector) -> Result<EvaluatedDesign> {
        let estimate = self.engine.evaluate_cached(&self.cache_key(unroll), || {
            let design = self.design(unroll)?;
            Ok(estimate_opts(
                &design,
                &self.mem,
                &self.device,
                &self.synthesis,
            ))
        })?;
        Ok(EvaluatedDesign {
            unroll: unroll.clone(),
            estimate,
        })
    }

    /// [`Explorer::evaluate`], also reporting whether the engine's memo
    /// cache answered. This is the search's single cache layer and
    /// hit/miss source of truth.
    fn evaluate_flagged(&self, unroll: &UnrollVector) -> Result<VisitOutcome> {
        let (estimate, cache_hit) =
            self.engine
                .evaluate_cached_flagged(&self.cache_key(unroll), || {
                    let design = self.design(unroll)?;
                    Ok(estimate_opts(
                        &design,
                        &self.mem,
                        &self.device,
                        &self.synthesis,
                    ))
                })?;
        Ok(VisitOutcome {
            estimate,
            cache_hit,
        })
    }

    /// Saturation analysis and the design space for this configuration.
    ///
    /// # Errors
    ///
    /// Fails when the kernel is not a perfect loop nest.
    pub fn analyze(&self) -> Result<(SaturationInfo, DesignSpace)> {
        saturation_analysis(self.kernel, &self.opts, self.explore_override.as_deref())
    }

    /// Run the paper's Figure-2 search.
    ///
    /// With more than one worker, the doubling frontier (the chain of
    /// points the search visits while compute bound) is speculatively
    /// evaluated in one parallel batch first; the serial algorithm then
    /// replays over the warm cache, so the visited sequence, selected
    /// design and termination reason are bit-identical to a
    /// single-threaded run. `result.stats` reports the engine-wide
    /// counters for this call, speculative evaluations included.
    ///
    /// # Errors
    ///
    /// Propagates analysis or evaluation failures.
    pub fn explore(&self) -> Result<SearchResult> {
        let started = Instant::now();
        let before = self.engine.counters();
        let (sat, space) = self.analyze()?;
        if self.engine.threads() > 1 || self.sink.enabled() {
            let frontier = doubling_frontier(&space, &sat);
            // The frontier is a pure function of the space, so the event
            // is identical whether or not a prefetch actually runs —
            // traces stay byte-identical across worker counts.
            if self.sink.enabled() {
                self.sink.record(&TraceEvent::Frontier {
                    points: frontier.clone(),
                });
            }
            if self.engine.threads() > 1 {
                // Speculative: a frontier point past where the serial
                // search stops may legitimately fail to evaluate; the
                // replay below surfaces any error the serial algorithm
                // would actually hit.
                for outcome in self.engine.parallel_map(&frontier, |u| self.evaluate(u)) {
                    drop(outcome);
                }
            }
        }
        let mut result = run_search_instrumented(
            &space,
            &sat,
            &self.config,
            |u| self.evaluate_flagged(u),
            self.sink.as_ref(),
        )?;
        result.stats = self.engine.stats_since(before, started.elapsed());
        Ok(result)
    }

    /// Execute the transformed design at `unroll` on concrete inputs
    /// through the reference interpreter — functional verification of the
    /// exact hardware-bound code, with its memory-traffic profile.
    ///
    /// # Errors
    ///
    /// Propagates transformation and interpretation failures.
    pub fn simulate(
        &self,
        unroll: &UnrollVector,
        inputs: &[(&str, Vec<i64>)],
    ) -> Result<(defacto_ir::Workspace, defacto_ir::ExecStats)> {
        let design = self.design(unroll)?;
        defacto_ir::run_with_inputs(&design.kernel, inputs)
            .map_err(|e| crate::DseError::Xform(defacto_xform::XformError::Ir(e)))
    }

    /// Evaluate *every* design in the space (the exhaustive baseline the
    /// paper's figures plot), fanned out across the engine's workers.
    /// Results are returned in the space's iteration order regardless of
    /// worker count.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn sweep(&self) -> Result<Vec<EvaluatedDesign>> {
        Ok(self.sweep_with_stats()?.0)
    }

    /// [`Explorer::sweep`], also reporting the evaluation counters for
    /// this call.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn sweep_with_stats(&self) -> Result<(Vec<EvaluatedDesign>, EvalStats)> {
        let started = Instant::now();
        let before = self.engine.counters();
        let (_, space) = self.analyze()?;
        let sweep = crate::exhaustive::parallel_sweep(&space, &self.engine, |u| self.evaluate(u))?;
        let stats = self.engine.stats_since(before, started.elapsed());
        Ok((sweep, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn evaluate_baseline() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let d = ex.evaluate(&UnrollVector(vec![1, 1])).unwrap();
        assert!(d.estimate.cycles > 0);
        assert!(d.estimate.fits);
    }

    #[test]
    fn explore_fir_pipelined_selects_fast_small_design() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let result = ex.explore().unwrap();
        let base = ex.evaluate(&UnrollVector(vec![1, 1])).unwrap();
        // The selected design is substantially faster than the baseline.
        let speedup = base.estimate.cycles as f64 / result.selected.estimate.cycles as f64;
        assert!(speedup > 2.0, "speedup {speedup}");
        assert!(result.selected.estimate.fits);
        // Only a fraction of the 42-point space is visited.
        assert!(
            result.visited.len() < 12,
            "visited {}",
            result.visited.len()
        );
    }

    #[test]
    fn explore_is_deterministic() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let a = ex.explore().unwrap();
        let b = ex.explore().unwrap();
        assert_eq!(a.selected.unroll, b.selected.unroll);
        assert_eq!(a.visited.len(), b.visited.len());
    }

    #[test]
    fn non_pipelined_fir_is_memory_bound_at_init() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k).memory(MemoryModel::wildstar_non_pipelined());
        let r = ex.explore().unwrap();
        // The paper: without pipelining, FIR designs are always memory
        // bound; the search stops at (or near) the saturation point.
        assert!(r.selected.estimate.balance < 1.0 + 0.10);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn evaluated_design_serde_round_trips() {
        let k = parse_kernel(FIR).unwrap();
        let d = Explorer::new(&k)
            .evaluate(&UnrollVector(vec![2, 2]))
            .unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: EvaluatedDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn simulate_runs_the_transformed_design() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let s: Vec<i64> = (0..96).map(|x| x % 13).collect();
        let c: Vec<i64> = (0..32).map(|x| x % 7).collect();
        let (ws, stats) = ex
            .simulate(
                &UnrollVector(vec![4, 2]),
                &[("S", s.clone()), ("C", c.clone())],
            )
            .unwrap();
        assert_eq!(
            ws.array("D").unwrap(),
            defacto_kernels::fir::reference(&s, &c).as_slice()
        );
        // Scalar replacement cut the traffic relative to 4 accesses per
        // original iteration.
        assert!(stats.memory_accesses() < 4 * 2048);
    }

    #[test]
    fn small_device_space_constrains() {
        let k = parse_kernel(FIR).unwrap();
        let tiny = FpgaDevice {
            name: "tiny".into(),
            capacity_slices: 2500,
            clock_ns: 40,
        };
        let ex = Explorer::new(&k).device(tiny.clone());
        let r = ex.explore().unwrap();
        assert!(r.selected.estimate.fits);
        assert!(r.selected.estimate.slices <= tiny.capacity_slices);
    }
}
