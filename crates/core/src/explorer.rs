//! The [`Explorer`] facade: one builder tying together transformation,
//! estimation, saturation analysis and the Figure-2 search.

use crate::error::Result;
use crate::saturation::{saturation_analysis, SaturationInfo};
use crate::search::{run_search, SearchConfig, SearchResult};
use crate::space::DesignSpace;
use defacto_ir::Kernel;
use defacto_synth::{estimate_opts, Estimate, FpgaDevice, MemoryModel, SynthesisOptions};
use defacto_xform::{transform, TransformOptions, TransformedDesign, UnrollVector};

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EvaluatedDesign {
    /// The unroll-factor vector.
    pub unroll: UnrollVector,
    /// Its behavioral-synthesis estimate.
    pub estimate: Estimate,
}

/// Design-space explorer for one kernel.
///
/// Defaults match the paper's platform: 4 pipelined WildStar memories and
/// a Virtex-1000 at 40 ns, with every transformation enabled.
#[derive(Debug, Clone)]
pub struct Explorer<'k> {
    kernel: &'k Kernel,
    mem: MemoryModel,
    device: FpgaDevice,
    opts: TransformOptions,
    synthesis: SynthesisOptions,
    config: SearchConfig,
    explore_override: Option<Vec<bool>>,
}

impl<'k> Explorer<'k> {
    /// Start exploring `kernel` with the paper's default platform.
    pub fn new(kernel: &'k Kernel) -> Self {
        Explorer {
            kernel,
            mem: MemoryModel::wildstar_pipelined(),
            device: FpgaDevice::virtex1000(),
            opts: TransformOptions::default(),
            synthesis: SynthesisOptions::default(),
            config: SearchConfig::default(),
            explore_override: None,
        }
    }

    /// Use a different memory model (the number of memories propagates to
    /// the transformation options).
    pub fn memory(mut self, mem: MemoryModel) -> Self {
        self.opts.num_memories = mem.num_memories;
        self.mem = mem;
        self
    }

    /// Target a different device.
    pub fn device(mut self, device: FpgaDevice) -> Self {
        self.device = device;
        self
    }

    /// Override the transformation options (e.g. for ablations). The
    /// memory count is forced back in sync with the memory model.
    pub fn options(mut self, opts: TransformOptions) -> Self {
        self.opts = TransformOptions {
            num_memories: self.mem.num_memories,
            ..opts
        };
        self
    }

    /// Override the synthesis-side options: designer operator bounds
    /// (paper §2.3) and bit-width narrowing (paper §2.4).
    pub fn synthesis(mut self, synthesis: SynthesisOptions) -> Self {
        self.synthesis = synthesis;
        self
    }

    /// Enable/disable bit-width narrowing from value-range analysis.
    pub fn bitwidth_narrowing(mut self, on: bool) -> Self {
        self.synthesis.bitwidth_narrowing = on;
        self
    }

    /// Tolerance band around `B = 1` that counts as balanced.
    pub fn balance_tolerance(mut self, tol: f64) -> Self {
        self.config.balance_tolerance = tol;
        self
    }

    /// Force the per-loop exploration flags (outermost first), overriding
    /// the saturation analysis' choice of memory-varying loops.
    pub fn explore_levels(mut self, levels: &[bool]) -> Self {
        self.explore_override = Some(levels.to_vec());
        self
    }

    /// The transformation options in effect.
    pub fn transform_options(&self) -> &TransformOptions {
        &self.opts
    }

    /// Transform the kernel at one unroll vector.
    ///
    /// # Errors
    ///
    /// Propagates transformation failures (e.g. non-dividing factors).
    pub fn design(&self, unroll: &UnrollVector) -> Result<TransformedDesign> {
        Ok(transform(self.kernel, unroll, &self.opts)?)
    }

    /// Evaluate one unroll vector: transform + behavioral-synthesis
    /// estimate.
    ///
    /// # Errors
    ///
    /// Propagates transformation failures.
    pub fn evaluate(&self, unroll: &UnrollVector) -> Result<EvaluatedDesign> {
        let design = self.design(unroll)?;
        let est = estimate_opts(&design, &self.mem, &self.device, &self.synthesis);
        Ok(EvaluatedDesign {
            unroll: unroll.clone(),
            estimate: est,
        })
    }

    /// Saturation analysis and the design space for this configuration.
    ///
    /// # Errors
    ///
    /// Fails when the kernel is not a perfect loop nest.
    pub fn analyze(&self) -> Result<(SaturationInfo, DesignSpace)> {
        saturation_analysis(self.kernel, &self.opts, self.explore_override.as_deref())
    }

    /// Run the paper's Figure-2 search.
    ///
    /// # Errors
    ///
    /// Propagates analysis or evaluation failures.
    pub fn explore(&self) -> Result<SearchResult> {
        let (sat, space) = self.analyze()?;
        run_search(&space, &sat, &self.config, |u| {
            Ok(self.evaluate(u)?.estimate)
        })
    }

    /// Execute the transformed design at `unroll` on concrete inputs
    /// through the reference interpreter — functional verification of the
    /// exact hardware-bound code, with its memory-traffic profile.
    ///
    /// # Errors
    ///
    /// Propagates transformation and interpretation failures.
    pub fn simulate(
        &self,
        unroll: &UnrollVector,
        inputs: &[(&str, Vec<i64>)],
    ) -> Result<(defacto_ir::Workspace, defacto_ir::ExecStats)> {
        let design = self.design(unroll)?;
        defacto_ir::run_with_inputs(&design.kernel, inputs)
            .map_err(|e| crate::DseError::Xform(defacto_xform::XformError::Ir(e)))
    }

    /// Evaluate *every* design in the space (the exhaustive baseline the
    /// paper's figures plot).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn sweep(&self) -> Result<Vec<EvaluatedDesign>> {
        let (_, space) = self.analyze()?;
        crate::exhaustive::exhaustive_sweep(&space, |u| self.evaluate(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn evaluate_baseline() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let d = ex.evaluate(&UnrollVector(vec![1, 1])).unwrap();
        assert!(d.estimate.cycles > 0);
        assert!(d.estimate.fits);
    }

    #[test]
    fn explore_fir_pipelined_selects_fast_small_design() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let result = ex.explore().unwrap();
        let base = ex.evaluate(&UnrollVector(vec![1, 1])).unwrap();
        // The selected design is substantially faster than the baseline.
        let speedup = base.estimate.cycles as f64 / result.selected.estimate.cycles as f64;
        assert!(speedup > 2.0, "speedup {speedup}");
        assert!(result.selected.estimate.fits);
        // Only a fraction of the 42-point space is visited.
        assert!(
            result.visited.len() < 12,
            "visited {}",
            result.visited.len()
        );
    }

    #[test]
    fn explore_is_deterministic() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let a = ex.explore().unwrap();
        let b = ex.explore().unwrap();
        assert_eq!(a.selected.unroll, b.selected.unroll);
        assert_eq!(a.visited.len(), b.visited.len());
    }

    #[test]
    fn non_pipelined_fir_is_memory_bound_at_init() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k).memory(MemoryModel::wildstar_non_pipelined());
        let r = ex.explore().unwrap();
        // The paper: without pipelining, FIR designs are always memory
        // bound; the search stops at (or near) the saturation point.
        assert!(r.selected.estimate.balance < 1.0 + 0.10);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn evaluated_design_serde_round_trips() {
        let k = parse_kernel(FIR).unwrap();
        let d = Explorer::new(&k)
            .evaluate(&UnrollVector(vec![2, 2]))
            .unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: EvaluatedDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn simulate_runs_the_transformed_design() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let s: Vec<i64> = (0..96).map(|x| x % 13).collect();
        let c: Vec<i64> = (0..32).map(|x| x % 7).collect();
        let (ws, stats) = ex
            .simulate(
                &UnrollVector(vec![4, 2]),
                &[("S", s.clone()), ("C", c.clone())],
            )
            .unwrap();
        assert_eq!(
            ws.array("D").unwrap(),
            defacto_kernels::fir::reference(&s, &c).as_slice()
        );
        // Scalar replacement cut the traffic relative to 4 accesses per
        // original iteration.
        assert!(stats.memory_accesses() < 4 * 2048);
    }

    #[test]
    fn small_device_space_constrains() {
        let k = parse_kernel(FIR).unwrap();
        let tiny = FpgaDevice {
            name: "tiny".into(),
            capacity_slices: 2500,
            clock_ns: 40,
        };
        let ex = Explorer::new(&k).device(tiny.clone());
        let r = ex.explore().unwrap();
        assert!(r.selected.estimate.fits);
        assert!(r.selected.estimate.slices <= tiny.capacity_slices);
    }
}
